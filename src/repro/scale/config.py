"""The engine-facing parallelism knob."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ScaleConfig:
    """How a :class:`~repro.runtime.engine.RoundEngine` parallelizes rounds.

    workers:
        Process-pool size for per-client work.  ``0`` disables the scale
        layer entirely — the engine runs today's serial bus path.
    shards:
        How many cohort shards participants are hash-partitioned into.
        Shards group worker dispatch and the partial aggregation/audit
        reducers; any value >= 1 yields bit-identical results (the merges
        are associative), so this is purely a topology/throughput choice.
    chunk_size:
        How many clients ride in one worker task.  Larger chunks amortize
        pickling (objects shared between clients are serialized once per
        chunk); smaller chunks spread a shard across more workers.
    subgroup_size:
        Bounded subgroup size ``g`` for hierarchical sum-zero
        aggregation.  ``0`` keeps the flat cohort; any value >= 1 makes
        eligible rounds (see :func:`repro.scale.hierarchy.
        hierarchical_eligible`) sample per-subgroup mask families and
        stream submissions into per-subgroup accumulators — bit-exact
        against the flat path (each subgroup sums to zero, ring
        addition is associative), with mask state and §3 repair O(g)
        and parent ingest memory O(n/g · k) instead of O(n·k).
    """

    workers: int = 0
    shards: int = 1
    chunk_size: int = 32
    subgroup_size: int = 0

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigurationError("workers must be >= 0")
        if self.shards < 1:
            raise ConfigurationError("shards must be >= 1")
        if self.chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        if self.subgroup_size < 0:
            raise ConfigurationError("subgroup_size must be >= 0")

    @property
    def enabled(self) -> bool:
        return self.workers > 0

    @property
    def hierarchical(self) -> bool:
        return self.subgroup_size > 0
