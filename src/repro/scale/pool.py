"""The process-pool client worker layer.

One worker task carries a *chunk* of clients through the per-client hot
path — attested handshake, mask delivery rebuild, mask install, sealed
checkpoint, Glimmer contribution, and the contribution-signature check —
entirely inside a worker process.  Everything that must stay globally
ordered (the blinding service's DRBG draws, the protocol monitor, the
service's admission ledger) stays in the parent: the parent pre-draws
each slot's ephemeral DH keypair and delivery nonce in serial slot order
and ships them in the task, so a worker rebuilds *exactly* the
:class:`~repro.core.glimmer.KeyDelivery` the serial
:meth:`~repro.core.provisioning.BlinderProvisioner.provision_mask` would
have produced, byte for byte.  The mutated client (enclave state, cycle
meter, session counter) rides back in the result and is transplanted
over the parent's instance, so downstream rounds and telemetry cannot
tell which process did the work.

Quote signatures are *not* verified here — the worker returns the quote
and the parent screens it (:meth:`repro.sgx.attestation.AttestationService
.screen` plus the DH-binding check).  Contribution signatures *are*
verified here, once, so the parent can admit via
``CloudService.submit_verified`` without re-serializing the very
exponentiations this pool exists to spread out.
"""

from __future__ import annotations

import multiprocessing
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.glimmer import KeyDelivery, handshake_digest
from repro.crypto.cipher import AuthenticatedCipher
from repro.crypto.commitments import encode_mask_payload
from repro.crypto.dh import DHKeyPair
from repro.errors import (
    ConfigurationError,
    CryptoError,
    EnclaveError,
    MaskVerificationError,
    ProtocolError,
    ValidationError,
)
from repro.runtime.telemetry import OUTCOME_CRASHED, OUTCOME_VALIDATION_REJECTED

#: The handshake context label for mask provisioning — must match what
#: ``BlinderProvisioner.provision_mask`` passes to ``_deliver``.
PROVISION_CONTEXT = "blinding-mask-provisioning"


@dataclass(frozen=True)
class WorkerContext:
    """Round-constant state shared by every task in a chunk.

    ``identity`` is the blinding service's handshake-signing keypair.
    Shipping it to a worker does not widen the trust boundary: workers
    are forks of the very process that owns the provisioner, and the
    signature they produce is the one the provisioner itself would have
    produced for the parent-drawn ``(keypair, nonce)``.
    """

    round_id: int
    identity: Any  # SchnorrKeyPair (blinder handshake identity)
    signing_public: Any  # SchnorrPublicKey for contribution pre-verification
    features: tuple


@dataclass(frozen=True)
class ClientTask:
    """One client's slice of the round, fully self-contained."""

    slot: int
    user_id: str
    client: Any  # the ClientDevice, pickled with its enclave state
    values: tuple | None  # None: provision only (a collect dropout)
    dh_secret: int  # parent-drawn ephemeral DH exponent (serial order)
    dh_public: int
    nonce: bytes  # parent-drawn delivery nonce (serial order)
    opening: Any  # this slot's MaskOpening
    commitment: Any  # the engine-vouched MaskCommitmentRecord


@dataclass
class ClientResult:
    """What comes back: the mutated client plus everything to merge."""

    slot: int
    user_id: str
    client: Any
    quote: Any
    glimmer_dh_public: int
    provision_ecalls: int = 1
    mask_error: str | None = None
    outcome: str | None = None
    detail: str | None = None
    signed: Any = None
    signature_ok: bool = False
    contribute_ecalls: int = 0


def _run_client(context: WorkerContext, task: ClientTask) -> ClientResult:
    """The serial per-client path, verbatim, minus the simulated wire."""
    client = task.client
    session_id, glimmer_dh_public, quote = client.handshake_request()
    result = ClientResult(
        slot=task.slot,
        user_id=task.user_id,
        client=client,
        quote=quote,
        glimmer_dh_public=glimmer_dh_public,
    )
    # Rebuild the provisioner's delivery with the parent's pre-drawn
    # keypair and nonce — the same digest, signature, derived key, and
    # sealed box _deliver() computes, with the quote check deferred to
    # the parent's screen pass.
    keypair = DHKeyPair(
        group=context.identity.group,
        secret=task.dh_secret,
        public=task.dh_public,
    )
    digest = handshake_digest(
        PROVISION_CONTEXT, session_id, glimmer_dh_public, keypair.public
    )
    signature = context.identity.sign(digest)
    key = keypair.derive_key(glimmer_dh_public, PROVISION_CONTEXT)
    box = AuthenticatedCipher(key).encrypt(
        task.nonce, encode_mask_payload(task.opening), associated_data=session_id
    )
    delivery = KeyDelivery(
        session_id=session_id,
        peer_dh_public=keypair.public,
        handshake_signature=signature,
        encrypted_payload=box.to_bytes(),
    )
    try:
        client.install_mask(
            context.round_id, task.slot, delivery, commitment=task.commitment
        )
    except MaskVerificationError as exc:
        result.mask_error = str(exc)
        return result
    result.provision_ecalls = 2
    if hasattr(client, "checkpoint_round"):
        client.checkpoint_round(context.round_id)
    if task.values is None:
        return result
    result.contribute_ecalls = 1  # charged even on rejection, as serial does
    try:
        signed = client.contribute(
            context.round_id,
            list(task.values),
            list(context.features),
            blind=True,
            claims={},
            context_fields=(),
        )
    except ValidationError as exc:
        result.outcome = OUTCOME_VALIDATION_REJECTED
        result.detail = str(exc)
        return result
    except (EnclaveError, CryptoError, ProtocolError) as exc:
        result.outcome = OUTCOME_CRASHED
        result.detail = str(exc)
        return result
    result.signed = signed
    if context.signing_public is not None:
        try:
            result.signature_ok = bool(
                context.signing_public.is_valid(
                    signed.signed_bytes(), signed.signature
                )
            )
        except Exception:
            result.signature_ok = False
    return result


def run_client_chunk(
    context: WorkerContext, tasks: Sequence[ClientTask]
) -> list[ClientResult]:
    """Worker entry point: run every task in a chunk, in order."""
    return [_run_client(context, task) for task in tasks]


def _warm_probe(index: int) -> int:
    """A no-op task that forces a worker process to exist and import us."""
    return index


class WorkerPool:
    """A ``ProcessPoolExecutor`` sized and warmed for round dispatch.

    Prefers the ``fork`` start method (workers inherit the loaded modules
    and cost ~nothing to start); falls back to the platform default where
    fork is unavailable.  :meth:`warm` exists because a cold pool pays
    process startup inside the first timed batch — benchmarks call it
    before the clock starts.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError("worker pool needs workers >= 1")
        self.workers = int(workers)
        if "fork" in multiprocessing.get_all_start_methods():
            mp_context = multiprocessing.get_context("fork")
        else:  # pragma: no cover - platform without fork
            mp_context = multiprocessing.get_context()
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=mp_context
        )
        # Safety net for callers that drop the pool without close(): the
        # finalizer shuts the executor down when the pool is collected
        # (or at interpreter exit), so forgotten pools cannot leak their
        # forked worker processes.  close() calls the same finalizer, so
        # explicit and garbage-collected teardown share one idempotent
        # path.
        self._finalizer = weakref.finalize(
            self, _shutdown_executor, self._executor
        )
        self._warmed = False

    def warm(self) -> None:
        """Spin up every worker before timing-sensitive work begins."""
        if not self._warmed:
            list(self._executor.map(_warm_probe, range(self.workers * 2)))
            self._warmed = True

    def map_chunks(
        self, context: WorkerContext, chunks: Sequence[Sequence[ClientTask]]
    ) -> list[list[ClientResult]]:
        """Run chunks through :func:`run_client_chunk`; results in chunk order.

        Submission order is chunk order and results are gathered in the
        same order, so worker scheduling never reorders anything the
        caller observes.
        """
        self._warmed = True  # any real dispatch warms the pool as a side effect
        futures = [
            self._executor.submit(run_client_chunk, context, list(chunk))
            for chunk in chunks
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._finalizer()


def _shutdown_executor(executor: ProcessPoolExecutor) -> None:
    executor.shutdown(wait=True)
