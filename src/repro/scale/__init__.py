"""Multi-core scale-out for the round pipeline.

The ROADMAP north-star is population-scale aggregation, but the serial
RoundEngine runs every client handshake, mask delivery, enclave
contribution, and signature check on one core.  This package splits the
pipeline the way a production deployment would (see DESIGN.md §10):

* :mod:`repro.scale.config` — the ``ScaleConfig(workers, shards,
  chunk_size)`` knob the engine accepts; ``workers=0`` keeps today's
  serial bus path.
* :mod:`repro.scale.shard` — deterministic hash-partitioning of
  participants into cohort shards, plus the partial ring-sum /
  limb-column / sum-zero reducers whose root merges are bit-exact
  against the flat serial computations.
* :mod:`repro.scale.pool` — the picklable per-client worker task and the
  ``ProcessPoolExecutor`` wrapper that runs it.
* :mod:`repro.scale.rounds` — the parallel round driver: eligibility
  gating (anything faulty, adversarial, or non-standard falls back to
  the serial path, so chaos and Byzantine replays are untouched), RNG
  pre-draws that pin the provisioner's DRBG stream to the serial order,
  and the slot-ordered merge that makes worker scheduling unobservable.

Determinism contract: with the same seed, a parallel round produces the
same masks, blinded vectors, aggregate, commitment digests, outcomes,
and enclave cycle counts as the serial round, for any ``workers >= 1``
and any ``shards >= 1``.  Only transport telemetry (message/byte/latency
counters) differs, because worker dispatch replaces simulated wire hops.
"""

from repro.scale.config import ScaleConfig
from repro.scale.shard import ShardedRingReducer, shard_of, plan_shards

__all__ = ["ScaleConfig", "ShardedRingReducer", "shard_of", "plan_shards"]
