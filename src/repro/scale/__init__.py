"""Multi-core scale-out for the round pipeline.

The ROADMAP north-star is population-scale aggregation, but the serial
RoundEngine runs every client handshake, mask delivery, enclave
contribution, and signature check on one core.  This package splits the
pipeline the way a production deployment would (see DESIGN.md §10):

* :mod:`repro.scale.config` — the ``ScaleConfig(workers, shards,
  chunk_size)`` knob the engine accepts; ``workers=0`` keeps today's
  serial bus path.
* :mod:`repro.scale.shard` — deterministic hash-partitioning of
  participants into cohort shards, plus the partial ring-sum /
  limb-column / sum-zero reducers whose root merges are bit-exact
  against the flat serial computations.
* :mod:`repro.scale.pool` — the picklable per-client worker task and the
  ``ProcessPoolExecutor`` wrapper that runs it.
* :mod:`repro.scale.rounds` — the parallel round driver: eligibility
  gating (anything faulty, adversarial, or non-standard falls back to
  the serial path, so chaos and Byzantine replays are untouched), RNG
  pre-draws that pin the provisioner's DRBG stream to the serial order,
  and the slot-ordered merge that makes worker scheduling unobservable.
* :mod:`repro.scale.subgroup` — the DRBG-keyed subgroup planner for
  hierarchical sum-zero aggregation: a pure function of
  ``(round_id, num_slots, group_size)``, numpy-backed so a u1M plan is
  two int64 arrays.
* :mod:`repro.scale.streaming` — per-subgroup ring accumulators that
  fold submissions on arrival and release the raw vectors, bounding
  parent ingest memory at O(n/g · k) (DESIGN.md §16).
* :mod:`repro.scale.hierarchy` — the eligibility gate routing rounds
  onto (or away from) the subgroup + streaming path, PR-5 style.

Determinism contract: with the same seed, a parallel round produces the
same masks, blinded vectors, aggregate, commitment digests, outcomes,
and enclave cycle counts as the serial round, for any ``workers >= 1``
and any ``shards >= 1``.  Only transport telemetry (message/byte/latency
counters) differs, because worker dispatch replaces simulated wire hops.
"""

from repro.scale.config import ScaleConfig
from repro.scale.shard import ShardedRingReducer, shard_of, plan_shards
from repro.scale.subgroup import SubgroupPlan, plan_subgroups

__all__ = [
    "ScaleConfig",
    "ShardedRingReducer",
    "shard_of",
    "plan_shards",
    "SubgroupPlan",
    "plan_subgroups",
]
