"""The parallel round driver: dispatch, slot-ordered merge, sharded finalize.

:func:`run_parallel_round` is :meth:`RoundEngine.run_round` with the
provision and collect phases fanned out over the engine's worker pool.
The contract is bit-exactness: everything order-sensitive runs in the
parent, in serial slot order —

* the blinding service's DRBG draws (ephemeral DH keypair + delivery
  nonce per slot) happen *before* dispatch, pinning the provisioner's
  random stream to exactly what the serial path consumes;
* quote screening, protocol-monitor bookkeeping, service admission, and
  outcome recording happen *after* dispatch, in a merge that walks slots
  in ascending order regardless of which worker finished first;
* finalize runs the engine's own :meth:`finalize_round`, with the
  service's flat ring sum swapped for a :class:`ShardedRingReducer` and
  the sum-zero audit fed the merged per-shard partial point products —
  both associative folds, so the aggregate and the audit verdict are the
  same integers the serial path computes.

Eligibility is deliberately narrow (:func:`parallel_eligible`): any
fault injector, network adversary, deadline, claim, plaintext round, or
subclassed participant silently falls back to the serial bus path.  That
is what makes chaos and Byzantine replays trivially parity-safe — under
those conditions the parallel engine *is* the serial engine.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.client import ClientDevice
from repro.core.provisioning import BlinderProvisioner
from repro.core.service import CloudService
from repro.crypto.dh import DHKeyPair
from repro.errors import (
    AttestationError,
    NetworkError,
    ProtocolViolation,
)
from repro.runtime.messages import BLINDER, client_endpoint
from repro.runtime.protocol import VIOLATION_MASK_OPENING
from repro.runtime.telemetry import (
    OUTCOME_ACCEPTED,
    OUTCOME_CRASHED,
    OUTCOME_DROPOUT,
    OUTCOME_QUARANTINED,
    OUTCOME_SERVICE_REJECTED,
    OUTCOME_UNREACHABLE,
    RoundReport,
)
from repro.scale.config import ScaleConfig
from repro.scale.pool import ClientTask, WorkerContext
from repro.scale.shard import ShardedRingReducer, plan_shards, shard_of
from repro.sgx.attestation import QuotePolicy, report_data_for


def parallel_eligible(
    engine,
    *,
    participants: Sequence[str],
    blind: bool,
    deadline_ms,
    phase_deadlines_ms,
    claims_by_user,
    context_fields: Sequence[str],
) -> bool:
    """Can this round take the parallel path and stay bit-exact?

    Anything that makes outcomes depend on fine-grained event
    interleaving — injected faults, adversarial middleboxes, simulated
    deadlines — or that runs code the worker task does not model —
    claims, private-context ocalls, plaintext rounds, subclassed
    parties — disqualifies the round.  Ineligible rounds run the serial
    path unchanged, so the answer here is a pure routing choice, never a
    behavioral one.
    """
    if not blind:
        return False
    if deadline_ms is not None or phase_deadlines_ms:
        return False
    if claims_by_user:
        return False
    if tuple(context_fields):
        return False
    if engine.fault_injector is not None:
        return False
    network = engine.network
    if getattr(network, "fault_injector", None) is not None:
        return False
    if getattr(network, "_adversaries", ()):
        return False
    if type(engine.service) is not CloudService:
        return False
    if type(engine.blinder_provisioner) is not BlinderProvisioner:
        return False
    if getattr(engine.blinder_provisioner, "session_cache", None) is not None:
        # Session resumption skips the provisioner's per-delivery DH
        # keypair draws, so its DRBG stream diverges from what the
        # worker-task replay models.  Cached provisioners run serial.
        return False
    for user_id in participants:
        client = engine.clients.get(user_id)
        if client is None or type(client) is not ClientDevice:
            return False
        if getattr(client.platform, "fault_injector", None) is not None:
            return False
    return True


def _transplant(live, worked) -> None:
    """Adopt the worker-mutated client state into the parent's instance.

    The parent's object identity is load-bearing — bus endpoints, the
    engine's client registry, and the round record's ``joined`` map all
    hold references to it — so the worker's copy never replaces it; its
    ``__dict__`` does.
    """
    if live is worked:
        return
    state = dict(worked.__dict__)
    live.__dict__.clear()
    live.__dict__.update(state)


def run_parallel_round(
    engine,
    config: ScaleConfig,
    round_id: int,
    participants: Iterable[str],
    values_by_user: Mapping[str, Sequence[float]],
    features: Sequence,
    *,
    dropouts: Iterable[str] = (),
    collect_dropouts: Iterable[str] = (),
    recovery_threshold: float = 0.0,
) -> RoundReport:
    """One full round with worker-pool provision/collect and sharded finalize.

    Mirrors :meth:`RoundEngine.run_round` decision for decision; see the
    module docstring for where the order-sensitive work stays serial.
    """
    participants = list(participants)
    silent = set(dropouts)
    silent_after_provision = set(collect_dropouts)
    threshold = float(recovery_threshold)
    features = tuple(features)
    try:
        engine.open_round(round_id, len(participants), len(features), blinded=True)
    except NetworkError as exc:
        record = engine.round_record(round_id)
        raise engine._abort(record, f"round could not be opened: {exc}")
    record = engine.round_record(round_id)
    for user_id in participants:
        record.note_participant(user_id)
    quarantined = {
        user_id
        for user_id in participants
        if engine.quarantine.is_blocked(client_endpoint(user_id))
    }
    for user_id in quarantined:
        record.outcomes[user_id] = OUTCOME_QUARANTINED

    provisioner = engine.blinder_provisioner
    service = engine.service

    # ------------------------------------------------ provision: pre-draw
    engine._start_phase(record, "provision")
    tasks: list[ClientTask] = []
    for index, user_id in enumerate(participants):
        if user_id in quarantined:
            continue
        if user_id in silent:
            record.outcomes[user_id] = OUTCOME_DROPOUT
            continue
        client = engine.clients[user_id]
        engine.note_client_join(record, client)
        # The serial _deliver draws exactly (DH keypair, 16-byte nonce)
        # per provisioned slot, in slot order.  Draw them here so the
        # provisioner's DRBG stream is byte-identical either way.
        keypair = DHKeyPair.generate(provisioner.identity.group, provisioner.rng)
        nonce = provisioner.rng.generate(16)
        opening = provisioner.mask_opening(round_id, index)
        commitment = (
            record.commitments.record_for(index)
            if record.commitments is not None
            else None
        )
        contribute = user_id not in silent_after_provision
        tasks.append(
            ClientTask(
                slot=index,
                user_id=user_id,
                client=client,
                values=(
                    tuple(float(v) for v in values_by_user[user_id])
                    if contribute
                    else None
                ),
                dh_secret=keypair.secret,
                dh_public=keypair.public,
                nonce=nonce,
                opening=opening,
                commitment=commitment,
            )
        )

    # ------------------------------------------------------- dispatch
    shard_groups: list[list[ClientTask]] = [[] for _ in range(config.shards)]
    for task in tasks:
        shard_groups[shard_of(round_id, task.user_id, config.shards)].append(task)
    chunks: list[list[ClientTask]] = []
    for group in shard_groups:
        for start in range(0, len(group), config.chunk_size):
            chunks.append(group[start : start + config.chunk_size])
    context = WorkerContext(
        round_id=round_id,
        identity=provisioner.identity,
        signing_public=engine.signing_public,
        features=features,
    )
    results = {}
    if chunks:
        for chunk in engine.scale_pool().map_chunks(context, chunks):
            for result in chunk:
                results[result.slot] = result

    # -------------------------------------------- provision: merge (slot order)
    policy = QuotePolicy(
        expected_mrenclave=provisioner.registry.approved_measurement(
            provisioner.glimmer_name
        )
    )
    for task in tasks:
        result = results[task.slot]
        live = engine.clients[task.user_id]
        _transplant(live, result.client)
        record.joined[task.user_id] = live
        # The quote was minted inside our own worker fork; screen() keeps
        # every structural/policy/revocation check and skips only the
        # platform-signature exponentiations (see AttestationService.screen).
        screened = provisioner.attestation.screen(result.quote, policy)
        binding = report_data_for(result.glimmer_dh_public.to_bytes(256, "big"))
        if screened.report_data != binding:
            raise AttestationError(
                "quote does not bind the presented DH handshake value"
            )
        record.ecalls += result.provision_ecalls
        if result.mask_error is not None:
            engine.monitor.record(
                round_id, BLINDER, VIOLATION_MASK_OPENING, result.mask_error
            )
            raise engine._abort(
                record,
                f"blinding service delivered a mask that fails its "
                f"commitment: {result.mask_error}",
            )
        record.provisioned[task.slot] = task.user_id

    # ---------------------------------------------- collect: merge (slot order)
    engine._start_phase(record, "collect")
    monitor = engine.monitor
    for index, user_id in enumerate(participants):
        if user_id in quarantined:
            continue
        if user_id in silent:
            record.outcomes.setdefault(user_id, OUTCOME_DROPOUT)
            continue
        if user_id in silent_after_provision:
            record.outcomes[user_id] = OUTCOME_DROPOUT
            continue
        result = results[index]
        record.ecalls += result.contribute_ecalls
        if result.outcome == OUTCOME_CRASHED:
            # Same one-shot recovery as the serial path: restart from
            # sealed checkpoints and re-issue contribute over the bus.
            record.outcomes[user_id] = OUTCOME_CRASHED
            live = engine.clients[user_id]
            if engine._restart_client(record, live):
                try:
                    engine.contribute(
                        user_id,
                        round_id,
                        values_by_user[user_id],
                        features,
                        blind=True,
                        claims=None,
                        context_fields=(),
                    )
                except NetworkError:
                    record.outcomes[user_id] = OUTCOME_UNREACHABLE
            continue
        if result.outcome is not None:  # validation-rejected in the worker
            record.outcomes[user_id] = result.outcome
            continue
        signed = result.signed
        sender = client_endpoint(user_id)
        try:
            monitor.check_submit(
                round_id, sender, index, signed.nonce, retransmit=False
            )
        except ProtocolViolation:
            # Recorded by the monitor; to the sender it is a rejection,
            # exactly as submit_signed treats it.
            record.outcomes[user_id] = OUTCOME_SERVICE_REJECTED
            continue
        if result.signature_ok:
            accepted = service.submit_verified(round_id, signed)
        else:
            accepted = service.submit(round_id, signed)
        if accepted:
            monitor.note_accepted(round_id, sender, index, signed.nonce)
            record.consumed.add(index)
            record.slot_nonce.setdefault(index, signed.nonce)
            live = engine.clients[user_id]
            if hasattr(live, "discard_checkpoint"):
                live.discard_checkpoint(round_id)
            record.outcomes[user_id] = OUTCOME_ACCEPTED
        else:
            monitor.note_rejected(round_id, sender, "service-rejected")
            record.outcomes[user_id] = OUTCOME_SERVICE_REJECTED

    # --------------------------------------------------- survivors + finalize
    survivors = [
        u for u in participants if record.outcomes.get(u) == OUTCOME_ACCEPTED
    ]
    survivors += [
        u
        for slot, u in record.provisioned.items()
        if slot in record.consumed and u not in survivors
    ]
    if not survivors:
        raise engine._abort(
            record,
            f"no contribution was accepted ({len(participants)} participants)",
        )
    if threshold and len(survivors) < threshold * len(participants):
        raise engine._abort(
            record,
            f"{len(survivors)}/{len(participants)} survivors is below "
            f"the recovery threshold of {threshold:.0%}",
        )
    # Every accepted contribution's signature was verified exactly once —
    # in a worker (submit_verified) or by the service (submit) — so the
    # finalize audit may skip re-verifying them serially.
    record.preverified = True
    record.scale_plan = plan_shards(round_id, participants, config.shards)
    previous_reducer = service.aggregation_reducer
    service.aggregation_reducer = ShardedRingReducer(config.shards)
    try:
        return engine.finalize_round(round_id)
    finally:
        service.aggregation_reducer = previous_reducer
