"""Memory-bounded streaming ingest: per-subgroup ring accumulators.

The flat service keeps every admitted ring vector until finalize, so a
round's parent memory is O(n·k).  The streaming path folds each
submission into its subgroup's running partial the moment it is
admitted and releases the raw vector — resident state is one
``(num_groups, length)`` uint64 matrix plus per-group counters,
O(n/g · k), independent of how many submissions stream past.

Exactness is structural: ``uint64`` addition wraps mod ``2^64``,
``2^modulus_bits`` divides ``2^64``, and ring addition is associative
and commutative, so fold-on-arrival into any partition and a final
merge produce the *same integers* as stacking all rows and summing —
the same argument that makes :class:`repro.scale.shard.
ShardedRingReducer` a drop-in.  The merge itself reuses that reducer:
subgroup partials are leaves, the reducer's shard blocks the interior
nodes, the root the cohort total — a two-level parent tree.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.perf import kernels
from repro.scale.shard import merge_ring_partials
from repro.scale.subgroup import SubgroupPlan


class StreamingSubgroupAccumulator:
    """Fold ring vectors into per-subgroup partial sums, arrival order."""

    def __init__(self, plan: SubgroupPlan, modulus_bits: int = 64) -> None:
        self.plan = plan
        self.modulus_bits = modulus_bits
        self._partials: np.ndarray | None = None
        self.group_counts = np.zeros(plan.num_groups, dtype=np.int64)
        self.folded = 0
        self.repairs_folded = 0

    @property
    def length(self) -> int | None:
        return None if self._partials is None else self._partials.shape[1]

    def _row(self, values) -> np.ndarray:
        row = kernels.as_ring(values, self.modulus_bits)
        if self._partials is None:
            self._partials = np.zeros(
                (self.plan.num_groups, len(row)), dtype=kernels.U64
            )
        elif len(row) != self._partials.shape[1]:
            raise ConfigurationError("vector length mismatch")
        return row

    def fold(self, values, slot: int | None = None) -> int:
        """Fold one submission into its subgroup's partial; returns the group.

        ``slot`` names the mask slot the submission consumes; its
        subgroup comes from the plan.  A slot-less submission (legacy
        senders) folds into group 0 — attribution is telemetry, the
        total is exact either way because the merge sums every group.
        """
        group = self.plan.group_of(slot) if slot is not None else 0
        row = self._row(values)
        # Unreduced fold: uint64 wrap keeps the running value exact mod
        # 2^64; one bitmask at read time lands it in the smaller ring.
        self._partials[group] += row
        self.group_counts[group] += 1
        self.folded += 1
        return group

    def fold_repair(self, mask, slot: int | None = None) -> int:
        """Fold a §3 dropout-repair mask into the dropped slot's subgroup."""
        group = self.plan.group_of(slot) if slot is not None else 0
        row = self._row(mask)
        self._partials[group] += row
        self.repairs_folded += 1
        return group

    def partials(self) -> np.ndarray:
        """The reduced ``(num_groups, length)`` partial-sum matrix."""
        if self._partials is None:
            raise ConfigurationError("nothing folded yet")
        return kernels.ring_reduce(self._partials.copy(), self.modulus_bits)

    def partial(self, group: int) -> np.ndarray:
        """One subgroup's reduced partial sum."""
        if self._partials is None:
            raise ConfigurationError("nothing folded yet")
        return kernels.ring_reduce(
            self._partials[group].copy(), self.modulus_bits
        )

    def total(self, reducer=None) -> np.ndarray:
        """Merge the subgroup leaves into the cohort total.

        ``reducer`` is any ``callable(matrix, modulus_bits) -> row`` —
        the scale layer passes its :class:`~repro.scale.shard.
        ShardedRingReducer` so the partials fold through the same parent
        tree as the flat path's rows; ``None`` merges flat.  Both are
        associative folds, hence bit-identical.
        """
        partials = self.partials()
        if reducer is not None:
            return reducer(partials, self.modulus_bits)
        return merge_ring_partials(partials, self.modulus_bits)

    def groups_touched(self) -> int:
        return int(np.count_nonzero(self.group_counts))
