"""Routing for hierarchical (subgroup + streaming) rounds.

The hierarchical path changes *where* mask state lives and *when*
submissions are folded, never what the aggregate is: per-subgroup
sum-zero families still sum to zero cohort-wide, and fold-on-arrival is
an associative ring sum.  What it gives up is per-row hindsight — a
streaming service releases each payload at admission, so it cannot
un-fold a contribution (quarantine eviction, late-reply discard) or
replay the accepted set for the finalize audit.

:func:`hierarchical_eligible` is therefore the same PR-5-style silent
gate as :func:`repro.scale.rounds.parallel_eligible`: any condition
that could *need* eviction or per-row audit — injected faults,
adversarial middleboxes, deadlines, subclassed parties, wrapped
services — routes the round to the flat path unchanged, which is what
keeps the chaos and Byzantine suites bit-identical with subgrouping
configured.  Unlike the parallel gate, DH session resumption does not
disqualify a round: the hierarchical path never replays the
provisioner's DRBG stream, so a shifted stream cannot desynchronize
anything.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.client import ClientDevice
from repro.core.provisioning import BlinderProvisioner
from repro.core.service import CloudService


def hierarchical_eligible(
    engine,
    *,
    participants: Sequence[str],
    blind: bool,
    deadline_ms,
    phase_deadlines_ms,
    claims_by_user,
    context_fields: Sequence[str],
) -> bool:
    """Can this round stream through subgroup accumulators and stay exact?

    The answer is a pure routing choice: ineligible rounds run the flat
    serial path unchanged, so configuring ``subgroup_size`` can never
    alter a faulty, adversarial, or deadline-bound round's behavior.
    """
    if not blind:
        return False
    if deadline_ms is not None or phase_deadlines_ms:
        # Deadline enforcement may evict an accepted-but-late submission;
        # a folded payload cannot be evicted.
        return False
    if claims_by_user:
        return False
    if tuple(context_fields):
        return False
    if engine.fault_injector is not None:
        return False
    network = engine.network
    if getattr(network, "fault_injector", None) is not None:
        return False
    if getattr(network, "_adversaries", ()):
        return False
    if type(engine.service) is not CloudService:
        # Wrapped services (Byzantine aggregators, recorders) may shadow
        # submit/finalize with the legacy flat shapes.
        return False
    if type(engine.blinder_provisioner) is not BlinderProvisioner:
        return False
    for user_id in participants:
        client = engine.clients.get(user_id)
        if client is None or type(client) is not ClientDevice:
            # Subclassed parties (malicious clients) can draw violations
            # that end in quarantine eviction.
            return False
        if getattr(client.platform, "fault_injector", None) is not None:
            return False
    return True
