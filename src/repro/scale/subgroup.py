"""Deterministic subgroup planning for hierarchical sum-zero aggregation.

A million-client cohort cannot afford the flat §3 mask graph: sampling,
sealing, and repairing masks all touch O(n) state at once.  The
hierarchical path partitions the cohort's *slots* into subgroups of
bounded size ``g`` and samples an independent sum-zero family inside
each subgroup.  Every subgroup sums to zero, so the whole cohort still
sums to zero — the aggregate is bit-identical to the flat construction
for any grouping — while mask materialization and §3 dropout repair
shrink from O(n) to O(g).

The plan is a pure function of ``(round_id, num_slots, group_size)``:
slot keys come from one bulk :class:`~repro.crypto.drbg.HmacDrbg`
expansion seeded by the round id (the same keyed-but-reproducible idea
as :func:`repro.scale.shard.shard_of`), the slots are permuted by a
stable argsort of those keys, and the permutation is chunked into
``ceil(n / g)`` contiguous groups of at most ``g`` slots.  Any party —
blinder, service, engine, auditor — recomputes the identical plan
without coordination, and a client's subgroup rotates round to round so
no subgroup is a stable linkability anchor.

Everything is numpy-backed (one ``int64`` permutation array plus its
inverse) so a u1M plan costs ~16 MB, not a million Python tuples.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.drbg import HmacDrbg
from repro.errors import ConfigurationError


def _slot_keys(round_id: int, num_slots: int) -> np.ndarray:
    """One uint64 permutation key per slot, reproducible from the round id."""
    rng = HmacDrbg(
        b"glimmer-subgroup:" + int(round_id).to_bytes(8, "big", signed=False),
        personalization="subgroup-plan",
    )
    return rng.uint64_vector(num_slots)


class SubgroupPlan:
    """The frozen grouping of one round's slots into bounded subgroups."""

    __slots__ = ("round_id", "num_slots", "group_size", "order", "group_of_slot")

    def __init__(
        self, round_id: int, num_slots: int, group_size: int, order: np.ndarray
    ) -> None:
        self.round_id = round_id
        self.num_slots = num_slots
        self.group_size = group_size
        #: Permutation of ``range(num_slots)``; group ``g`` owns the
        #: contiguous block ``order[g*group_size : (g+1)*group_size]``.
        self.order = order
        inverse = np.empty(num_slots, dtype=np.int64)
        inverse[order] = np.arange(num_slots, dtype=np.int64)
        #: ``group_of_slot[slot]`` is the subgroup index owning ``slot``.
        self.group_of_slot = inverse // group_size

    @property
    def num_groups(self) -> int:
        return -(-self.num_slots // self.group_size)

    def group_of(self, slot: int) -> int:
        if not 0 <= slot < self.num_slots:
            raise ConfigurationError(
                f"slot {slot} outside the round's {self.num_slots} slots"
            )
        return int(self.group_of_slot[slot])

    def slots_in(self, group: int) -> tuple[int, ...]:
        """The slot indices of one subgroup, in permutation order."""
        if not 0 <= group < self.num_groups:
            raise ConfigurationError(
                f"subgroup {group} outside the plan's {self.num_groups} groups"
            )
        start = group * self.group_size
        return tuple(
            int(s) for s in self.order[start : start + self.group_size]
        )

    def local_index(self, slot: int) -> int:
        """A slot's position inside its own subgroup's mask family."""
        group = self.group_of(slot)
        block = self.order[
            group * self.group_size : (group + 1) * self.group_size
        ]
        return int(np.nonzero(block == slot)[0][0])

    def groups(self) -> tuple[tuple[int, ...], ...]:
        """Every subgroup's slot tuple (test/inspection helper; O(n))."""
        return tuple(self.slots_in(g) for g in range(self.num_groups))


def plan_subgroups(round_id: int, num_slots: int, group_size: int) -> SubgroupPlan:
    """Partition a round's slots into DRBG-keyed subgroups of size <= g.

    The permutation is a stable argsort of per-slot uint64 keys (ties —
    vanishingly rare — break by slot index, keeping the plan fully
    deterministic), chunked into contiguous blocks.  Every block except
    possibly the last holds exactly ``group_size`` slots; the last holds
    the remainder, and a remainder of one is a legal size-1 subgroup
    whose single mask is the zero vector (a sum-zero family of one).
    """
    if num_slots < 1:
        raise ConfigurationError("num_slots must be >= 1")
    if group_size < 1:
        raise ConfigurationError("group_size must be >= 1")
    group_size = min(group_size, num_slots)
    keys = _slot_keys(round_id, num_slots)
    order = np.argsort(keys, kind="stable").astype(np.int64)
    return SubgroupPlan(round_id, num_slots, group_size, order)
