"""Deterministic cohort sharding and bit-exact partial reducers.

Participants are hash-partitioned into ``K`` cohort shards with sha256
(never Python's seeded ``hash``), so the assignment is stable across
processes, interpreters, and ``PYTHONHASHSEED`` values.  Each shard
computes *partials* — a partial ring sum over its stacked rows, partial
limb-column sums, a partial product of its Pedersen commitment points —
and a root reducer merges them.  Every merge is an associative,
commutative fold (``uint64`` addition mod ``2^64``, integer addition,
modular multiplication), so the merged result is the *same integer* the
flat serial computation produces: sharding is a topology choice, never a
numerical one.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

from repro.perf import kernels


def shard_of(round_id: int, user_id: str, num_shards: int) -> int:
    """Which cohort shard ``(round_id, user_id)`` lands in.

    sha256-based so the partition is reproducible everywhere; keyed by
    round so a user's shard rotates round to round (no hot cohort).
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if num_shards == 1:
        return 0
    digest = hashlib.sha256(
        b"glimmer-shard:"
        + int(round_id).to_bytes(8, "big", signed=False)
        + user_id.encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") % num_shards


def plan_shards(
    round_id: int, user_ids: Sequence[str], num_shards: int
) -> tuple[tuple[int, ...], ...]:
    """Group participant *positions* (slot indices) by shard.

    Returns ``num_shards`` tuples; shard ``s`` holds the slot indices of
    the users hashed into it, in slot order.  Shards may be empty (for
    example when ``num_shards`` exceeds the cohort size).
    """
    groups: list[list[int]] = [[] for _ in range(num_shards)]
    for slot, user_id in enumerate(user_ids):
        groups[shard_of(round_id, user_id, num_shards)].append(slot)
    return tuple(tuple(group) for group in groups)


# ----------------------------------------------------------- ring partials


def partial_ring_sums(
    matrix: np.ndarray, groups: Sequence[Sequence[int]], modulus_bits: int
) -> np.ndarray:
    """One partial ring sum per row group (empty groups sum to zero)."""
    rows = kernels.as_ring_rows(matrix, modulus_bits)
    partials = np.zeros((len(groups), rows.shape[1]), dtype=kernels.U64)
    for index, group in enumerate(groups):
        if group:
            partials[index] = kernels.ring_sum_rows(
                rows[np.asarray(group, dtype=np.intp)], modulus_bits
            )
    return partials


def merge_ring_partials(partials: np.ndarray, modulus_bits: int) -> np.ndarray:
    """Root reduce: ring-sum the per-shard partial rows."""
    return kernels.ring_sum_rows(partials, modulus_bits)


class ShardedRingReducer:
    """A ``callable(matrix, modulus_bits) -> row`` that sums via shard partials.

    Drop-in for :func:`repro.perf.kernels.ring_sum_rows` anywhere a
    blinded matrix (contributions or dropout-repair masks) is folded:
    rows are partitioned into ``num_shards`` contiguous blocks, each
    block ring-sums to a partial, and the partials ring-sum to the total.
    ``uint64`` addition wraps mod ``2^64`` and ``2^modulus_bits`` divides
    ``2^64``, so the two-level fold is bit-identical to the flat sum for
    every partition.
    """

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards

    def __call__(self, matrix: np.ndarray, modulus_bits: int = 64) -> np.ndarray:
        rows = kernels.as_ring_rows(matrix, modulus_bits)
        if rows.shape[0] <= 1 or self.num_shards == 1:
            return kernels.ring_sum_rows(rows, modulus_bits)
        blocks = np.array_split(rows, min(self.num_shards, rows.shape[0]))
        partials = np.stack(
            [kernels.ring_sum_rows(block, modulus_bits) for block in blocks]
        )
        return merge_ring_partials(partials, modulus_bits)


# ------------------------------------------------------ limb-column partials


def partial_limb_column_sums(
    matrix: np.ndarray,
    groups: Sequence[Sequence[int]],
    num_limbs: int,
    limb_bits: int = 16,
) -> list[np.ndarray]:
    """Per-shard partial limb-column sums (empty shards contribute zeros)."""
    rows = kernels.as_ring_rows(matrix)
    partials = []
    for group in groups:
        if group:
            partials.append(
                kernels.limb_column_sums(
                    rows[np.asarray(group, dtype=np.intp)], num_limbs, limb_bits
                )
            )
        else:
            partials.append(
                np.zeros((num_limbs, rows.shape[1]), dtype=kernels.U64)
            )
    return partials


def merge_limb_partials(partials: Sequence[np.ndarray]) -> np.ndarray:
    """Root reduce: integer-sum the per-shard limb-column partials.

    Each partial entry is bounded by ``rows_in_shard · 2^limb_bits`` and
    the merged entry by ``total_rows · 2^limb_bits`` — far inside
    ``uint64`` for every supported cohort size, so the sum is exact.
    """
    return np.sum(np.stack(list(partials)), axis=0, dtype=kernels.U64)


# ------------------------------------------------------- sum-zero partials


def partial_point_products(
    points: Sequence[int], groups: Sequence[Sequence[int]], prime: int
) -> tuple[int, ...]:
    """Per-shard partial products of Pedersen commitment points mod ``p``."""
    partials = []
    for group in groups:
        product = 1
        for slot in group:
            product = (product * int(points[slot])) % prime
        partials.append(product)
    return tuple(partials)


def merge_point_partials(partials: Sequence[int], prime: int) -> int:
    """Root reduce: multiply the per-shard partial products mod ``p``."""
    product = 1
    for partial in partials:
        product = (product * int(partial)) % prime
    return product
