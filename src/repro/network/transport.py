"""RPC-style simulated transport with latency accounting.

Endpoints register handlers per message kind; :meth:`Network.call` delivers
a request through the adversary chain, advances the simulated clock by a
sampled one-way latency each direction, and returns the handler's response.
One-way :meth:`Network.send` is available for fire-and-forget flows.

Both legs of a call face the adversary chain: the response travels back as
its own :class:`Message` (kind ``<kind>/reply``, addressing reversed), so
drop models and eavesdroppers apply symmetrically.  A dropped response
raises :class:`NetworkError` *after* the handler ran — callers that retry
get at-least-once semantics and handlers must treat retransmissions
(``Message.attempt > 1``) idempotently.  Responses do not count toward
``messages_delivered``/``bytes_delivered`` (those meter request traffic,
which keeps phase accounting comparable across experiments) but a dropped
response does count as a drop.

The transport itself offers **no** security: anything an adversary should
not read or forge must go through :mod:`repro.network.channel` or carry a
Glimmer signature.  That is the point — experiments show the architecture's
guarantees surviving a hostile network, not a polite one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.crypto.drbg import HmacDrbg
from repro.errors import NetworkError
from repro.faults import ACTION_DROP, SITE_REQUEST, SITE_RESPONSE
from repro.network.adversary import NetworkAdversary
from repro.network.clock import LatencyModel, SimulatedClock
from repro.network.message import Message
from repro.sgx.enclave import payload_size


Handler = Callable[[Message], Any]

REPLY_SUFFIX = "/reply"
"""Appended to a request's kind to tag its response message, so kind-based
adversaries and capture filters can tell the two legs apart."""


@dataclass
class Endpoint:
    """A named protocol participant with per-kind handlers."""

    name: str
    handlers: dict[str, Handler]

    def handle(self, message: Message) -> Any:
        handler = self.handlers.get(message.kind)
        if handler is None:
            raise NetworkError(
                f"endpoint {self.name!r} has no handler for kind {message.kind!r}"
            )
        return handler(message)


class Network:
    """The simulated wire connecting all endpoints.

    Parameters
    ----------
    clock:
        Shared simulated clock; advanced by sampled latency per delivery.
    latency:
        Default latency model; :meth:`set_link_latency` overrides per
        (sender, receiver) pair, which is how E10 models device-local vs.
        WAN-remote Glimmer hosts.
    """

    def __init__(
        self,
        clock: SimulatedClock | None = None,
        latency: LatencyModel | None = None,
        seed: bytes = b"network",
        fault_injector=None,
    ) -> None:
        self.fault_injector = fault_injector
        self.clock = clock or SimulatedClock()
        self._default_latency = latency or LatencyModel()
        self._link_latency: dict[tuple[str, str], LatencyModel] = {}
        self._endpoints: dict[str, Endpoint] = {}
        self._adversaries: list[NetworkAdversary] = []
        self._rng = HmacDrbg(seed, personalization="network-latency")
        self._next_message_id = 1
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_delivered = 0
        self.replies_delivered = 0
        """Responses that survived the adversary chain.  Kept separate
        from ``messages_delivered`` on purpose: request-traffic meters
        stay comparable across experiments (the documented contract),
        while the reply leg is still auditable — a dropped reply shows
        up in ``messages_dropped`` and *only* there."""
        self._redeliveries: list[Message] = []
        self._in_flight = 0
        self.redeliveries_delivered = 0
        self.redeliveries_failed = 0

    # ------------------------------------------------------------- topology

    def register(self, name: str, handlers: dict[str, Handler]) -> Endpoint:
        """Attach an endpoint.  Handler keys are message kinds."""
        if name in self._endpoints:
            raise NetworkError(f"endpoint {name!r} already registered")
        endpoint = Endpoint(name=name, handlers=dict(handlers))
        self._endpoints[name] = endpoint
        return endpoint

    def add_handler(self, name: str, kind: str, handler: Handler) -> None:
        endpoint = self._endpoints.get(name)
        if endpoint is None:
            raise NetworkError(f"unknown endpoint {name!r}")
        endpoint.handlers[kind] = handler

    def set_link_latency(self, sender: str, receiver: str, model: LatencyModel) -> None:
        """Override latency for one directed link (and its reverse)."""
        self._link_latency[(sender, receiver)] = model
        self._link_latency[(receiver, sender)] = model

    def interpose(self, adversary: NetworkAdversary) -> None:
        """Add an on-path adversary; they run in interposition order."""
        self._adversaries.append(adversary)

    def clear_adversaries(self) -> None:
        self._adversaries.clear()

    # ------------------------------------------------------------- delivery

    def _latency_for(self, sender: str, receiver: str, size: int) -> float:
        model = self._link_latency.get((sender, receiver), self._default_latency)
        return model.sample(size, self._rng)

    def _through_adversaries(self, message: Message) -> Message | None:
        current: Message | None = message
        for adversary in self._adversaries:
            if current is None:
                return None
            current = adversary.process(current)
        return current

    def deliver_raw(self, message: Message) -> Any:
        """Deliver a message as-is (used by replay attacks); returns the response."""
        endpoint = self._endpoints.get(message.receiver)
        if endpoint is None:
            raise NetworkError(f"unknown endpoint {message.receiver!r}")
        size = payload_size(message.payload)
        self.clock.advance(self._latency_for(message.sender, message.receiver, size))
        self.messages_delivered += 1
        self.bytes_delivered += size
        return endpoint.handle(message)

    def _transmit(
        self, sender: str, receiver: str, kind: str, payload: Any, attempt: int = 1
    ) -> tuple[bool, Any]:
        """Push one message through adversaries and deliver; (delivered, result)."""
        message = Message(
            sender=sender,
            receiver=receiver,
            kind=kind,
            payload=payload,
            message_id=self._next_message_id,
            sent_at_ms=self.clock.now_ms(),
            attempt=attempt,
        )
        self._next_message_id += 1
        processed = self._through_adversaries(message)
        if processed is not None and self.fault_injector is not None:
            if (
                self.fault_injector.fire(
                    SITE_REQUEST, kind=kind, sender=sender, receiver=receiver
                )
                == ACTION_DROP
            ):
                processed = None
        if processed is None:
            self.messages_dropped += 1
            return False, None
        self._in_flight += 1
        try:
            result = self.deliver_raw(processed)
        finally:
            self._in_flight -= 1
        self._drain_redeliveries()
        return True, result

    def enqueue_redelivery(self, message: Message) -> None:
        """Queue a duplicate/stale copy for delivery after the current one.

        Adversaries modeling a duplicating or reordering network (link
        conditions, autonomous replay) call this from ``process``: the
        copy must not land *before* the message being processed, so it is
        queued and drained only once the *outermost* delivery completes —
        a duplicate of a command whose handler is still on the stack
        (handlers make nested calls) must not re-enter that handler
        mid-operation, before its idempotency record exists.  Queued
        copies go through :meth:`deliver_raw` — they skip the adversary
        chain (no duplicate-of-duplicate cascades) and their handler
        responses go nowhere, exactly like a stray datagram's would.
        """
        self._redeliveries.append(message)

    def _drain_redeliveries(self) -> None:
        if self._in_flight:
            return  # a handler is still running; its caller drains
        while self._redeliveries:
            pending = self._redeliveries.pop(0)
            self._in_flight += 1
            try:
                self.deliver_raw(pending)
            except Exception:
                # A duplicate that a handler rejects (protocol violation,
                # unknown endpoint after a re-registration) dies on the
                # floor, as real stray packets do; the violation is
                # already recorded by the handler's own checks.
                self.redeliveries_failed += 1
            else:
                self.redeliveries_delivered += 1
            finally:
                self._in_flight -= 1

    def send(self, sender: str, receiver: str, kind: str, payload: Any) -> Any:
        """One-way delivery through the adversary chain.

        Returns the handler's return value, or ``None`` if an adversary
        dropped the message (fire-and-forget semantics: the sender cannot
        tell the difference).
        """
        __, result = self._transmit(sender, receiver, kind, payload)
        return result

    def call(
        self, sender: str, receiver: str, kind: str, payload: Any, attempt: int = 1
    ) -> Any:
        """Request/response over a hostile wire, both legs exposed.

        Raises :class:`NetworkError` if either leg is dropped.  A dropped
        *request* means the handler never ran, so a retry is free.  A
        dropped *response* means the handler already ran — the caller
        cannot tell which, so retried calls must pass an incremented
        ``attempt`` and handlers must answer retransmissions idempotently.
        The response faces the same adversary chain as the request (as its
        own ``<kind>/reply`` message) but is metered only as latency, not
        as delivered request traffic.
        """
        delivered, result = self._transmit(sender, receiver, kind, payload, attempt)
        if not delivered:
            raise NetworkError(f"request {kind!r} to {receiver!r} was dropped")
        response = Message(
            sender=receiver,
            receiver=sender,
            kind=kind + REPLY_SUFFIX,
            payload=result,
            message_id=self._next_message_id,
            sent_at_ms=self.clock.now_ms(),
            attempt=attempt,
        )
        self._next_message_id += 1
        processed = self._through_adversaries(response)
        if processed is not None and self.fault_injector is not None:
            if (
                self.fault_injector.fire(
                    SITE_RESPONSE, kind=kind, sender=receiver, receiver=sender
                )
                == ACTION_DROP
            ):
                processed = None
        if processed is None:
            self.messages_dropped += 1
            raise NetworkError(
                f"response to {kind!r} from {receiver!r} was dropped "
                "(the handler may have run)"
            )
        self.replies_delivered += 1
        self.clock.advance(
            self._latency_for(receiver, sender, payload_size(processed.payload))
        )
        self._drain_redeliveries()
        return processed.payload
