"""Deterministic degraded-link conditions for flaky device fleets.

The §4.2 deployment the paper sketches — thousands of heterogeneous
devices proxying through a hosted Glimmer — does not run over the polite
transport the early experiments assume.  Radios fade, cellular links
burst-drop, NATs partition, devices disconnect and rejoin, clocks skew,
and firmware versions drift.  This module models that weather as data:

* a :class:`ConditionProfile` names a climate (``urban-wifi``,
  ``cellular-edge``, ``hostile``) as sampling ranges;
* :func:`sample_fleet_plan` draws one fully deterministic
  :class:`FleetPlan` from ``(seed, index, profile)`` — per-client
  :class:`LinkSchedule` biographies (loss bursts, latency spikes,
  partition and disconnect episodes, duplicate deliveries, clock skew,
  firmware-version skew) plus the policy-epoch bumps the attestation
  session layer must survive.  The same coordinates always yield the
  same plan, so every chaotic fleet run is replayable bit for bit;
* :class:`LinkConditions` is a :class:`~repro.network.adversary.
  NetworkAdversary` that *executes* a plan on the wire: it drops, delays,
  duplicates, skews, and — for firmware-skewed devices — perturbs
  submissions in ways :mod:`repro.runtime.wire` schema validation must
  catch, so a corrupted contribution becomes attributable Byzantine
  evidence rather than silent aggregate poison.

Only traffic to or from a *scheduled* client endpoint is affected;
engine ↔ service ↔ blinder legs pass untouched.  Duplicates are
re-deliveries of the same logical send (``attempt + 1``), queued through
:meth:`repro.network.transport.Network.enqueue_redelivery` so they land
*after* the original and exercise the handlers' idempotency caches —
modeling a duplicating network, not an attacker forging fresh replays.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from repro.crypto.drbg import HmacDrbg
from repro.network.message import Message
from repro.network.adversary import NetworkAdversary
from repro.network.transport import REPLY_SUFFIX

_CLIENT_PREFIX = "client:"
_SUBMIT_KIND = "contribution/submit"

__all__ = [
    "ConditionProfile",
    "Episode",
    "LinkSchedule",
    "FleetPlan",
    "LinkConditions",
    "PROFILES",
    "URBAN_WIFI",
    "CELLULAR_EDGE",
    "HOSTILE",
    "resolve_profile",
    "sample_fleet_plan",
]


@dataclass(frozen=True)
class ConditionProfile:
    """Sampling ranges for one fleet climate.

    Rates are per-message (bursts, spikes, duplicates) or per-client
    (partition/disconnect/firmware-skew membership); ``(lo, hi)`` pairs
    are uniform sampling ranges.  ``ambient_drop_rate`` and
    ``replay_rate`` parameterize the *composed* classic adversaries
    (:class:`~repro.network.adversary.DropAdversary` /
    :class:`~repro.network.adversary.ReplayAdversary`) the fleet harness
    interposes alongside the link conditions; ``epoch_bump_rate`` is the
    per-round probability that the verifier bumps its quote-policy
    epoch, forcing full re-attestation.
    """

    name: str
    extra_latency_ms: tuple[float, float]
    jitter_ms: float
    spike_rate: float
    spike_ms: tuple[float, float]
    burst_start_rate: float
    burst_length: tuple[int, int]
    duplicate_rate: float
    partition_member_rate: float
    partition_episodes: tuple[int, int]
    partition_ms: tuple[float, float]
    disconnect_member_rate: float
    disconnect_episodes: tuple[int, int]
    disconnect_ms: tuple[float, float]
    clock_skew_ms: tuple[float, float]
    firmware_skew_rate: float
    firmware_perturb_rate: float
    ambient_drop_rate: float
    replay_rate: float
    epoch_bump_rate: float


URBAN_WIFI = ConditionProfile(
    name="urban-wifi",
    extra_latency_ms=(5.0, 30.0),
    jitter_ms=10.0,
    spike_rate=0.05,
    spike_ms=(50.0, 150.0),
    burst_start_rate=0.02,
    burst_length=(1, 3),
    duplicate_rate=0.02,
    partition_member_rate=0.2,
    partition_episodes=(1, 1),
    partition_ms=(200.0, 600.0),
    disconnect_member_rate=0.15,
    disconnect_episodes=(1, 1),
    disconnect_ms=(300.0, 900.0),
    clock_skew_ms=(-50.0, 50.0),
    firmware_skew_rate=0.15,
    firmware_perturb_rate=0.2,
    ambient_drop_rate=0.01,
    replay_rate=0.02,
    epoch_bump_rate=0.05,
)

CELLULAR_EDGE = ConditionProfile(
    name="cellular-edge",
    extra_latency_ms=(20.0, 120.0),
    jitter_ms=40.0,
    spike_rate=0.12,
    spike_ms=(150.0, 600.0),
    burst_start_rate=0.05,
    burst_length=(2, 6),
    duplicate_rate=0.05,
    partition_member_rate=0.3,
    partition_episodes=(1, 2),
    partition_ms=(400.0, 1200.0),
    disconnect_member_rate=0.3,
    disconnect_episodes=(1, 2),
    disconnect_ms=(500.0, 1500.0),
    clock_skew_ms=(-200.0, 200.0),
    firmware_skew_rate=0.25,
    firmware_perturb_rate=0.3,
    ambient_drop_rate=0.02,
    replay_rate=0.04,
    epoch_bump_rate=0.1,
)

HOSTILE = ConditionProfile(
    name="hostile",
    extra_latency_ms=(40.0, 250.0),
    jitter_ms=80.0,
    spike_rate=0.2,
    spike_ms=(300.0, 1200.0),
    burst_start_rate=0.08,
    burst_length=(3, 8),
    duplicate_rate=0.1,
    partition_member_rate=0.45,
    partition_episodes=(1, 3),
    partition_ms=(600.0, 2000.0),
    disconnect_member_rate=0.4,
    disconnect_episodes=(1, 2),
    disconnect_ms=(800.0, 2500.0),
    clock_skew_ms=(-1000.0, 1000.0),
    firmware_skew_rate=0.3,
    firmware_perturb_rate=0.4,
    ambient_drop_rate=0.04,
    replay_rate=0.08,
    epoch_bump_rate=0.25,
)

PROFILES: dict[str, ConditionProfile] = {
    profile.name: profile for profile in (URBAN_WIFI, CELLULAR_EDGE, HOSTILE)
}


def resolve_profile(profile: str | ConditionProfile) -> ConditionProfile:
    """Accept either a profile name or a profile object."""
    if isinstance(profile, ConditionProfile):
        return profile
    try:
        return PROFILES[profile]
    except KeyError:
        raise ValueError(
            f"unknown condition profile {profile!r}; "
            f"known: {sorted(PROFILES)}"
        ) from None


@dataclass(frozen=True)
class Episode:
    """A half-open offline window, in ms relative to the plan epoch."""

    start_ms: float
    end_ms: float

    def covers(self, rel_ms: float) -> bool:
        return self.start_ms <= rel_ms < self.end_ms


@dataclass(frozen=True)
class LinkSchedule:
    """One client's fully sampled link biography for a schedule."""

    client_id: str
    extra_latency_ms: float
    jitter_ms: float
    spike_rate: float
    spike_ms: tuple[float, float]
    burst_start_rate: float
    burst_length: tuple[int, int]
    duplicate_rate: float
    partitions: tuple[Episode, ...]
    disconnects: tuple[Episode, ...]
    clock_skew_ms: float
    firmware_skew: bool
    firmware_perturb_rate: float

    def partitioned_at(self, rel_ms: float) -> bool:
        return any(episode.covers(rel_ms) for episode in self.partitions)

    def disconnected_at(self, rel_ms: float) -> bool:
        return any(episode.covers(rel_ms) for episode in self.disconnects)

    def offline_at(self, rel_ms: float) -> bool:
        return self.partitioned_at(rel_ms) or self.disconnected_at(rel_ms)

    def describe(self) -> tuple:
        """A canonical, comparable fingerprint of this schedule."""
        return (
            self.client_id,
            round(self.extra_latency_ms, 6),
            round(self.clock_skew_ms, 6),
            tuple((e.start_ms, e.end_ms) for e in self.partitions),
            tuple((e.start_ms, e.end_ms) for e in self.disconnects),
            self.firmware_skew,
        )


@dataclass(frozen=True)
class FleetPlan:
    """A replayable fleet schedule: per-client links + policy-epoch bumps."""

    profile: str
    label: str
    horizon_ms: float
    links: Mapping[str, LinkSchedule]
    epoch_bumps: tuple[int, ...]
    """Round ordinals (0-based within the schedule) at which the
    verifier bumps its quote-policy epoch, invalidating every
    outstanding session ticket."""

    def schedule_for(self, client_id: str) -> LinkSchedule | None:
        return self.links.get(client_id)

    def describe(self) -> tuple:
        """A canonical fingerprint; equal plans ⇔ equal fingerprints."""
        return (
            self.profile,
            self.label,
            self.horizon_ms,
            tuple(self.links[c].describe() for c in sorted(self.links)),
            self.epoch_bumps,
        )


def _span(rng: HmacDrbg, lo: float, hi: float) -> float:
    return lo + (hi - lo) * rng.uniform()


def _episodes(
    rng: HmacDrbg,
    member_rate: float,
    count_range: tuple[int, int],
    length_range: tuple[float, float],
    horizon_ms: float,
) -> tuple[Episode, ...]:
    if rng.uniform() >= member_rate:
        return ()
    lo, hi = count_range
    count = lo + (rng.randint(hi - lo + 1) if hi > lo else 0)
    episodes = []
    for _ in range(count):
        length = _span(rng, *length_range)
        start = rng.uniform() * max(horizon_ms - length, 1.0)
        episodes.append(Episode(start_ms=start, end_ms=start + length))
    return tuple(sorted(episodes, key=lambda e: e.start_ms))


def sample_fleet_plan(
    seed: bytes,
    index: int,
    profile: str | ConditionProfile,
    clients: Sequence[str],
    *,
    rounds: int = 4,
    horizon_ms: float = 8000.0,
) -> FleetPlan:
    """Draw one fully replayable fleet schedule.

    The same ``(seed, index, profile, clients)`` always produces the
    same plan: each client's schedule comes from its own forked DRBG
    stream (keyed by client id), so plans are also stable under cohort
    reordering.  Firmware skew is capped at a third of the cohort —
    skewed devices end up quarantined as Byzantine once they emit a
    malformed submission, and a mostly-skewed fleet could not finalize
    anything.
    """
    resolved = resolve_profile(profile)
    root = HmacDrbg(
        seed, personalization=f"fleet-plan:{resolved.name}:{index}"
    )
    links: dict[str, LinkSchedule] = {}
    skewed_budget = max(1, len(clients) // 3)
    skewed = 0
    for client_id in sorted(clients):
        rng = root.fork(f"link:{client_id}")
        firmware_skew = (
            skewed < skewed_budget
            and rng.uniform() < resolved.firmware_skew_rate
        )
        if firmware_skew:
            skewed += 1
        links[client_id] = LinkSchedule(
            client_id=client_id,
            extra_latency_ms=_span(rng, *resolved.extra_latency_ms),
            jitter_ms=resolved.jitter_ms,
            spike_rate=resolved.spike_rate,
            spike_ms=resolved.spike_ms,
            burst_start_rate=resolved.burst_start_rate,
            burst_length=resolved.burst_length,
            duplicate_rate=resolved.duplicate_rate,
            partitions=_episodes(
                rng,
                resolved.partition_member_rate,
                resolved.partition_episodes,
                resolved.partition_ms,
                horizon_ms,
            ),
            disconnects=_episodes(
                rng,
                resolved.disconnect_member_rate,
                resolved.disconnect_episodes,
                resolved.disconnect_ms,
                horizon_ms,
            ),
            clock_skew_ms=_span(rng, *resolved.clock_skew_ms),
            firmware_skew=firmware_skew,
            firmware_perturb_rate=resolved.firmware_perturb_rate,
        )
    bump_rng = root.fork("epoch-bumps")
    epoch_bumps = tuple(
        r for r in range(rounds) if bump_rng.uniform() < resolved.epoch_bump_rate
    )
    label = f"{seed.decode('utf-8', 'replace')}#{index}@{resolved.name}"
    return FleetPlan(
        profile=resolved.name,
        label=label,
        horizon_ms=float(horizon_ms),
        links=links,
        epoch_bumps=epoch_bumps,
    )


def _client_of(message: Message) -> str | None:
    """The client party a message belongs to (sender wins over receiver)."""
    for endpoint in (message.sender, message.receiver):
        if endpoint.startswith(_CLIENT_PREFIX):
            return endpoint[len(_CLIENT_PREFIX):]
    return None


class LinkConditions(NetworkAdversary):
    """Executes a :class:`FleetPlan` as an on-path network condition.

    Interpose on the :class:`~repro.network.transport.Network` *and*
    call :meth:`attach` with it (duplicates need the redelivery queue).
    All randomness comes from the injected DRBG, forked per client, so
    the conditions compose replay-deterministically with any other
    DRBG-injected adversary on the chain.  :meth:`calm` ends the storm:
    a calmed instance passes every message untouched, which is how the
    fleet harness models weather that eventually clears.
    """

    def __init__(self, plan: FleetPlan, clock, rng: HmacDrbg) -> None:
        self.plan = plan
        self.clock = clock
        self.epoch_ms = clock.now_ms()
        self._rngs = {
            client_id: rng.fork(f"conditions:{client_id}")
            for client_id in sorted(plan.links)
        }
        self._burst_left: dict[str, int] = {}
        self._network = None
        self._calm = False
        # Observability counters (all deterministic, all replay-comparable).
        self.offline_drops = 0
        self.burst_drops = 0
        self.duplicates = 0
        self.spikes = 0
        self.skewed_clock = 0
        self.perturbed_submissions = 0
        self.delay_injected_ms = 0.0

    # ------------------------------------------------------------ lifecycle

    def attach(self, network) -> None:
        """Give the conditions a redelivery queue for duplicate delivery."""
        self._network = network

    def calm(self) -> None:
        """The weather clears: stop affecting traffic (idempotent)."""
        self._calm = True

    def counters(self) -> dict[str, float]:
        return {
            "offline_drops": self.offline_drops,
            "burst_drops": self.burst_drops,
            "duplicates": self.duplicates,
            "spikes": self.spikes,
            "skewed_clock": self.skewed_clock,
            "perturbed_submissions": self.perturbed_submissions,
            "delay_injected_ms": round(self.delay_injected_ms, 6),
        }

    # -------------------------------------------------------------- oracles

    def _rel_now(self, now_ms: float | None = None) -> float:
        now = self.clock.now_ms() if now_ms is None else now_ms
        return now - self.epoch_ms

    def offline_for(self, client_id: str, now_ms: float | None = None) -> bool:
        """Partition-awareness oracle: is this device unreachable now?

        The engine's cohort trimming consults this at phase boundaries —
        the network operator *can* observe reachability (pings fail),
        without learning anything about contribution contents.
        """
        if self._calm:
            return False
        schedule = self.plan.schedule_for(client_id)
        return schedule is not None and schedule.offline_at(self._rel_now(now_ms))

    def disconnected_for(
        self, client_id: str, now_ms: float | None = None
    ) -> bool:
        if self._calm:
            return False
        schedule = self.plan.schedule_for(client_id)
        return schedule is not None and schedule.disconnected_at(
            self._rel_now(now_ms)
        )

    # ------------------------------------------------------------ processing

    def process(self, message: Message) -> Message | None:
        if self._calm:
            return message
        client_id = _client_of(message)
        if client_id is None:
            return message
        schedule = self.plan.schedule_for(client_id)
        if schedule is None:
            return message
        rng = self._rngs[client_id]
        rel = self._rel_now()
        if schedule.offline_at(rel):
            self.offline_drops += 1
            return None
        left = self._burst_left.get(client_id, 0)
        if left > 0:
            self._burst_left[client_id] = left - 1
            self.burst_drops += 1
            return None
        if rng.uniform() < schedule.burst_start_rate:
            lo, hi = schedule.burst_length
            length = lo + (rng.randint(hi - lo + 1) if hi > lo else 0)
            self._burst_left[client_id] = max(length - 1, 0)
            self.burst_drops += 1
            return None
        delay = schedule.extra_latency_ms + rng.uniform() * schedule.jitter_ms
        if rng.uniform() < schedule.spike_rate:
            delay += _span(rng, *schedule.spike_ms)
            self.spikes += 1
        self.delay_injected_ms += delay
        self.clock.advance(delay)
        if (
            self._network is not None
            and not message.kind.endswith(REPLY_SUFFIX)
            and rng.uniform() < schedule.duplicate_rate
        ):
            # A duplicating network re-delivers the same logical send;
            # attempt + 1 marks it as such, so idempotent handlers answer
            # from cache instead of double-executing.  Queued, not
            # delivered inline: the copy must land *after* the original.
            self._network.enqueue_redelivery(
                replace(message, attempt=message.attempt + 1)
            )
            self.duplicates += 1
        message = self._skewed(message, schedule, rng)
        return message

    def _skewed(
        self, message: Message, schedule: LinkSchedule, rng: HmacDrbg
    ) -> Message:
        """Apply clock skew and (for skewed firmware) wire perturbation."""
        if message.sender.startswith(_CLIENT_PREFIX):
            if schedule.clock_skew_ms:
                skewed_at = max(
                    0.0, message.sent_at_ms + schedule.clock_skew_ms
                )
                message = replace(message, sent_at_ms=skewed_at)
                self.skewed_clock += 1
            if (
                schedule.firmware_skew
                and message.kind == _SUBMIT_KIND
                and rng.uniform() < schedule.firmware_perturb_rate
            ):
                perturbed = self._perturb_submission(message, rng)
                if perturbed is not None:
                    self.perturbed_submissions += 1
                    message = perturbed
        return message

    def _perturb_submission(
        self, message: Message, rng: HmacDrbg
    ) -> Message | None:
        """Mutate a submission the way skewed firmware would.

        Every mutation violates the :mod:`repro.runtime.wire` schema, so
        the service rejects it as attributable Byzantine evidence and the
        slot degrades into §3 dropout repair — corruption is *detected*,
        never silently aggregated.
        """
        payload = message.payload
        contribution = getattr(payload, "contribution", None)
        if contribution is None:
            return None
        mutation = rng.choice(("nonce", "ring", "confidence"))
        try:
            if mutation == "nonce":
                mutated = replace(
                    contribution, nonce=contribution.nonce + b"\xff"
                )
            elif mutation == "ring" and contribution.ring_payload:
                words = (1 << 64,) + tuple(contribution.ring_payload[1:])
                mutated = replace(contribution, ring_payload=words)
            else:
                mutated = replace(contribution, confidence=float("nan"))
            return replace(message, payload=replace(payload, contribution=mutated))
        except TypeError:
            return None
