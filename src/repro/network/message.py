"""Network messages.

A :class:`Message` is what crosses the simulated wire.  Payloads are
arbitrary Python objects at the transport layer; *secure* payloads are
byte strings produced by :class:`repro.network.channel.SecureChannel`, so
an on-path adversary holding a raw message sees only ciphertext.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any


@dataclass(frozen=True)
class Message:
    """One transmission: addressing, a kind tag, and an opaque payload."""

    sender: str
    receiver: str
    kind: str
    payload: Any
    message_id: int = 0
    sent_at_ms: float = 0.0

    def with_payload(self, payload: Any) -> "Message":
        """Copy with a replaced payload (tamper adversaries use this)."""
        return replace(self, payload=payload)

    def redirected(self, receiver: str) -> "Message":
        """Copy addressed to someone else (misrouting attacks)."""
        return replace(self, receiver=receiver)
