"""Network messages.

A :class:`Message` is what crosses the simulated wire.  Payloads are
arbitrary Python objects at the transport layer; *secure* payloads are
byte strings produced by :class:`repro.network.channel.SecureChannel`, so
an on-path adversary holding a raw message sees only ciphertext.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any


@dataclass(frozen=True)
class Message:
    """One transmission: addressing, a kind tag, and an opaque payload."""

    sender: str
    receiver: str
    kind: str
    payload: Any
    message_id: int = 0
    sent_at_ms: float = 0.0
    attempt: int = 1
    """Which delivery attempt of the same logical request this is.

    ``attempt > 1`` marks a sender-side retransmission.  Handlers with
    side effects key their idempotency caches on it: a retransmission may
    be answered from cache (the response leg can drop after the handler
    ran), while a *fresh* message replaying old content (``attempt == 1``)
    still hits the strict protocol checks — replay attacks must not ride
    the retry path.
    """

    def with_payload(self, payload: Any) -> "Message":
        """Copy with a replaced payload (tamper adversaries use this)."""
        return replace(self, payload=payload)

    def redirected(self, receiver: str) -> "Message":
        """Copy addressed to someone else (misrouting attacks)."""
        return replace(self, receiver=receiver)
