"""On-path network adversaries.

The paper's trust boundary (Figure 2) assumes the network between client and
service is hostile.  Experiments interpose these adversaries on the
simulated transport to check that each protocol stops what it claims to
stop: tampered contributions fail signature checks, replays fail sequence
checks, and eavesdropping on secure channels yields only ciphertext.

Every adversary implements :meth:`NetworkAdversary.process`, returning
either a (possibly modified) message or ``None`` to drop it.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from repro.crypto.drbg import HmacDrbg
from repro.network.message import Message


class NetworkAdversary:
    """Base adversary: observes everything, changes nothing."""

    def process(self, message: Message) -> Message | None:
        """Inspect/modify/drop a message in flight."""
        return message


class EavesdropAdversary(NetworkAdversary):
    """Records every message it sees (the honest-but-curious network)."""

    def __init__(self) -> None:
        self.captured: list[Message] = []

    def process(self, message: Message) -> Message | None:
        self.captured.append(message)
        return message

    def captured_payloads(self, kind: str | None = None) -> list[Any]:
        return [
            m.payload for m in self.captured if kind is None or m.kind == kind
        ]


class DropAdversary(NetworkAdversary):
    """Drops messages, either by kind or with probability ``drop_rate``.

    Pass ``rng`` to make the adversary part of a replay-deterministic
    composition: every probabilistic drop then comes from the injected
    DRBG stream, so the same seeds reproduce the same drop sequence no
    matter what other adversaries (link conditions, replay) share the
    chain.  The fallback RNG exists only for standalone convenience —
    it is seeded from a module constant, so two default-constructed
    instances draw *identical* streams and compositions built from them
    are not independent.  Harnesses must inject.
    """

    def __init__(
        self,
        drop_rate: float = 0.0,
        drop_kinds: set[str] | None = None,
        rng: HmacDrbg | None = None,
    ) -> None:
        self.drop_rate = drop_rate
        self.drop_kinds = drop_kinds or set()
        self._rng = rng or HmacDrbg(b"drop-adversary")
        self.dropped = 0

    def process(self, message: Message) -> Message | None:
        if message.kind in self.drop_kinds or self._rng.uniform() < self.drop_rate:
            self.dropped += 1
            return None
        return message


class TamperAdversary(NetworkAdversary):
    """Flips a bit in byte payloads of the targeted kinds."""

    def __init__(self, target_kinds: set[str] | None = None) -> None:
        self.target_kinds = target_kinds
        self.tampered = 0

    def process(self, message: Message) -> Message | None:
        if self.target_kinds is not None and message.kind not in self.target_kinds:
            return message
        payload = message.payload
        if isinstance(payload, (bytes, bytearray)) and payload:
            mutated = bytearray(payload)
            mutated[len(mutated) // 2] ^= 0x01
            self.tampered += 1
            return message.with_payload(bytes(mutated))
        return message


class ReplayAdversary(NetworkAdversary):
    """Records messages of a kind and can replay them later.

    Replay is *active*: call :meth:`replay_into` with the network to
    re-deliver a captured message verbatim (the attack path — an
    ``attempt == 1`` copy that must trip the strict replay checks).

    With an injected ``rng`` and a ``replay_rate``, the adversary also
    replays *autonomously*: after :meth:`attach`, each recorded-kind
    message has ``replay_rate`` probability of queuing a stale
    re-delivery of an earlier capture (chosen by the DRBG) through the
    network's redelivery queue.  Autonomous replays carry ``attempt + 1``
    — they model a duplicating/reordering network exercising handler
    idempotency, and because both the firing decision and the victim
    selection come from the injected stream, composition with other
    DRBG-injected adversaries stays replay-deterministic.
    """

    def __init__(
        self,
        target_kinds: set[str] | None = None,
        rng: HmacDrbg | None = None,
        replay_rate: float = 0.0,
    ) -> None:
        self.target_kinds = target_kinds
        self.recorded: list[Message] = []
        self._rng = rng
        self.replay_rate = float(replay_rate)
        self._network = None
        self.auto_replayed = 0

    def attach(self, network: "Any") -> None:
        """Give the adversary a redelivery queue for autonomous replays."""
        self._network = network

    def process(self, message: Message) -> Message | None:
        if self.target_kinds is None or message.kind in self.target_kinds:
            self.recorded.append(message)
            if (
                self._network is not None
                and self._rng is not None
                and self.replay_rate > 0.0
                and self._rng.uniform() < self.replay_rate
            ):
                victim = self.recorded[self._rng.randint(len(self.recorded))]
                self._network.enqueue_redelivery(
                    replace(victim, attempt=victim.attempt + 1)
                )
                self.auto_replayed += 1
        return message

    def replay_into(self, network: "Any", index: int = -1) -> Any:
        """Re-send a recorded message through the network."""
        if not self.recorded:
            raise ValueError("nothing recorded to replay")
        message = self.recorded[index]
        return network.deliver_raw(message)
