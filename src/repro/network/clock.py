"""Deterministic simulated time and network latency.

All timing in experiments comes from :class:`SimulatedClock`, never from the
wall clock, so runs are reproducible and latency comparisons (on-device
Glimmer vs. Glimmer-as-a-service, experiment E10) are exact rather than
noisy measurements of the host machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import HmacDrbg
from repro.errors import ConfigurationError


class SimulatedClock:
    """Monotonically advancing simulated time, in milliseconds."""

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now_ms = float(start_ms)

    def now_ms(self) -> float:
        return self._now_ms

    def advance(self, delta_ms: float) -> float:
        """Move time forward; negative deltas are a programming error."""
        if delta_ms < 0:
            raise ConfigurationError("time cannot move backwards")
        self._now_ms += delta_ms
        return self._now_ms


@dataclass(frozen=True)
class LatencyModel:
    """One-way message latency: base + size term + bounded jitter.

    ``LOCAL`` models on-device IPC (client talking to its own enclave
    host process); ``LAN``/``WAN`` model a home network and the public
    internet respectively — the three deployment points §4.2 contrasts
    (same device, set-top box, remote third party such as the EFF).
    """

    base_ms: float = 20.0
    per_kb_ms: float = 0.05
    jitter_ms: float = 5.0

    def sample(self, payload_bytes: int, rng: HmacDrbg) -> float:
        jitter = rng.uniform() * self.jitter_ms
        return self.base_ms + (payload_bytes / 1024.0) * self.per_kb_ms + jitter


LOCAL_LATENCY = LatencyModel(base_ms=0.05, per_kb_ms=0.001, jitter_ms=0.01)
LAN_LATENCY = LatencyModel(base_ms=2.0, per_kb_ms=0.02, jitter_ms=0.5)
WAN_LATENCY = LatencyModel(base_ms=40.0, per_kb_ms=0.08, jitter_ms=10.0)
