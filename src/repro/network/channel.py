"""Secure channels over Diffie-Hellman, with replay protection.

§4.1 of the paper: "using remote attestation ... enables data, such as
Diffie-Hellman (DH) handshake values, to be bound to code running in an
enclave."  The handshake functions here produce the DH material; *binding*
it to an enclave is done by the callers in :mod:`repro.core.confidential`
and :mod:`repro.core.remote`, which embed a hash of the handshake value in
the attestation report data, and by the service signing its handshake value
(both directions of authentication §4.1 requires).

Once keys are agreed, :class:`SecureChannel` provides authenticated
encryption with strictly increasing sequence numbers in the associated
data, so replayed or reordered ciphertexts are rejected.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cipher import AuthenticatedCipher, SealedBox
from repro.crypto.dh import DHGroup, DHKeyPair, OAKLEY_GROUP_1
from repro.crypto.drbg import HmacDrbg
from repro.errors import AuthenticationError, ProtocolError


class SecureChannel:
    """One direction-aware end of an established encrypted session.

    Both ends derive the same traffic key; the ``initiator`` flag picks
    which sequence-number space each end sends in, so the two directions
    cannot be confused or cross-replayed.
    """

    def __init__(self, traffic_key: bytes, initiator: bool, rng: HmacDrbg) -> None:
        self._cipher = AuthenticatedCipher(traffic_key)
        self._initiator = initiator
        self._rng = rng
        self._send_seq = 0
        self._recv_seq = 0

    def _direction(self, sending: bool) -> bytes:
        outbound = self._initiator if sending else not self._initiator
        return b"i->r" if outbound else b"r->i"

    def encrypt(self, plaintext: bytes) -> bytes:
        """Seal the next outbound message."""
        associated = self._direction(True) + self._send_seq.to_bytes(8, "big")
        self._send_seq += 1
        nonce = self._rng.generate(16)
        return self._cipher.encrypt(nonce, plaintext, associated_data=associated).to_bytes()

    def decrypt(self, wire_bytes: bytes) -> bytes:
        """Open the next inbound message; replays and reordering fail the MAC."""
        associated = self._direction(False) + self._recv_seq.to_bytes(8, "big")
        box = SealedBox.from_bytes(wire_bytes)
        plaintext = self._cipher.decrypt(box, associated_data=associated)
        self._recv_seq += 1
        return plaintext


@dataclass(frozen=True)
class HandshakeOffer:
    """The initiator's first flight: its ephemeral DH public value."""

    dh_public: int
    group_name: str


def establish_channel(
    initiator_keypair: DHKeyPair,
    responder_public: int,
    context: str,
    rng: HmacDrbg,
    initiator: bool,
) -> SecureChannel:
    """Derive a channel end from completed DH material.

    ``context`` must describe the protocol instance (it domain-separates the
    traffic key); both ends must pass the same string.
    """
    traffic_key = initiator_keypair.derive_key(responder_public, "channel:" + context)
    return SecureChannel(traffic_key, initiator=initiator, rng=rng)


def fresh_keypair(rng: HmacDrbg, group: DHGroup = OAKLEY_GROUP_1) -> DHKeyPair:
    """Ephemeral handshake key pair."""
    return DHKeyPair.generate(group, rng)


def checked_offer(offer: HandshakeOffer, group: DHGroup) -> int:
    """Validate a received handshake value before using it."""
    if offer.group_name != group.name:
        raise ProtocolError(
            f"peer proposed group {offer.group_name!r}, expected {group.name!r}"
        )
    if not group.is_valid_element(offer.dh_public):
        raise AuthenticationError("handshake value is not a valid group element")
    return offer.dh_public
