"""Simulated network: clock, transport, secure channels, adversaries.

The Glimmer protocols (key provisioning, encrypted predicate delivery,
Glimmer-as-a-service) are message exchanges between a client device, the
cloud service, a blinding service, and possibly a remote Glimmer host.  This
package provides the substrate: a deterministic simulated clock, an RPC-style
transport with a latency model, Diffie-Hellman secure channels with replay
protection, and man-in-the-middle adversaries that experiments interpose to
show which attacks the architecture stops.
"""

from repro.network.adversary import (
    DropAdversary,
    EavesdropAdversary,
    NetworkAdversary,
    ReplayAdversary,
    TamperAdversary,
)
from repro.network.channel import SecureChannel, establish_channel
from repro.network.clock import LatencyModel, SimulatedClock
from repro.network.conditions import (
    CELLULAR_EDGE,
    HOSTILE,
    PROFILES,
    URBAN_WIFI,
    ConditionProfile,
    FleetPlan,
    LinkConditions,
    LinkSchedule,
    resolve_profile,
    sample_fleet_plan,
)
from repro.network.message import Message
from repro.network.transport import Endpoint, Network

__all__ = [
    "DropAdversary",
    "EavesdropAdversary",
    "NetworkAdversary",
    "ReplayAdversary",
    "TamperAdversary",
    "SecureChannel",
    "establish_channel",
    "LatencyModel",
    "SimulatedClock",
    "ConditionProfile",
    "FleetPlan",
    "LinkConditions",
    "LinkSchedule",
    "PROFILES",
    "URBAN_WIFI",
    "CELLULAR_EDGE",
    "HOSTILE",
    "resolve_profile",
    "sample_fleet_plan",
    "Message",
    "Endpoint",
    "Network",
]
