"""Synthetic workload generators with ground truth.

The paper's examples need user data that is (a) useful in aggregate,
(b) individually sensitive, and (c) corroborable against private context.
Real traces are unavailable (and would defeat reproducibility), so each
generator plants known ground truth that experiments measure against:

* :mod:`repro.workloads.text` — keyboard sentences with a planted political
  stance per user (the Alice/Bob example of §1);
* :mod:`repro.workloads.keyboard` — keystroke event traces with human
  timing statistics, for NAB-style corroboration predicates;
* :mod:`repro.workloads.geo` — GPS tracks, photos, and location spoofers
  for the photos-for-maps example;
* :mod:`repro.workloads.botnet` — human/bot interaction signal traces for
  the §4.1 bot-detection service;
* :mod:`repro.workloads.reviews` — purchase histories and (possibly
  spurious) reviews for the recommender example;
* :mod:`repro.workloads.camera` — in-home video streams and forged
  activity histograms for the activity-detection example.
"""

from repro.workloads.botnet import BotnetWorkload, SessionSignals
from repro.workloads.camera import CameraWorkload, VideoStream, motion_histogram
from repro.workloads.geo import GeoWorkload, PhotoSubmission
from repro.workloads.keyboard import KeystrokeTrace, trace_for_sentences
from repro.workloads.reviews import ReviewWorkload
from repro.workloads.text import KeyboardCorpus, UserProfile

__all__ = [
    "BotnetWorkload",
    "SessionSignals",
    "CameraWorkload",
    "VideoStream",
    "motion_histogram",
    "GeoWorkload",
    "PhotoSubmission",
    "KeystrokeTrace",
    "trace_for_sentences",
    "ReviewWorkload",
    "KeyboardCorpus",
    "UserProfile",
]
