"""Purchase histories and reviews for the recommender example.

§2: "recommender services learn similarities among products from individual
users' registered likes, dislikes, and shopping habits, but detecting
spurious reviews requires access to individual users' purchasing history."

The generator produces per-user purchase histories (private) and review
submissions (contributions); spurious reviews — reviews of products never
purchased, or burst-posted shill reviews — are labeled ground truth for the
purchase-corroboration predicate used in the recommender example.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.drbg import HmacDrbg
from repro.errors import ConfigurationError

_PRODUCTS = tuple(f"product-{i:03d}" for i in range(40))


@dataclass(frozen=True)
class Purchase:
    """A record in the user's private purchase history."""

    product_id: str
    timestamp_ms: float


@dataclass(frozen=True)
class Review:
    """A submitted review (the contribution)."""

    review_id: str
    user_id: str
    product_id: str
    rating: int  # 1..5
    posted_at_ms: float
    is_spurious: bool  # ground truth


@dataclass
class UserShoppingContext:
    """Private validation data: the purchase history."""

    user_id: str
    purchases: list[Purchase]

    def purchased(self, product_id: str) -> bool:
        return any(p.product_id == product_id for p in self.purchases)

    def purchase_time(self, product_id: str) -> float | None:
        for p in self.purchases:
            if p.product_id == product_id:
                return p.timestamp_ms
        return None


@dataclass
class ReviewWorkload:
    """Users, histories, and a mixed bag of honest/spurious reviews."""

    contexts: dict[str, UserShoppingContext] = field(default_factory=dict)
    reviews: list[Review] = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        num_users: int,
        rng: HmacDrbg,
        purchases_per_user: int = 8,
        reviews_per_user: int = 3,
        spurious_fraction: float = 0.25,
    ) -> "ReviewWorkload":
        if num_users < 1:
            raise ConfigurationError("need at least one user")
        if not 0.0 <= spurious_fraction <= 1.0:
            raise ConfigurationError("spurious_fraction must be in [0, 1]")
        workload = cls()
        review_counter = 0
        for index in range(num_users):
            user_id = f"shopper-{index:04d}"
            user_rng = rng.fork(user_id)
            now = 0.0
            purchases = []
            for __ in range(purchases_per_user):
                now += 86_400_000.0 * (0.5 + user_rng.uniform() * 3.0)
                purchases.append(
                    Purchase(product_id=user_rng.choice(_PRODUCTS), timestamp_ms=now)
                )
            context = UserShoppingContext(user_id=user_id, purchases=purchases)
            workload.contexts[user_id] = context
            for __ in range(reviews_per_user):
                review_id = f"review-{review_counter:05d}"
                review_counter += 1
                spurious = user_rng.uniform() < spurious_fraction
                if spurious:
                    unpurchased = [
                        p for p in _PRODUCTS if not context.purchased(p)
                    ]
                    product = user_rng.choice(unpurchased)
                    posted = now + user_rng.uniform() * 86_400_000.0
                    rating = 5  # shill reviews gush
                else:
                    purchase = user_rng.choice(purchases)
                    product = purchase.product_id
                    posted = purchase.timestamp_ms + (
                        3_600_000.0 + user_rng.uniform() * 86_400_000.0 * 14
                    )
                    rating = 1 + user_rng.randint(5)
                workload.reviews.append(
                    Review(
                        review_id=review_id,
                        user_id=user_id,
                        product_id=product,
                        rating=rating,
                        posted_at_ms=posted,
                        is_spurious=spurious,
                    )
                )
        return workload

    def labels(self) -> dict[str, bool]:
        return {r.review_id: r.is_spurious for r in self.reviews}
