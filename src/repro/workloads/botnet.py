"""Human/bot interaction signals for the §4.1 bot-detection service.

The paper: bot detectors "collect a large set of signals, such as how
faithfully the client executes Javascript, fingerprints of the client's
system software and hardware, and the timing and frequency [of] UI
interactions such as mouse movements and changes in focus" — and those
signals "often contain private information, such as the user's cookies,
browsing history and browsing interests".

:class:`SessionSignals` carries both the *detector features* and the
*private context* (history, cookies) that makes shipping raw signals a
privacy problem — experiment E8 measures exactly how many sensitive bits
the raw-upload baseline exposes versus the Glimmer's single bit.

Bots have a ``sophistication`` level in ``[0, 1]``: at 0 they are naive
scripts (machine timing, no mouse); at 1 they imitate human statistics
almost perfectly, which is what drives detector accuracy down and
adversary cost up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.drbg import HmacDrbg
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SessionSignals:
    """One browsing session's detector features plus private context."""

    session_id: str
    # --- detector features ---
    mouse_moves_per_minute: float
    mean_event_interval_ms: float
    event_interval_variance: float
    focus_changes_per_minute: float
    js_fidelity: float  # 0..1, how faithfully client-side JS executed
    scroll_entropy: float  # 0..1, randomness of scroll behaviour
    # --- private context (what a raw-signal upload would leak) ---
    browsing_history: tuple[str, ...]
    cookie_ids: tuple[str, ...]
    interest_profile: str
    # --- ground truth ---
    is_bot: bool

    def feature_vector(self) -> list[float]:
        return [
            self.mouse_moves_per_minute,
            self.mean_event_interval_ms,
            self.event_interval_variance,
            self.focus_changes_per_minute,
            self.js_fidelity,
            self.scroll_entropy,
        ]


_SITES = (
    "news.example", "health.example/condition", "bank.example/loans",
    "jobs.example/search", "dating.example", "politics.example/forum",
    "shopping.example/cart", "travel.example/visa", "support.example/group",
)
_INTERESTS = (
    "health-anxiety", "job-hunting", "debt", "dating", "political-activism",
    "gambling", "relocation",
)


def _human_features(rng: HmacDrbg) -> dict:
    return {
        "mouse_moves_per_minute": 25.0 + rng.uniform() * 60.0,
        "mean_event_interval_ms": 300.0 + rng.uniform() * 900.0,
        "event_interval_variance": 12_000.0 + rng.uniform() * 60_000.0,
        "focus_changes_per_minute": 0.5 + rng.uniform() * 4.0,
        "js_fidelity": 0.97 + rng.uniform() * 0.03,
        "scroll_entropy": 0.55 + rng.uniform() * 0.4,
    }


def _naive_bot_features(rng: HmacDrbg) -> dict:
    return {
        "mouse_moves_per_minute": rng.uniform() * 2.0,
        "mean_event_interval_ms": 5.0 + rng.uniform() * 30.0,
        "event_interval_variance": rng.uniform() * 40.0,
        "focus_changes_per_minute": rng.uniform() * 0.1,
        "js_fidelity": 0.3 + rng.uniform() * 0.4,
        "scroll_entropy": rng.uniform() * 0.1,
    }


@dataclass
class BotnetWorkload:
    """A labeled mix of human and bot sessions."""

    sessions: list[SessionSignals] = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        num_sessions: int,
        rng: HmacDrbg,
        bot_fraction: float = 0.4,
        bot_sophistication: float = 0.0,
    ) -> "BotnetWorkload":
        """Generate sessions; bots interpolate toward human statistics."""
        if num_sessions < 1:
            raise ConfigurationError("need at least one session")
        if not 0.0 <= bot_fraction <= 1.0:
            raise ConfigurationError("bot_fraction must be in [0, 1]")
        if not 0.0 <= bot_sophistication <= 1.0:
            raise ConfigurationError("bot_sophistication must be in [0, 1]")
        sessions = []
        num_bots = round(num_sessions * bot_fraction)
        for index in range(num_sessions):
            is_bot = index < num_bots
            session_rng = rng.fork(f"session-{index}")
            human = _human_features(session_rng.fork("human"))
            if is_bot:
                naive = _naive_bot_features(session_rng.fork("bot"))
                s = bot_sophistication
                features = {
                    key: naive[key] * (1.0 - s) + human[key] * s for key in human
                }
            else:
                features = human
            history_size = 3 + session_rng.randint(5)
            sessions.append(
                SessionSignals(
                    session_id=f"session-{index:05d}",
                    browsing_history=tuple(
                        session_rng.choice(_SITES) for __ in range(history_size)
                    ),
                    cookie_ids=tuple(
                        session_rng.generate(8).hex() for __ in range(3)
                    ),
                    interest_profile=session_rng.choice(_INTERESTS),
                    is_bot=is_bot,
                    **features,
                )
            )
        return cls(sessions=sessions)

    def labels(self) -> dict[str, bool]:
        return {s.session_id: s.is_bot for s in self.sessions}


@dataclass(frozen=True)
class DetectorWeights:
    """The service's proprietary detector: a linear score over features.

    This is the secret the §4.1 *validation confidentiality* extension
    protects: the service ships these weights encrypted into the Glimmer
    so that neither the user nor on-path observers learn the detection
    logic.
    """

    weights: tuple[float, ...] = (0.035, 0.0018, 0.00003, 0.33, 2.2, 1.6)
    bias: float = -3.1
    threshold: float = 0.0

    def score(self, signals: SessionSignals) -> float:
        features = signals.feature_vector()
        if len(features) != len(self.weights):
            raise ConfigurationError("feature/weight length mismatch")
        return sum(w * f for w, f in zip(self.weights, features)) + self.bias

    def is_human(self, signals: SessionSignals) -> bool:
        return self.score(signals) > self.threshold

    def accuracy(self, workload: BotnetWorkload) -> float:
        if not workload.sessions:
            raise ConfigurationError("empty workload")
        hits = sum(
            1
            for s in workload.sessions
            if self.is_human(s) != s.is_bot
        )
        return hits / len(workload.sessions)
