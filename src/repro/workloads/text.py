"""Keyboard corpus with planted political stances — the Alice/Bob example.

§1, Figure 1: Alice types "I'm voting for Donald Trump", Bob types "I don't
like Donald Trump."  The corpus generator plants exactly this structure:

* every user types from a shared pool of *neutral* sentences (including
  trending topics like "the world series", so the aggregate model has
  genuine utility to measure);
* each user has a sensitive ``stance`` attribute — ``support`` or
  ``oppose`` — and types stance-bearing sentences at a configurable rate.

Because stances are ground truth, experiments can measure exactly how well
an inversion attacker recovers them from whatever the service observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.crypto.drbg import HmacDrbg
from repro.errors import ConfigurationError

Sentence = list[str]

NEUTRAL_SENTENCES: tuple[tuple[str, ...], ...] = (
    ("the", "world", "series", "starts", "tonight"),
    ("who", "won", "the", "world", "series"),
    ("see", "you", "at", "the", "meeting", "tomorrow"),
    ("can", "you", "send", "the", "report", "today"),
    ("lunch", "at", "noon", "works", "for", "me"),
    ("the", "weather", "is", "nice", "today"),
    ("running", "late", "be", "there", "soon"),
    ("happy", "birthday", "hope", "you", "have", "a", "great", "day"),
    ("did", "you", "watch", "the", "game", "last", "night"),
    ("the", "meeting", "moved", "to", "three"),
    ("thanks", "for", "the", "update"),
    ("call", "me", "when", "you", "get", "home"),
)

SUPPORT_SENTENCES: tuple[tuple[str, ...], ...] = (
    ("i'm", "voting", "for", "donald", "trump"),
    ("donald", "trump", "will", "win", "this", "time"),
    ("i", "really", "like", "donald", "trump"),
    ("voting", "for", "donald", "trump", "tomorrow"),
)

OPPOSE_SENTENCES: tuple[tuple[str, ...], ...] = (
    ("i", "don't", "like", "donald", "trump"),
    ("i", "won't", "vote", "for", "donald", "trump"),
    ("donald", "trump", "is", "wrong", "about", "this"),
    ("don't", "like", "what", "donald", "trump", "said"),
)

STANCE_SUPPORT = "support"
STANCE_OPPOSE = "oppose"

# The bigrams an inversion attacker reads stance from (see
# repro.federated.inversion.StanceEvidence).
SUPPORT_MARKERS = (("voting", "for"), ("really", "like"), ("will", "win"))
OPPOSE_MARKERS = (("don't", "like"), ("won't", "vote"), ("is", "wrong"))


@dataclass(frozen=True)
class UserProfile:
    """One synthetic user and their ground-truth sensitive attribute."""

    user_id: str
    stance: str
    num_sentences: int


@dataclass
class KeyboardCorpus:
    """A fleet of users, their sentences, and ground-truth labels."""

    users: list[UserProfile]
    streams: dict[str, list[Sentence]] = field(default_factory=dict)

    @classmethod
    def generate(
        cls,
        num_users: int,
        rng: HmacDrbg,
        sentences_per_user: int = 40,
        stance_rate: float = 0.25,
        support_fraction: float = 0.5,
        ensure_stance: bool = True,
    ) -> "KeyboardCorpus":
        """Generate a corpus.

        Parameters
        ----------
        stance_rate:
            Probability that any given sentence is stance-bearing rather
            than neutral.
        support_fraction:
            Fraction of users whose stance is ``support``.
        ensure_stance:
            When True (the default), each user types *at least one* stance
            sentence, so ground truth is always expressed in their stream.
            Trending experiments set it False so a zero ``stance_rate``
            genuinely means "nobody is typing about the topic yet".
        """
        if num_users < 1:
            raise ConfigurationError("need at least one user")
        if not 0.0 <= stance_rate <= 1.0:
            raise ConfigurationError("stance_rate must be in [0, 1]")
        if not 0.0 <= support_fraction <= 1.0:
            raise ConfigurationError("support_fraction must be in [0, 1]")
        if sentences_per_user < 1:
            raise ConfigurationError("sentences_per_user must be >= 1")
        users = []
        streams: dict[str, list[Sentence]] = {}
        num_support = round(num_users * support_fraction)
        for index in range(num_users):
            stance = STANCE_SUPPORT if index < num_support else STANCE_OPPOSE
            user_id = f"user-{index:04d}"
            user_rng = rng.fork(user_id)
            stream = cls._stream_for(
                user_rng, stance, sentences_per_user, stance_rate, ensure_stance
            )
            users.append(
                UserProfile(user_id=user_id, stance=stance, num_sentences=len(stream))
            )
            streams[user_id] = stream
        return cls(users=users, streams=streams)

    @classmethod
    def generate_trending(
        cls,
        num_users: int,
        rng: HmacDrbg,
        epoch_intensities: Sequence[float],
        sentences_per_user: int = 30,
        support_fraction: float = 0.5,
    ) -> list["KeyboardCorpus"]:
        """Per-epoch corpora with the topic ramping up over time.

        Models §1's premise: "as current topics ... trend up — because many
        users type them on their keyboards in a short time-span".  Epoch
        ``t`` has topic intensity ``epoch_intensities[t]`` (0 = nobody is
        typing about it); user identities and stances are stable across
        epochs.
        """
        if not epoch_intensities:
            raise ConfigurationError("need at least one epoch")
        return [
            cls.generate(
                num_users,
                rng.fork(f"epoch-{epoch}"),
                sentences_per_user=sentences_per_user,
                stance_rate=intensity,
                support_fraction=support_fraction,
                ensure_stance=False,
            )
            for epoch, intensity in enumerate(epoch_intensities)
        ]

    @staticmethod
    def _stream_for(
        rng: HmacDrbg,
        stance: str,
        count: int,
        stance_rate: float,
        ensure_stance: bool,
    ) -> list[Sentence]:
        stance_pool = SUPPORT_SENTENCES if stance == STANCE_SUPPORT else OPPOSE_SENTENCES
        stream: list[Sentence] = []
        guaranteed = 1 if ensure_stance else 0
        for __ in range(count - guaranteed):
            if rng.uniform() < stance_rate:
                stream.append(list(rng.choice(stance_pool)))
            else:
                stream.append(list(rng.choice(NEUTRAL_SENTENCES)))
        if ensure_stance:
            stream.append(list(rng.choice(stance_pool)))  # guarantee expression
        rng.shuffle(stream)
        return stream

    def labels(self) -> dict[str, str]:
        """Ground truth: user id → stance."""
        return {user.user_id: user.stance for user in self.users}

    def all_sentences(self) -> list[Sentence]:
        """The union of every user's stream (for feature-space discovery)."""
        merged: list[Sentence] = []
        for user in self.users:
            merged.extend(self.streams[user.user_id])
        return merged

    def holdout(self, rng: HmacDrbg, num_sentences: int = 200) -> list[Sentence]:
        """Fresh sentences from the same distribution, for utility scoring."""
        pool = NEUTRAL_SENTENCES + SUPPORT_SENTENCES + OPPOSE_SENTENCES
        return [list(rng.choice(pool)) for __ in range(num_sentences)]


def stance_evidence():
    """The marker sets an inversion attacker uses (import cycle avoider)."""
    from repro.federated.inversion import StanceEvidence

    return StanceEvidence(
        positive_label=STANCE_SUPPORT,
        negative_label=STANCE_OPPOSE,
        positive_markers=SUPPORT_MARKERS,
        negative_markers=OPPOSE_MARKERS,
    )
