"""GPS tracks, photos, and spoofers for the photos-for-maps example.

§1/§3: "users photos associated with a location on a mapping service ...
validating those contributions might require access by service code to
otherwise private data (e.g., location tracking through GPS and ambient
WiFi, to validate that the user did go to a claimed location)."

The generator produces, per user:

* a **GPS track** — a timestamped random walk over a city grid (private);
* a **camera fingerprint** — stable per device (private);
* **photo submissions** — claimed location + timestamp + fingerprint.

Honest submissions are taken at a point actually on the track; spoofed ones
claim a location the user never visited, or carry a fingerprint from a
different device (stolen/stock photo).  Ground truth labels let experiment
E11 score the geo-corroboration predicate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.crypto.drbg import HmacDrbg
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TrackPoint:
    """One GPS fix."""

    x: float
    y: float
    timestamp_ms: float


@dataclass(frozen=True)
class PhotoSubmission:
    """What a user submits to the maps service (the contribution itself)."""

    photo_id: str
    user_id: str
    claimed_x: float
    claimed_y: float
    taken_at_ms: float
    camera_fingerprint: bytes
    is_spoofed: bool  # ground truth, never shown to the validator


@dataclass
class UserGeoContext:
    """A user's private validation data: track + device fingerprint."""

    user_id: str
    track: list[TrackPoint]
    camera_fingerprint: bytes

    def position_at(self, timestamp_ms: float) -> TrackPoint | None:
        """The nearest track fix to a timestamp (None if track is empty)."""
        if not self.track:
            return None
        return min(self.track, key=lambda p: abs(p.timestamp_ms - timestamp_ms))


def distance(ax: float, ay: float, bx: float, by: float) -> float:
    return math.hypot(ax - bx, ay - by)


@dataclass
class GeoWorkload:
    """A fleet of users with tracks and a mixed bag of photo submissions."""

    contexts: dict[str, UserGeoContext] = field(default_factory=dict)
    submissions: list[PhotoSubmission] = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        num_users: int,
        rng: HmacDrbg,
        photos_per_user: int = 4,
        spoof_fraction: float = 0.3,
        track_points: int = 60,
        grid_size: float = 1000.0,
        step_size: float = 15.0,
    ) -> "GeoWorkload":
        """Generate tracks and submissions with ``spoof_fraction`` forgeries."""
        if num_users < 1:
            raise ConfigurationError("need at least one user")
        if not 0.0 <= spoof_fraction <= 1.0:
            raise ConfigurationError("spoof_fraction must be in [0, 1]")
        workload = cls()
        photo_counter = 0
        for index in range(num_users):
            user_id = f"geo-user-{index:04d}"
            user_rng = rng.fork(user_id)
            track = _random_walk(user_rng, track_points, grid_size, step_size)
            fingerprint = user_rng.generate(16)
            workload.contexts[user_id] = UserGeoContext(
                user_id=user_id, track=track, camera_fingerprint=fingerprint
            )
            for __ in range(photos_per_user):
                spoof = user_rng.uniform() < spoof_fraction
                photo_id = f"photo-{photo_counter:05d}"
                photo_counter += 1
                if spoof:
                    submission = _spoofed_submission(
                        photo_id, user_id, track, fingerprint, user_rng, grid_size
                    )
                else:
                    submission = _honest_submission(
                        photo_id, user_id, track, fingerprint, user_rng
                    )
                workload.submissions.append(submission)
        return workload

    def labels(self) -> dict[str, bool]:
        """Ground truth: photo id → is_spoofed."""
        return {s.photo_id: s.is_spoofed for s in self.submissions}


def _random_walk(
    rng: HmacDrbg, points: int, grid_size: float, step_size: float
) -> list[TrackPoint]:
    x = rng.uniform() * grid_size
    y = rng.uniform() * grid_size
    track = []
    now = 0.0
    for __ in range(points):
        track.append(TrackPoint(x=x, y=y, timestamp_ms=now))
        x = min(max(x + (rng.uniform() - 0.5) * 2 * step_size, 0.0), grid_size)
        y = min(max(y + (rng.uniform() - 0.5) * 2 * step_size, 0.0), grid_size)
        now += 30_000.0 + rng.uniform() * 30_000.0  # a fix every 30-60 s
    return track


def _honest_submission(
    photo_id: str,
    user_id: str,
    track: list[TrackPoint],
    fingerprint: bytes,
    rng: HmacDrbg,
) -> PhotoSubmission:
    point = rng.choice(track)
    # GPS noise of a few meters on the claim.
    return PhotoSubmission(
        photo_id=photo_id,
        user_id=user_id,
        claimed_x=point.x + (rng.uniform() - 0.5) * 6.0,
        claimed_y=point.y + (rng.uniform() - 0.5) * 6.0,
        taken_at_ms=point.timestamp_ms + (rng.uniform() - 0.5) * 2_000.0,
        camera_fingerprint=fingerprint,
        is_spoofed=False,
    )


def _spoofed_submission(
    photo_id: str,
    user_id: str,
    track: list[TrackPoint],
    fingerprint: bytes,
    rng: HmacDrbg,
    grid_size: float,
) -> PhotoSubmission:
    mode = rng.choice(["far-location", "wrong-fingerprint"])
    point = rng.choice(track)
    if mode == "far-location":
        # Claim somewhere the walk never plausibly reached.
        claimed_x = (point.x + grid_size / 2.0) % grid_size
        claimed_y = (point.y + grid_size / 2.0) % grid_size
        return PhotoSubmission(
            photo_id=photo_id,
            user_id=user_id,
            claimed_x=claimed_x,
            claimed_y=claimed_y,
            taken_at_ms=point.timestamp_ms,
            camera_fingerprint=fingerprint,
            is_spoofed=True,
        )
    # Stolen/stock photo: right place, wrong device.
    return PhotoSubmission(
        photo_id=photo_id,
        user_id=user_id,
        claimed_x=point.x,
        claimed_y=point.y,
        taken_at_ms=point.timestamp_ms,
        camera_fingerprint=rng.generate(16),
        is_spoofed=True,
    )
