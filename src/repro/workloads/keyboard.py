"""Keystroke event traces for behavioral corroboration (NAB-style).

§2 of the paper: "a more sophisticated validator might instead observe
actual keyboard behavior (a la NAB [5]) to match keyboard events to
reported model weights."  That requires keystroke traces, which this module
synthesizes with the statistics corroboration predicates check:

* **human** traces: per-character key events with log-normal-ish inter-key
  intervals (mean ~180 ms, heavy right tail), word boundaries as spaces;
* **forged** traces: what a cheating client fabricates — absent events,
  uniform robot-like timing, or (at high effort) a replayed human cadence.

Ground truth for a trace is the sentence sequence it types, so a predicate
can reconstruct bigram counts from events and compare with the reported
model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.crypto.drbg import HmacDrbg

Sentence = Sequence[str]

HUMAN_MEAN_INTERVAL_MS = 180.0
HUMAN_JITTER_MS = 140.0
ROBOT_INTERVAL_MS = 8.0


@dataclass(frozen=True)
class KeyEvent:
    """One key press: the character and when it happened."""

    char: str
    timestamp_ms: float


@dataclass
class KeystrokeTrace:
    """A stream of key events, plus helpers predicates rely on."""

    events: list[KeyEvent]

    def duration_ms(self) -> float:
        if len(self.events) < 2:
            return 0.0
        return self.events[-1].timestamp_ms - self.events[0].timestamp_ms

    def inter_key_intervals(self) -> list[float]:
        return [
            self.events[i + 1].timestamp_ms - self.events[i].timestamp_ms
            for i in range(len(self.events) - 1)
        ]

    def typed_text(self) -> str:
        return "".join(event.char for event in self.events)

    def typed_sentences(self) -> list[list[str]]:
        """Reconstruct token sentences from the raw event stream."""
        sentences = []
        for line in self.typed_text().split("\n"):
            tokens = [token for token in line.split(" ") if token]
            if tokens:
                sentences.append(tokens)
        return sentences

    def timing_variance(self) -> float:
        """Variance of inter-key intervals; near zero screams 'robot'."""
        intervals = self.inter_key_intervals()
        if len(intervals) < 2:
            return 0.0
        mean = sum(intervals) / len(intervals)
        return sum((x - mean) ** 2 for x in intervals) / (len(intervals) - 1)


def _human_interval(rng: HmacDrbg) -> float:
    # Sum of uniforms approximates the right-skewed human distribution well
    # enough for variance-based checks.
    base = HUMAN_MEAN_INTERVAL_MS * 0.4
    return base + rng.uniform() * HUMAN_JITTER_MS + rng.uniform() * HUMAN_JITTER_MS


def trace_for_sentences(
    sentences: Sequence[Sentence],
    rng: HmacDrbg,
    start_ms: float = 0.0,
) -> KeystrokeTrace:
    """A human-statistics trace that types exactly ``sentences``."""
    events: list[KeyEvent] = []
    now = start_ms
    for sentence in sentences:
        text = " ".join(sentence) + "\n"
        for char in text:
            events.append(KeyEvent(char=char, timestamp_ms=now))
            now += _human_interval(rng)
        now += 400.0 + rng.uniform() * 1200.0  # pause between sentences
    return KeystrokeTrace(events=events)


def robotic_trace_for_sentences(
    sentences: Sequence[Sentence],
    start_ms: float = 0.0,
) -> KeystrokeTrace:
    """A cheaply fabricated trace: right text, machine-gun timing."""
    events: list[KeyEvent] = []
    now = start_ms
    for sentence in sentences:
        text = " ".join(sentence) + "\n"
        for char in text:
            events.append(KeyEvent(char=char, timestamp_ms=now))
            now += ROBOT_INTERVAL_MS
    return KeystrokeTrace(events=events)


def empty_trace() -> KeystrokeTrace:
    """The zero-effort forgery: claim weights, provide no evidence."""
    return KeystrokeTrace(events=[])
