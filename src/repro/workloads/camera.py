"""In-home camera streams for the activity-detection example.

§2 of the paper: "activity-recognition models improve from analyzing
silhouettes and image structure from in-home cameras, but checking that
silhouettes are legitimate requires analysis of full video streams captured
at people's homes."  Few data sources are more sensitive than in-home
video — which is exactly why the validation must happen on-device.

The synthetic substrate:

* a **video stream** is a sequence of frames, each containing one person
  blob at a position; *active* residents move (random walk with real step
  sizes), *idle* residents barely do;
* the **contribution** is a motion-energy histogram — per-frame step sizes
  bucketed into bins and normalized to [0, 1] — enough for a service to
  train activity models, far less than the video;
* the **private validation data** is the full frame sequence, from which
  the histogram can be recomputed exactly;
* **forged** contributions are histograms fabricated without any video
  (claiming activity that never happened — e.g. an insurance-fraud bot
  simulating an occupied, active home).

Ground-truth labels let experiment E17 score the silhouette-corroboration
predicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.drbg import HmacDrbg
from repro.errors import ConfigurationError

ACTIVITY_ACTIVE = "active"
ACTIVITY_IDLE = "idle"

MOTION_BINS = 8
MAX_STEP = 16.0  # pixels/frame; histogram bin width = MAX_STEP / MOTION_BINS


@dataclass(frozen=True)
class Frame:
    """One video frame, reduced to the person blob's position."""

    index: int
    x: float
    y: float


@dataclass
class VideoStream:
    """A resident's private video: the full frame sequence."""

    user_id: str
    frames: list[Frame]
    activity: str  # ground truth

    def step_sizes(self) -> list[float]:
        return [
            (
                (self.frames[i + 1].x - self.frames[i].x) ** 2
                + (self.frames[i + 1].y - self.frames[i].y) ** 2
            )
            ** 0.5
            for i in range(len(self.frames) - 1)
        ]


def motion_histogram(frames: list[Frame]) -> list[float]:
    """The contribution vector: normalized motion-energy histogram.

    Deterministic function of the frames, so the Glimmer can recompute it
    from the private video and corroborate a reported vector exactly.
    """
    if len(frames) < 2:
        return [0.0] * MOTION_BINS
    bins = [0] * MOTION_BINS
    width = MAX_STEP / MOTION_BINS
    for i in range(len(frames) - 1):
        step = (
            (frames[i + 1].x - frames[i].x) ** 2
            + (frames[i + 1].y - frames[i].y) ** 2
        ) ** 0.5
        index = min(MOTION_BINS - 1, int(step / width))
        bins[index] += 1
    total = len(frames) - 1
    return [count / total for count in bins]


@dataclass(frozen=True)
class ActivityContribution:
    """What a resident submits: the histogram plus ground-truth bookkeeping."""

    user_id: str
    values: tuple[float, ...]
    is_forged: bool


@dataclass
class CameraWorkload:
    """A set of homes: private streams and a mixed bag of contributions."""

    streams: dict[str, VideoStream] = field(default_factory=dict)
    contributions: list[ActivityContribution] = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        num_users: int,
        rng: HmacDrbg,
        frames_per_stream: int = 120,
        active_fraction: float = 0.5,
        forged_fraction: float = 0.3,
    ) -> "CameraWorkload":
        if num_users < 1:
            raise ConfigurationError("need at least one user")
        if not 0.0 <= active_fraction <= 1.0:
            raise ConfigurationError("active_fraction must be in [0, 1]")
        if not 0.0 <= forged_fraction <= 1.0:
            raise ConfigurationError("forged_fraction must be in [0, 1]")
        if frames_per_stream < 2:
            raise ConfigurationError("a stream needs at least two frames")
        workload = cls()
        num_active = round(num_users * active_fraction)
        for index in range(num_users):
            user_id = f"home-{index:04d}"
            user_rng = rng.fork(user_id)
            activity = ACTIVITY_ACTIVE if index < num_active else ACTIVITY_IDLE
            stream = _stream_for(user_id, user_rng, frames_per_stream, activity)
            workload.streams[user_id] = stream
            forged = user_rng.uniform() < forged_fraction
            if forged:
                # No video behind it: a fabricated "very active" histogram.
                values = _forged_histogram(user_rng)
            else:
                values = tuple(motion_histogram(stream.frames))
            workload.contributions.append(
                ActivityContribution(
                    user_id=user_id, values=tuple(values), is_forged=forged
                )
            )
        return workload

    def labels(self) -> dict[str, bool]:
        return {c.user_id: c.is_forged for c in self.contributions}


def _stream_for(
    user_id: str, rng: HmacDrbg, num_frames: int, activity: str
) -> VideoStream:
    x = 20.0 + rng.uniform() * 60.0
    y = 20.0 + rng.uniform() * 60.0
    step_scale = 6.0 if activity == ACTIVITY_ACTIVE else 0.4
    frames = []
    for index in range(num_frames):
        frames.append(Frame(index=index, x=x, y=y))
        x += (rng.uniform() - 0.5) * 2 * step_scale
        y += (rng.uniform() - 0.5) * 2 * step_scale
    return VideoStream(user_id=user_id, frames=frames, activity=activity)


def _forged_histogram(rng: HmacDrbg) -> tuple[float, ...]:
    """A plausible-looking but fabricated activity histogram.

    The forger concentrates mass in high-motion bins (claiming an active
    home) and normalizes — individually legal values, no video behind them.
    """
    raw = [rng.uniform() * (0.2 if i < MOTION_BINS // 2 else 1.0) for i in range(MOTION_BINS)]
    total = sum(raw)
    return tuple(value / total for value in raw)
