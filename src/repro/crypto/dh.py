"""Finite-field Diffie-Hellman over safe-prime groups.

§4.1 and §4.2 of the paper establish secure channels by binding DH handshake
values to an attested enclave.  This module supplies the group arithmetic;
:mod:`repro.network.channel` and :mod:`repro.core.confidential` build the
authenticated handshakes on top.

Two groups ship by default:

* :data:`OAKLEY_GROUP_1` — the 768-bit safe prime from RFC 2409; real-world
  parameters, fast enough for simulations with thousands of handshakes.
* :data:`TEST_GROUP` — a 64-bit safe prime for property-based tests that
  perform many thousands of exponentiations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto import group_ops
from repro.crypto.drbg import HmacDrbg
from repro.crypto.kdf import hkdf
from repro.errors import CryptoError


@dataclass(frozen=True)
class DHGroup:
    """A multiplicative group modulo a safe prime ``p`` with generator ``g``.

    ``q = (p - 1) // 2`` is the prime order of the quadratic-residue
    subgroup; exponents are drawn from ``[1, q)``.
    """

    name: str
    prime: int
    generator: int = 2
    subgroup_order: int = field(init=False)
    element_size: int = field(init=False)
    """Bytes needed to serialize a group element big-endian — hoisted out
    of every ``_int_bytes``/``shared_secret`` call."""

    def __post_init__(self) -> None:
        if self.prime < 7 or self.prime % 2 == 0:
            raise CryptoError("prime must be an odd integer >= 7")
        object.__setattr__(self, "subgroup_order", (self.prime - 1) // 2)
        object.__setattr__(self, "element_size", (self.prime.bit_length() + 7) // 8)

    def random_exponent(self, rng: HmacDrbg) -> int:
        """Uniform secret exponent in ``[1, q)``."""
        return rng.randrange(1, self.subgroup_order)

    def power(self, base: int, exponent: int) -> int:
        """``base^exponent mod p`` — through a fixed-base table when hot.

        Bit-exact with ``pow`` on every input (tables only change how the
        product is computed); hot bases like the subgroup generator and
        long-lived public keys earn precomputed tables automatically.
        """
        return group_ops.fixed_power(self.prime, base, exponent)

    def subgroup_generator(self) -> int:
        """Generator of the order-``q`` quadratic-residue subgroup.

        ``g^2`` is always a quadratic residue, so every public element lies
        in the prime-order subgroup and passes :meth:`is_valid_element` —
        which is also what makes the validity check meaningful against
        small-subgroup attacks.  Computed once per group: every sign,
        verify, and handshake starts from this element.
        """
        cached = self.__dict__.get("_subgroup_generator_memo")
        if cached is not None:
            return cached
        h = pow(self.generator, 2, self.prime)
        object.__setattr__(self, "_subgroup_generator_memo", h)
        return h

    def public_element(self, exponent: int) -> int:
        return self.power(self.subgroup_generator(), exponent)

    def is_valid_element(self, element: int) -> bool:
        """Subgroup-membership check: rejects 0, 1, p-1, and non-residues.

        Skipping this check enables small-subgroup confinement attacks, so
        channel code calls it on every received handshake value.  Elements
        that already passed are memoized (True results only — see
        :func:`repro.crypto.group_ops.is_known_member` — so a cache hit
        can never admit an element the full check would reject).
        """
        if not 1 < element < self.prime - 1:
            return False
        if group_ops.is_known_member(self.prime, element):
            return True
        if pow(element, self.subgroup_order, self.prime) != 1:
            return False
        group_ops.remember_member(self.prime, element)
        return True


# RFC 2409 Oakley Group 1 (768-bit safe prime), generator 2.
_OAKLEY_1_HEX = (
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A63A3620FFFFFFFFFFFFFFFF"
)
OAKLEY_GROUP_1 = DHGroup(name="oakley-group-1", prime=int(_OAKLEY_1_HEX, 16))

# 64-bit safe prime for tests: p = 2q + 1 with q prime.
TEST_GROUP = DHGroup(name="test-64bit", prime=18446744073709550147)


@dataclass(frozen=True)
class DHKeyPair:
    """An ephemeral DH key pair bound to a group."""

    group: DHGroup
    secret: int
    public: int

    @classmethod
    def generate(cls, group: DHGroup, rng: HmacDrbg) -> "DHKeyPair":
        secret = group.random_exponent(rng)
        return cls(group=group, secret=secret, public=group.public_element(secret))

    def shared_secret(self, peer_public: int) -> bytes:
        """Raw shared group element, serialized big-endian."""
        if not self.group.is_valid_element(peer_public):
            raise CryptoError("peer public value is not a valid group element")
        element = self.group.power(peer_public, self.secret)
        return element.to_bytes(self.group.element_size, "big")

    def derive_key(self, peer_public: int, context: str) -> bytes:
        """32-byte symmetric key from the shared secret, labeled by ``context``."""
        return hkdf(self.shared_secret(peer_public), "dh:" + context)
