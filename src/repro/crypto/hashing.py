"""Tagged hashing helpers.

Every hash in the library is *domain separated*: callers supply a short ASCII
tag describing what is being hashed, and the tag is mixed into the digest.
This prevents cross-protocol collisions (e.g. an attestation report being
replayed as a sealing key) — a real concern for the Glimmer design, which
hashes many structurally similar byte strings.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

DIGEST_SIZE = 32


def hash_bytes(tag: str, data: bytes) -> bytes:
    """Return the 32-byte SHA-256 digest of ``data`` under domain ``tag``."""
    h = hashlib.sha256()
    tag_bytes = tag.encode("ascii")
    h.update(len(tag_bytes).to_bytes(2, "big"))
    h.update(tag_bytes)
    h.update(data)
    return h.digest()


def hash_items(tag: str, items: Iterable[bytes]) -> bytes:
    """Hash a sequence of byte strings with unambiguous length framing.

    ``hash_items(t, [a, b])`` never collides with ``hash_items(t, [a + b])``
    because each item is prefixed by its length.
    """
    h = hashlib.sha256()
    tag_bytes = tag.encode("ascii")
    h.update(len(tag_bytes).to_bytes(2, "big"))
    h.update(tag_bytes)
    for item in items:
        h.update(len(item).to_bytes(8, "big"))
        h.update(item)
    return h.digest()


def hexdigest(tag: str, data: bytes) -> str:
    """Hex form of :func:`hash_bytes`, for measurements and identifiers."""
    return hash_bytes(tag, data).hex()


def hash_to_int(tag: str, data: bytes, modulus: int) -> int:
    """Hash ``data`` to an integer in ``[0, modulus)``.

    Uses enough digest blocks to make the modular bias negligible for the
    modulus sizes used in this library (the output has at least 128 bits of
    headroom over ``modulus``).
    """
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    need_bits = modulus.bit_length() + 128
    blocks = (need_bits + 255) // 256
    stream = b"".join(
        hash_bytes(tag, counter.to_bytes(4, "big") + data) for counter in range(blocks)
    )
    return int.from_bytes(stream, "big") % modulus
