"""Shamir secret sharing over the prime field GF(2^255 - 19).

Secure aggregation (Bonawitz et al. [3], which §3 of the paper adopts for
blinding) needs dropout recovery: each client's mask seed is shared among its
peers so that the masks of clients who disappear mid-round can be
reconstructed.  This module supplies the ``t``-of-``n`` sharing.

Secrets are arbitrary 32-byte strings, embedded into field elements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.crypto.drbg import HmacDrbg
from repro.errors import CryptoError

# 2^255 - 19, prime; comfortably holds any 31-byte secret plus framing.
FIELD_PRIME = (1 << 255) - 19
SECRET_SIZE = 30  # bytes; leaves headroom below the prime


@dataclass(frozen=True)
class ShamirShare:
    """One share: evaluation point ``x`` (>=1) and value ``y = f(x)``."""

    x: int
    y: int


def _check_secret(secret: bytes) -> int:
    if len(secret) > SECRET_SIZE:
        raise CryptoError(f"secret must be at most {SECRET_SIZE} bytes")
    # Length framing so trailing-zero secrets round-trip exactly.
    framed = len(secret).to_bytes(1, "big") + secret.rjust(SECRET_SIZE, b"\x00")
    return int.from_bytes(framed, "big")


def _decode_secret(value: int) -> bytes:
    if not 0 <= value < (1 << ((SECRET_SIZE + 1) * 8)):
        raise CryptoError("reconstructed value is not a framed secret")
    framed = value.to_bytes(SECRET_SIZE + 1, "big")
    length = framed[0]
    if length > SECRET_SIZE:
        raise CryptoError("reconstructed value is not a framed secret")
    payload = framed[1:]
    if length == 0:
        if payload != b"\x00" * SECRET_SIZE:
            raise CryptoError("reconstructed value is not a framed secret")
        return b""
    if payload[: SECRET_SIZE - length] != b"\x00" * (SECRET_SIZE - length):
        raise CryptoError("reconstructed value is not a framed secret")
    return payload[SECRET_SIZE - length :]


def split_secret(
    secret: bytes, threshold: int, num_shares: int, rng: HmacDrbg
) -> list[ShamirShare]:
    """Split ``secret`` into ``num_shares`` shares, any ``threshold`` of which recover it.

    Raises :class:`CryptoError` on invalid parameters (threshold < 1,
    threshold > num_shares, oversized secret).
    """
    if threshold < 1:
        raise CryptoError("threshold must be at least 1")
    if num_shares < threshold:
        raise CryptoError("need at least `threshold` shares")
    if num_shares >= FIELD_PRIME:
        raise CryptoError("too many shares for the field")
    constant = _check_secret(secret)
    coefficients = [constant] + [
        rng.randint(FIELD_PRIME) for _ in range(threshold - 1)
    ]
    shares = []
    for x in range(1, num_shares + 1):
        y = 0
        for coefficient in reversed(coefficients):  # Horner's rule
            y = (y * x + coefficient) % FIELD_PRIME
        shares.append(ShamirShare(x=x, y=y))
    return shares


def recover_secret(shares: Sequence[ShamirShare]) -> bytes:
    """Lagrange-interpolate at zero and decode the framed secret.

    The caller must supply at least ``threshold`` *distinct* shares; fewer
    (or corrupted) shares yield either a :class:`CryptoError` or garbage that
    fails frame decoding with overwhelming probability.
    """
    if not shares:
        raise CryptoError("no shares supplied")
    xs = [share.x for share in shares]
    if len(set(xs)) != len(xs):
        raise CryptoError("duplicate share indices")
    secret_value = 0
    for i, share_i in enumerate(shares):
        numerator = 1
        denominator = 1
        for j, share_j in enumerate(shares):
            if i == j:
                continue
            numerator = (numerator * (-share_j.x)) % FIELD_PRIME
            denominator = (denominator * (share_i.x - share_j.x)) % FIELD_PRIME
        lagrange = numerator * pow(denominator, FIELD_PRIME - 2, FIELD_PRIME)
        secret_value = (secret_value + share_i.y * lagrange) % FIELD_PRIME
    return _decode_secret(secret_value)


def recover_from_subsets(
    share_sets: Iterable[Sequence[ShamirShare]],
) -> list[bytes]:
    """Convenience: recover one secret per share set (used in dropout recovery)."""
    return [recover_secret(shares) for shares in share_sets]
