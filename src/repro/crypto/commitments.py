"""Verifiable blinding: commitments over a round's sum-zero mask family.

§3 assumes the blinding service is *trusted* to hand out masks with
``Σ_j m_j ≡ 0 (mod 2^64)`` per component.  The paper itself concedes the
service "could itself be a Glimmer" — i.e. it should not be axiomatically
trusted.  This module removes the axiom: when the blinding service opens
a round it also publishes a commitment set that (a) binds every slot's
mask and (b) lets the engine check the sum-zero property homomorphically
at finalize, without any single party ever seeing all masks.

Construction
------------

Work in the Schnorr group ``G`` (prime ``p``, QR subgroup of prime order
``q``, generator ``h``); ``u`` is a second generator derived by hashing
into the subgroup, so its discrete log w.r.t. ``h`` is unknown to the
blinder (simulation-grade Pedersen assumption).

Each 64-bit mask word is split into ``ceil(64 / 16)`` 16-bit limbs, so a
*limb column* ``(i, l)`` — component ``i``, limb ``l`` — sums over the
``N`` slots to an integer strictly below ``N·2^16``.  That bound is the
soundness linchpin: it keeps every column discrepancy smaller than ``q``
even for the 63-bit test group, so a congruence mod ``q`` implies integer
equality (a single-scalar-per-word scheme would let a cheating blinder
shift a column sum by ``q`` undetected).

The blinder publishes, per round:

* per-slot hash commitments ``HC_j = H(round, j, mask_j, salt_j)``;
* the claimed limb-column sums ``T[i][l]`` (public integers — they reveal
  only the carry structure of the family, ``O(L·log N)`` bits about an
  ``N·L·64``-bit secret, and under honest sum-zero they are implied by
  the carries anyway);
* a Fiat-Shamir ``root`` binding round shape, every ``HC_j``, and every
  ``T[i][l]`` — claims are committed *before* the challenge weights
  ``w[i][l] = H(root, i, l) mod q`` exist, so they cannot be solved for
  afterwards;
* per-slot Pedersen points ``C_j = h^{s_j}·u^{r_j}`` with
  ``s_j = Σ_{i,l} w[i][l]·limb_l(m_{j,i}) mod q``;
* the randomizer sum ``R = Σ_j r_j mod q``.

Verification splits three ways:

1. **Structural** (engine, at open): recompute ``root``, range-check every
   ``T[i][l] < N·2^16``, and check per component
   ``Σ_l 2^{16l}·T[i][l] ≡ 0 (mod 2^64)`` — the sum-zero *claim*.
2. **Per-slot opening** (each recipient Glimmer at install; the engine at
   dropout reveal): ``HC_j`` matches the delivered ``(mask, salt)`` and
   ``C_j = h^{s_j}·u^{r_j}`` for the recomputed ``s_j``.  Every slot is
   opened by someone, so every ``C_j`` provably commits the mask that was
   actually delivered.
3. **Homomorphic sum-zero** (engine, at finalize):
   ``Π_j C_j ≡ h^{Σ w[i][l]·T[i][l]}·u^R`` — the actual limb-column sums
   equal the claimed ones except with probability ``≈ L·limbs/q``
   (Schwartz–Zippel over the Fiat-Shamir weights).

Together: a blinder that delivers a non-sum-zero family, reuses a mask,
equivocates between parties, or mis-reveals at repair time is *detected*
and blamed; it can never silently corrupt an aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.crypto import group_ops
from repro.crypto.dh import DHGroup, OAKLEY_GROUP_1, TEST_GROUP
from repro.crypto.drbg import HmacDrbg
from repro.crypto.hashing import hash_bytes, hash_items, hash_to_int
from repro.errors import ConfigurationError, MaskVerificationError
from repro.perf import kernels

LIMB_BITS = 16
SALT_SIZE = 32

_KNOWN_GROUPS = {TEST_GROUP.name: TEST_GROUP, OAKLEY_GROUP_1.name: OAKLEY_GROUP_1}


def resolve_group(name: str) -> DHGroup:
    """Look up a shipped group by wire name (commitment sets carry names)."""
    group = _KNOWN_GROUPS.get(name)
    if group is None:
        raise ConfigurationError(f"unknown commitment group {name!r}")
    return group


def _limbs_per_word(modulus_bits: int) -> int:
    return (modulus_bits + LIMB_BITS - 1) // LIMB_BITS


def _word_limbs(value: int, limbs: int) -> list[int]:
    mask = (1 << LIMB_BITS) - 1
    return [(value >> (LIMB_BITS * l)) & mask for l in range(limbs)]


@lru_cache(maxsize=None)
def pedersen_generators(group: DHGroup) -> tuple[int, int]:
    """``(h, u)``: the subgroup generator and a second, dlog-free generator.

    ``u`` is hashed into the group and squared (squaring lands in the QR
    subgroup), so nobody — the blinder included — knows ``log_h u``.
    Pure in the (hashable, frozen) group, so the derivation is cached.
    """
    h = group.subgroup_generator()
    counter = 0
    while True:
        seed = hash_bytes(
            "pedersen-second-generator",
            group.name.encode("ascii") + counter.to_bytes(4, "big"),
        )
        candidate = pow(
            2 + hash_to_int("pedersen-u", seed, group.prime - 3), 2, group.prime
        )
        if candidate not in (1, group.prime - 1) and candidate != h:
            # Both generators are raised to fresh exponents once per slot
            # per round — guaranteed hot, so build their fixed-base tables
            # up front instead of waiting for the use-count heuristic.
            group_ops.register_base(group.prime, h)
            group_ops.register_base(group.prime, candidate)
            return h, candidate
        counter += 1


def hash_commitment(
    round_id: int, slot: int, mask: Sequence[int], salt: bytes
) -> bytes:
    """The binding per-slot commitment ``HC_j``.

    The mask words are serialized as one contiguous big-endian buffer
    (:func:`repro.perf.kernels.be_words_to_bytes`), so hashing makes a
    single pass instead of joining ``length`` 8-byte fragments.
    """
    return hash_items(
        "mask-slot-commitment",
        [
            round_id.to_bytes(8, "big"),
            slot.to_bytes(4, "big"),
            kernels.be_words_to_bytes(mask),
            salt,
        ],
    )


@dataclass(frozen=True)
class MaskOpening:
    """What a slot's recipient gets: the mask plus its commitment opening.

    Iterating an opening yields the bare mask words, so legacy code that
    treats a revealed dropout mask as a word sequence keeps working.
    """

    mask: tuple[int, ...]
    salt: bytes
    randomizer: int

    def __iter__(self):
        return iter(self.mask)

    def __len__(self) -> int:
        return len(self.mask)


@dataclass(frozen=True)
class MaskCommitmentRecord:
    """One slot's share of the round commitments, as the engine vouches it.

    This travels inside the engine's ``ProvisionMask`` command, so the
    client verifies against the commitment set the *engine* validated at
    open — a blinder cannot tell the engine one story and a client
    another.
    """

    round_id: int
    slot: int
    num_slots: int
    vector_length: int
    modulus_bits: int
    group_name: str
    root: bytes
    hash_commitment: bytes
    point: int


@dataclass(frozen=True)
class MaskCommitmentSet:
    """Everything the blinding service publishes when a round opens."""

    round_id: int
    num_slots: int
    vector_length: int
    modulus_bits: int
    group_name: str
    hash_commitments: tuple[bytes, ...]
    points: tuple[int, ...]
    column_sums: tuple[tuple[int, ...], ...]
    """``column_sums[i][l]``: claimed integer sum over slots of limb ``l``
    of component ``i``."""
    randomizer_sum: int

    # ------------------------------------------------------------ derivation

    def root(self) -> bytes:
        """Fiat-Shamir root binding the whole set.

        The set is frozen, so the digest is computed once and memoized on
        the instance (``record_for`` calls this per slot — without the
        memo a full round's provisioning is quadratic in the slot count).
        """
        cached = self.__dict__.get("_root_memo")
        if cached is not None:
            return cached
        limbs = _limbs_per_word(self.modulus_bits)
        items: list[bytes] = [
            self.round_id.to_bytes(8, "big"),
            self.num_slots.to_bytes(4, "big"),
            self.vector_length.to_bytes(4, "big"),
            self.modulus_bits.to_bytes(2, "big"),
            self.group_name.encode("ascii"),
        ]
        items.extend(self.hash_commitments)
        for column in self.column_sums:
            for l in range(limbs):
                items.append(int(column[l]).to_bytes(8, "big"))
        root = hash_items("mask-commitment-root", items)
        object.__setattr__(self, "_root_memo", root)
        return root

    def weights(self, root: bytes | None = None) -> tuple[tuple[int, ...], ...]:
        """Fiat-Shamir challenge weight per limb column, ``mod q``."""
        return challenge_weights(
            self.root() if root is None else root,
            self.group_name,
            self.vector_length,
            self.modulus_bits,
        )

    def record_for(self, slot: int) -> MaskCommitmentRecord:
        return MaskCommitmentRecord(
            round_id=self.round_id,
            slot=slot,
            num_slots=self.num_slots,
            vector_length=self.vector_length,
            modulus_bits=self.modulus_bits,
            group_name=self.group_name,
            root=self.root(),
            hash_commitment=self.hash_commitments[slot],
            point=self.points[slot],
        )

    # ---------------------------------------------------------- verification

    def validate_structure(
        self,
        round_id: int | None = None,
        num_slots: int | None = None,
        vector_length: int | None = None,
    ) -> None:
        """Structural + sum-zero-claim checks (engine, at round open)."""
        if round_id is not None and self.round_id != round_id:
            raise MaskVerificationError(
                f"commitment set names round {self.round_id}, expected {round_id}"
            )
        if num_slots is not None and self.num_slots != num_slots:
            raise MaskVerificationError(
                f"commitment set has {self.num_slots} slots, expected {num_slots}"
            )
        if vector_length is not None and self.vector_length != vector_length:
            raise MaskVerificationError(
                f"commitment set is over length {self.vector_length}, "
                f"expected {vector_length}"
            )
        group = resolve_group(self.group_name)
        limbs = _limbs_per_word(self.modulus_bits)
        column_cap = self.num_slots * ((1 << LIMB_BITS) - 1)
        if 2 * (column_cap + 1) >= group.subgroup_order:
            raise MaskVerificationError(
                "group order too small for sound limb commitments at this scale"
            )
        if len(self.hash_commitments) != self.num_slots or len(self.points) != (
            self.num_slots
        ):
            raise MaskVerificationError("commitment set has the wrong slot count")
        if len(self.column_sums) != self.vector_length:
            raise MaskVerificationError("commitment set has the wrong column count")
        for i, column in enumerate(self.column_sums):
            if len(column) != limbs:
                raise MaskVerificationError(f"component {i} has the wrong limb count")
        self._audit_column_sums(limbs, column_cap)
        if not 0 <= self.randomizer_sum < group.subgroup_order:
            raise MaskVerificationError("randomizer sum out of range")
        for slot, point in enumerate(self.points):
            if not group.is_valid_element(point):
                raise MaskVerificationError(
                    f"slot {slot} commitment point is not a valid group element"
                )
        for slot, digest in enumerate(self.hash_commitments):
            if not isinstance(digest, bytes) or len(digest) != 32:
                raise MaskVerificationError(
                    f"slot {slot} hash commitment is malformed"
                )

    def _audit_column_sums(self, limbs: int, column_cap: int) -> None:
        """Vectorized sum-zero audit over the claimed limb-column sums.

        Range-checks every ``T[i][l]`` and verifies per component
        ``Σ_l 2^{16l}·T[i][l] ≡ 0 (mod 2^modulus_bits)``.  The weighted
        totals are accumulated in ``uint64`` — wraparound is exact modulo
        ``2^64``, and ``2^modulus_bits`` divides ``2^64``, so the reduced
        result matches the arbitrary-precision scalar check bit for bit.
        Claims numpy cannot even represent (negative, or ≥ 2^64) are by
        construction out of range, so the fallback rejects them directly.
        """
        try:
            claimed = np.asarray(self.column_sums, dtype=np.uint64)
        except (OverflowError, TypeError, ValueError):
            for i, column in enumerate(self.column_sums):
                for l, value in enumerate(column):
                    if not 0 <= int(value) <= column_cap:
                        raise MaskVerificationError(
                            "claimed column sum out of range at "
                            f"component {i} limb {l}"
                        )
            raise MaskVerificationError("claimed column sums are malformed")
        in_range = claimed <= np.uint64(column_cap)
        if not in_range.all():
            i, l = (int(v) for v in np.argwhere(~in_range)[0])
            raise MaskVerificationError(
                f"claimed column sum out of range at component {i} limb {l}"
            )
        shifts = (np.uint64(LIMB_BITS) * np.arange(limbs, dtype=np.uint64))
        totals = (claimed << shifts).sum(axis=1, dtype=np.uint64)
        violations = kernels.ring_reduce(totals, self.modulus_bits)
        if violations.any():
            i = int(np.flatnonzero(violations)[0])
            raise MaskVerificationError(
                f"claimed column sums violate sum-zero at component {i}"
            )

    def verify_sum_zero(self, point_product: int | None = None) -> None:
        """The homomorphic check: ``Π C_j ≡ h^{Σ w·T} · u^R`` (finalize).

        ``point_product`` optionally supplies ``Π_j C_j mod p`` computed
        elsewhere — the sharded aggregation tree folds each cohort's
        partial product and merges them at the root (modular
        multiplication is associative, so the merged product is the same
        integer the serial loop computes).
        """
        group = resolve_group(self.group_name)
        q = group.subgroup_order
        h, u = pedersen_generators(group)
        weights = self.weights()
        target = 0
        for i, column in enumerate(self.column_sums):
            for l, claimed in enumerate(column):
                target = (target + weights[i][l] * int(claimed)) % q
        if point_product is None:
            product = 1
            for point in self.points:
                product = (product * point) % group.prime
        else:
            product = int(point_product) % group.prime
        expected = (
            group.power(h, target) * group.power(u, self.randomizer_sum)
        ) % group.prime
        if product != expected:
            raise MaskVerificationError(
                f"round {self.round_id}: mask commitments do not satisfy "
                "the claimed sum-zero column sums"
            )


@lru_cache(maxsize=8)
def challenge_weights(
    root: bytes, group_name: str, vector_length: int, modulus_bits: int
) -> tuple[tuple[int, ...], ...]:
    """The ``w[i][l] = H(root, i, l) mod q`` table for one commitment root.

    Pure in its arguments, so the table is derived once per round and
    shared by every consumer — the set-level :meth:`MaskCommitmentSet.weights`,
    the per-slot record path Glimmers verify against at install, and the
    engine's dropout-repair sweep.  Deriving it costs one hash per limb
    column (``vector_length × limbs``), which used to be repeated per slot.
    """
    q = resolve_group(group_name).subgroup_order
    limbs = _limbs_per_word(modulus_bits)
    return tuple(
        tuple(
            hash_to_int(
                "mask-commitment-weight",
                root + i.to_bytes(4, "big") + l.to_bytes(2, "big"),
                q,
            )
            for l in range(limbs)
        )
        for i in range(vector_length)
    )


def scalar_for_mask(
    commitments: MaskCommitmentSet,
    mask: Sequence[int],
    weights: tuple[tuple[int, ...], ...] | None = None,
) -> int:
    """``s_j = Σ_{i,l} w[i][l]·limb_l(mask_i) mod q`` for one slot's mask.

    Pass precomputed ``weights`` when verifying many slots of one round —
    deriving them costs one hash per limb column.
    """
    group = resolve_group(commitments.group_name)
    q = group.subgroup_order
    limbs = _limbs_per_word(commitments.modulus_bits)
    if weights is None:
        weights = commitments.weights()
    scalar = 0
    for i, word in enumerate(mask):
        for l, limb in enumerate(_word_limbs(int(word), limbs)):
            if limb:
                scalar = (scalar + weights[i][l] * limb) % q
    return scalar


def _checked_scalar(
    commitments: MaskCommitmentSet | MaskCommitmentRecord,
    slot: int,
    opening: MaskOpening,
    weights: tuple[tuple[int, ...], ...] | None = None,
) -> tuple[int, int]:
    """All the cheap per-slot opening checks; ``(scalar, committed point)``.

    Shape, ring range, hash commitment, and randomizer range are checked
    here (raising :class:`~repro.errors.MaskVerificationError`); the
    Pedersen *point* equation is the caller's job — single-slot
    :func:`verify_opening` pays one double-exp per slot, while
    :func:`batch_verify_openings` folds every slot into one multi-exp.
    """
    if isinstance(commitments, MaskCommitmentRecord):
        record = commitments
        if record.slot != slot:
            raise MaskVerificationError(
                f"commitment record is for slot {record.slot}, not {slot}"
            )
        expected_hc, point = record.hash_commitment, record.point
        set_like = record
    else:
        if not 0 <= slot < commitments.num_slots:
            raise MaskVerificationError(f"slot {slot} out of range")
        expected_hc = commitments.hash_commitments[slot]
        point = commitments.points[slot]
        set_like = commitments
    if len(opening.mask) != set_like.vector_length:
        raise MaskVerificationError(
            f"slot {slot}: mask length {len(opening.mask)} does not match "
            f"the committed vector length {set_like.vector_length}"
        )
    modulus = 1 << set_like.modulus_bits
    if any(not 0 <= int(v) < modulus for v in opening.mask):
        raise MaskVerificationError(f"slot {slot}: mask word out of ring range")
    if hash_commitment(
        set_like.round_id, slot, opening.mask, opening.salt
    ) != expected_hc:
        raise MaskVerificationError(
            f"slot {slot}: delivered mask does not match its hash commitment"
        )
    group = resolve_group(set_like.group_name)
    if not 0 <= opening.randomizer < group.subgroup_order:
        raise MaskVerificationError(f"slot {slot}: randomizer out of range")
    if isinstance(set_like, MaskCommitmentRecord):
        scalar = _scalar_from_record(set_like, opening.mask)
    else:
        scalar = scalar_for_mask(set_like, opening.mask, weights)
    return scalar, point


def verify_opening(
    commitments: MaskCommitmentSet | MaskCommitmentRecord,
    slot: int,
    opening: MaskOpening,
    weights: tuple[tuple[int, ...], ...] | None = None,
) -> None:
    """Check one slot's delivered mask against the round commitments.

    Works from the full set (engine, at reveal) or from a single-slot
    record (Glimmer, at install).  Raises
    :class:`~repro.errors.MaskVerificationError` on any mismatch.
    """
    scalar, point = _checked_scalar(commitments, slot, opening, weights)
    set_like = commitments
    group = resolve_group(set_like.group_name)
    h, u = pedersen_generators(group)
    expected = (
        group.power(h, scalar) * group.power(u, opening.randomizer)
    ) % group.prime
    if expected != point:
        raise MaskVerificationError(
            f"slot {slot}: delivered mask does not match its Pedersen commitment"
        )


def batch_verify_openings(
    commitments: MaskCommitmentSet,
    openings: Sequence[tuple[int, MaskOpening]],
    weights: tuple[tuple[int, ...], ...] | None = None,
) -> bool:
    """One multi-exp Pedersen check over many slots' openings.

    Returns ``True`` when every opening matches its committed point;
    ``False`` when anything fails — callers fall back to per-slot
    :func:`verify_opening` so the exact offending slot is blamed with
    the exact error it always produced.

    Soundness: each slot's cheap checks (hash commitment, ranges) run
    unconditionally; the per-slot Pedersen equations
    ``C_j == h^{s_j}·u^{r_j}`` are combined with independent 128-bit
    DRBG weights ``z_j`` (fixed only after the openings are) into

        ``Π C_j^{z_j} == h^{Σ z_j·s_j} · u^{Σ z_j·r_j}   (mod p)``

    which holds for dishonest openings with probability ≤ 2^−128
    (Schwartz–Zippel in the prime-order subgroup — the ``C_j`` were
    membership-checked at ``validate_structure`` time).
    """
    if len(openings) < 2:
        return False
    group = resolve_group(commitments.group_name)
    q = group.subgroup_order
    try:
        checked = [
            (slot, opening, *_checked_scalar(commitments, slot, opening, weights))
            for slot, opening in openings
        ]
    except MaskVerificationError:
        return False
    size = group.element_size
    transcript_parts = [commitments.root()]
    for slot, opening, scalar, point in checked:
        transcript_parts.append(slot.to_bytes(4, "big"))
        transcript_parts.append(opening.salt)
        transcript_parts.append(scalar.to_bytes(size, "big"))
        transcript_parts.append(opening.randomizer.to_bytes(size, "big"))
    transcript = hash_items("pedersen-batch-openings", transcript_parts)
    scalars = group_ops.batch_scalars(transcript, len(checked))
    s_combined = 0
    r_combined = 0
    for (slot, opening, scalar, point), z in zip(checked, scalars):
        s_combined = (s_combined + z * scalar) % q
        r_combined = (r_combined + z * opening.randomizer) % q
    h, u = pedersen_generators(group)
    lhs = (
        group.power(h, s_combined) * group.power(u, r_combined)
    ) % group.prime
    rhs = group_ops.multi_power(
        group.prime, [point for _, _, _, point in checked], scalars
    )
    return lhs == rhs


def _scalar_from_record(record: MaskCommitmentRecord, mask: Sequence[int]) -> int:
    group = resolve_group(record.group_name)
    q = group.subgroup_order
    limbs = _limbs_per_word(record.modulus_bits)
    weights = challenge_weights(
        record.root, record.group_name, record.vector_length, record.modulus_bits
    )
    scalar = 0
    for i, word in enumerate(mask):
        for l, limb in enumerate(_word_limbs(int(word), limbs)):
            if limb:
                scalar = (scalar + weights[i][l] * limb) % q
    return scalar


def commit_masks(
    group: DHGroup,
    round_id: int,
    masks: Sequence[Sequence[int]],
    modulus_bits: int,
    rng: HmacDrbg,
) -> tuple[MaskCommitmentSet, tuple[MaskOpening, ...]]:
    """Commit a round's mask family; returns the set and per-slot openings.

    The honest-blinder path: the provisioner calls this the moment a
    round's masks are sampled, publishes the set, and delivers each
    opening (mask + salt + randomizer) to its slot's recipient.
    """
    if not masks:
        raise ConfigurationError("cannot commit an empty mask family")
    salts = [rng.generate(SALT_SIZE) for _ in range(len(masks))]
    randomizers = [rng.randint(group.subgroup_order) for _ in range(len(masks))]
    return _commit_with(group, round_id, masks, modulus_bits, salts, randomizers)


def recommit_masks(
    group: DHGroup,
    round_id: int,
    masks: Sequence[Sequence[int]],
    modulus_bits: int,
    openings: Sequence[MaskOpening],
) -> MaskCommitmentSet:
    """Rebuild the exact commitment set from durable openings.

    A restarted blinding service must republish byte-identical
    commitments — the engine already holds the originals from round open —
    so the sealed round state carries the openings and this function
    recomputes the set from them deterministically.
    """
    salts = [opening.salt for opening in openings]
    randomizers = [opening.randomizer for opening in openings]
    commitments, _ = _commit_with(
        group, round_id, masks, modulus_bits, salts, randomizers
    )
    return commitments


def _commit_with(
    group: DHGroup,
    round_id: int,
    masks: Sequence[Sequence[int]],
    modulus_bits: int,
    salts: Sequence[bytes],
    randomizers: Sequence[int],
) -> tuple[MaskCommitmentSet, tuple[MaskOpening, ...]]:
    num_slots = len(masks)
    vector_length = len(masks[0])
    q = group.subgroup_order
    limbs = _limbs_per_word(modulus_bits)
    hash_commitments = tuple(
        hash_commitment(round_id, slot, masks[slot], salts[slot])
        for slot in range(num_slots)
    )
    # Limb-column sums in one pass per limb: shift/mask the whole
    # slots × length matrix and sum down the slot axis.  Each column sum
    # is < num_slots · 2^16, far inside uint64, so the accumulation is
    # exact — bit-identical to the per-word scalar loop.
    limb_sums = kernels.limb_column_sums(masks, limbs, LIMB_BITS)
    columns = [
        tuple(int(limb_sums[l][i]) for l in range(limbs))
        for i in range(vector_length)
    ]
    partial = MaskCommitmentSet(
        round_id=round_id,
        num_slots=num_slots,
        vector_length=vector_length,
        modulus_bits=modulus_bits,
        group_name=group.name,
        hash_commitments=hash_commitments,
        points=(),
        column_sums=tuple(columns),
        randomizer_sum=0,
    )
    h, u = pedersen_generators(group)
    weights = partial.weights()
    points = []
    for slot in range(num_slots):
        scalar = scalar_for_mask(partial, masks[slot], weights)
        points.append(
            (group.power(h, scalar) * group.power(u, randomizers[slot]))
            % group.prime
        )
    commitments = MaskCommitmentSet(
        round_id=round_id,
        num_slots=num_slots,
        vector_length=vector_length,
        modulus_bits=modulus_bits,
        group_name=group.name,
        hash_commitments=hash_commitments,
        points=tuple(points),
        column_sums=tuple(columns),
        randomizer_sum=sum(randomizers) % q,
    )
    openings = tuple(
        MaskOpening(
            mask=tuple(int(v) for v in masks[slot]),
            salt=salts[slot],
            randomizer=randomizers[slot],
        )
        for slot in range(num_slots)
    )
    return commitments, openings


# Mask delivery wire format --------------------------------------------------
#
#   u32 length | length × u64 mask words | 32-byte salt | u16 rlen | r bytes
#
# The opening travels *inside* the authenticated provisioning ciphertext;
# this framing just makes truncation/extension unambiguous.


def encode_mask_payload(opening: MaskOpening) -> bytes:
    r_bytes = opening.randomizer.to_bytes(
        (opening.randomizer.bit_length() + 7) // 8 or 1, "big"
    )
    return b"".join(
        [
            len(opening.mask).to_bytes(4, "big"),
            kernels.be_words_to_bytes(opening.mask),
            opening.salt,
            len(r_bytes).to_bytes(2, "big"),
            r_bytes,
        ]
    )


def decode_mask_payload(payload: bytes) -> MaskOpening:
    if len(payload) < 4:
        raise MaskVerificationError("mask payload truncated")
    length = int.from_bytes(payload[:4], "big")
    offset = 4
    need = 8 * length + SALT_SIZE + 2
    if len(payload) < offset + need:
        raise MaskVerificationError("mask payload truncated")
    mask = kernels.bytes_to_be_words(payload[offset : offset + 8 * length])
    offset += 8 * length
    salt = payload[offset : offset + SALT_SIZE]
    offset += SALT_SIZE
    r_len = int.from_bytes(payload[offset : offset + 2], "big")
    offset += 2
    if len(payload) != offset + r_len:
        raise MaskVerificationError("mask payload has trailing or missing bytes")
    randomizer = int.from_bytes(payload[offset : offset + r_len], "big")
    return MaskOpening(mask=mask, salt=salt, randomizer=randomizer)
