"""Schnorr signatures over the quadratic-residue subgroup of a safe prime.

The Glimmer's *Signing* component endorses validated contributions with a
service-provided key (§3); the service verifies the signatures before
aggregation.  The scheme is classic Schnorr (Fiat-Shamir transformed):

* keygen:  ``x ← [1, q)``, ``y = h^x mod p`` where ``h = g^2`` generates the
  order-``q`` subgroup of a safe prime ``p = 2q + 1``.
* sign:    ``k ← [1, q)``, ``r = h^k``, ``e = H(r, y, m) mod q``,
  ``s = (k + e·x) mod q``; signature is ``(e, s)``.
* verify:  ``r' = h^s · y^{-e}``; accept iff ``H(r', y, m) ≡ e (mod q)``.

Signing is *derandomized* (RFC 6979 style): the nonce ``k`` is derived from
the secret key and message through the DRBG, so the simulator never risks
nonce reuse and signatures are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto import group_ops
from repro.crypto.dh import DHGroup, OAKLEY_GROUP_1
from repro.crypto.drbg import HmacDrbg
from repro.crypto.hashing import hash_items, hash_to_int
from repro.errors import AuthenticationError, CryptoError


def _subgroup_generator(group: DHGroup) -> int:
    return group.subgroup_generator()


def _int_bytes(value: int, group: DHGroup) -> bytes:
    return value.to_bytes(group.element_size, "big")


@dataclass(frozen=True)
class SchnorrSignature:
    """A Schnorr signature ``(challenge, response)``.

    ``commitment`` optionally carries the signer's nonce commitment
    ``r = h^k``.  It is redundant (``r = h^s · y^{-e}`` is recomputable
    from the signature) and therefore excluded from equality and from the
    wire encoding; carrying it lets a verifier with many signatures run
    randomized *batch* verification (:func:`batch_verify`) without
    re-deriving every ``r`` — signatures parsed off the wire simply have
    ``commitment=None`` and verify one at a time.
    """

    challenge: int
    response: int
    commitment: int | None = field(default=None, compare=False, repr=False)

    _COMPONENT_SIZE = 256  # bytes; fits any subgroup order up to 2048 bits

    def to_bytes(self) -> bytes:
        size = self._COMPONENT_SIZE
        return self.challenge.to_bytes(size, "big") + self.response.to_bytes(size, "big")

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SchnorrSignature":
        size = cls._COMPONENT_SIZE
        if len(blob) != 2 * size:
            raise CryptoError("malformed signature encoding")
        return cls(
            challenge=int.from_bytes(blob[:size], "big"),
            response=int.from_bytes(blob[size:], "big"),
        )


@dataclass(frozen=True)
class SchnorrPublicKey:
    """Verification key ``y = h^x`` in a named group."""

    group: DHGroup
    element: int

    def verify(self, message: bytes, signature: SchnorrSignature) -> None:
        """Raise :class:`AuthenticationError` unless ``signature`` is valid."""
        group = self.group
        q = group.subgroup_order
        if not (0 <= signature.challenge < q and 0 <= signature.response < q):
            raise AuthenticationError("signature components out of range")
        if not group.is_valid_element(self.element):
            raise AuthenticationError("public key is not a valid group element")
        h = _subgroup_generator(group)
        # r' = h^s * y^(-e)  =  h^s * y^(q - e)   (y has order q)
        r_prime = (
            group.power(h, signature.response)
            * group.power(self.element, q - signature.challenge)
        ) % group.prime
        expected = _challenge(group, r_prime, self.element, message)
        if expected != signature.challenge:
            raise AuthenticationError("Schnorr verification failed")

    def is_valid(self, message: bytes, signature: SchnorrSignature) -> bool:
        """Boolean form of :meth:`verify` for counting experiments."""
        try:
            self.verify(message, signature)
        except AuthenticationError:
            return False
        return True

    def fingerprint(self) -> bytes:
        """Stable identifier for this key (used in provisioning registries)."""
        return hash_items(
            "schnorr-key-fingerprint",
            [self.group.name.encode(), _int_bytes(self.element, self.group)],
        )


def _challenge(group: DHGroup, commitment: int, public: int, message: bytes) -> int:
    data = hash_items(
        "schnorr-challenge",
        [
            group.name.encode(),
            _int_bytes(commitment, group),
            _int_bytes(public, group),
            message,
        ],
    )
    return hash_to_int("schnorr-challenge-int", data, group.subgroup_order)


@dataclass(frozen=True)
class SchnorrKeyPair:
    """Signing key pair.  Create with :meth:`generate`."""

    group: DHGroup
    secret: int
    public_key: SchnorrPublicKey

    @classmethod
    def generate(cls, rng: HmacDrbg, group: DHGroup = OAKLEY_GROUP_1) -> "SchnorrKeyPair":
        secret = rng.randrange(1, group.subgroup_order)
        h = _subgroup_generator(group)
        return cls(
            group=group,
            secret=secret,
            public_key=SchnorrPublicKey(group=group, element=group.power(h, secret)),
        )

    @classmethod
    def from_secret(cls, secret: int, group: DHGroup = OAKLEY_GROUP_1) -> "SchnorrKeyPair":
        if not 1 <= secret < group.subgroup_order:
            raise CryptoError("secret out of range")
        h = _subgroup_generator(group)
        return cls(
            group=group,
            secret=secret,
            public_key=SchnorrPublicKey(group=group, element=group.power(h, secret)),
        )

    def sign(self, message: bytes) -> SchnorrSignature:
        group = self.group
        q = group.subgroup_order
        h = _subgroup_generator(group)
        # Derandomized nonce: independent per (key, message) pair.
        nonce_rng = HmacDrbg(
            _int_bytes(self.secret, group) + message, personalization="schnorr-nonce"
        )
        k = nonce_rng.randrange(1, q)
        r = group.power(h, k)
        e = _challenge(group, r, self.public_key.element, message)
        s = (k + e * self.secret) % q
        return SchnorrSignature(challenge=e, response=s, commitment=r)


def batch_verify(
    public: SchnorrPublicKey, items: list[tuple[bytes, SchnorrSignature]]
) -> bool | None:
    """Randomized batch verification of many signatures under one key.

    Returns ``True`` when the whole batch verifies, ``False`` when the
    combined check fails (some signature is bad — fall back to
    per-signature :meth:`SchnorrPublicKey.verify` to blame the culprit),
    and ``None`` when the batch is not batchable (fewer than two
    signatures, a signature without its nonce commitment, or a
    commitment outside the QR subgroup) — in which case nothing was
    checked and the caller must verify per signature.

    Soundness (small-exponent / Bellare-Garay-Rabin): per signature the
    cheap hash check ``e_i == H(R_i, y, m_i)`` binds the challenge to the
    carried commitment, and the single combined equation

        ``h^(Σ z_i·s_i) · y^(−Σ z_i·e_i)  ==  Π R_i^{z_i}   (mod p)``

    with independent 128-bit ``z_i`` (DRBG-derived from the batch
    transcript, so fixed only after the signatures are) fails with
    probability ≥ 1 − 2^−128 unless every ``R_i == h^{s_i}·y^{−e_i}``,
    i.e. unless every signature individually verifies.  The Jacobi
    pre-filter pins each ``R_i`` inside the prime-order subgroup, so the
    Schwartz-Zippel argument runs in a prime-order group (a sign-flipped
    ``R_i`` cannot halve the error).  Accept/reject decisions therefore
    match the per-signature path on every input, which the property
    suite asserts including forged-signature-in-a-batch cases.
    """
    if len(items) < 2:
        return None
    group = public.group
    q = group.subgroup_order
    prime = group.prime
    if not group.is_valid_element(public.element):
        return None
    transcript_parts = [group.name.encode(), _int_bytes(public.element, group)]
    commitments: list[int] = []
    for message, signature in items:
        r = signature.commitment
        if r is None or not 1 <= r < prime or group_ops.jacobi(r, prime) != 1:
            return None
        if not (0 <= signature.challenge < q and 0 <= signature.response < q):
            return None
        if _challenge(group, r, public.element, message) != signature.challenge:
            # The challenge does not even match the carried commitment;
            # the per-signature path will reject and name the culprit.
            return False
        commitments.append(r)
        transcript_parts.append(_int_bytes(r, group))
        transcript_parts.append(signature.to_bytes())
        transcript_parts.append(message)
    transcript = hash_items("schnorr-batch-transcript", transcript_parts)
    scalars = group_ops.batch_scalars(transcript, len(items))
    s_combined = 0
    e_combined = 0
    for (message, signature), z in zip(items, scalars):
        s_combined = (s_combined + z * signature.response) % q
        e_combined = (e_combined + z * signature.challenge) % q
    h = _subgroup_generator(group)
    lhs = (
        group.power(h, s_combined)
        * group.power(public.element, (q - e_combined) % q)
    ) % prime
    rhs = group_ops.multi_power(prime, commitments, scalars)
    return lhs == rhs
