"""Schnorr signatures over the quadratic-residue subgroup of a safe prime.

The Glimmer's *Signing* component endorses validated contributions with a
service-provided key (§3); the service verifies the signatures before
aggregation.  The scheme is classic Schnorr (Fiat-Shamir transformed):

* keygen:  ``x ← [1, q)``, ``y = h^x mod p`` where ``h = g^2`` generates the
  order-``q`` subgroup of a safe prime ``p = 2q + 1``.
* sign:    ``k ← [1, q)``, ``r = h^k``, ``e = H(r, y, m) mod q``,
  ``s = (k + e·x) mod q``; signature is ``(e, s)``.
* verify:  ``r' = h^s · y^{-e}``; accept iff ``H(r', y, m) ≡ e (mod q)``.

Signing is *derandomized* (RFC 6979 style): the nonce ``k`` is derived from
the secret key and message through the DRBG, so the simulator never risks
nonce reuse and signatures are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.dh import DHGroup, OAKLEY_GROUP_1
from repro.crypto.drbg import HmacDrbg
from repro.crypto.hashing import hash_items, hash_to_int
from repro.errors import AuthenticationError, CryptoError


def _subgroup_generator(group: DHGroup) -> int:
    return group.subgroup_generator()


def _int_bytes(value: int, group: DHGroup) -> bytes:
    size = (group.prime.bit_length() + 7) // 8
    return value.to_bytes(size, "big")


@dataclass(frozen=True)
class SchnorrSignature:
    """A Schnorr signature ``(challenge, response)``."""

    challenge: int
    response: int

    _COMPONENT_SIZE = 256  # bytes; fits any subgroup order up to 2048 bits

    def to_bytes(self) -> bytes:
        size = self._COMPONENT_SIZE
        return self.challenge.to_bytes(size, "big") + self.response.to_bytes(size, "big")

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SchnorrSignature":
        size = cls._COMPONENT_SIZE
        if len(blob) != 2 * size:
            raise CryptoError("malformed signature encoding")
        return cls(
            challenge=int.from_bytes(blob[:size], "big"),
            response=int.from_bytes(blob[size:], "big"),
        )


@dataclass(frozen=True)
class SchnorrPublicKey:
    """Verification key ``y = h^x`` in a named group."""

    group: DHGroup
    element: int

    def verify(self, message: bytes, signature: SchnorrSignature) -> None:
        """Raise :class:`AuthenticationError` unless ``signature`` is valid."""
        group = self.group
        q = group.subgroup_order
        if not (0 <= signature.challenge < q and 0 <= signature.response < q):
            raise AuthenticationError("signature components out of range")
        if not group.is_valid_element(self.element):
            raise AuthenticationError("public key is not a valid group element")
        h = _subgroup_generator(group)
        # r' = h^s * y^(-e)  =  h^s * y^(q - e)   (y has order q)
        r_prime = (
            group.power(h, signature.response)
            * group.power(self.element, q - signature.challenge)
        ) % group.prime
        expected = _challenge(group, r_prime, self.element, message)
        if expected != signature.challenge:
            raise AuthenticationError("Schnorr verification failed")

    def is_valid(self, message: bytes, signature: SchnorrSignature) -> bool:
        """Boolean form of :meth:`verify` for counting experiments."""
        try:
            self.verify(message, signature)
        except AuthenticationError:
            return False
        return True

    def fingerprint(self) -> bytes:
        """Stable identifier for this key (used in provisioning registries)."""
        return hash_items(
            "schnorr-key-fingerprint",
            [self.group.name.encode(), _int_bytes(self.element, self.group)],
        )


def _challenge(group: DHGroup, commitment: int, public: int, message: bytes) -> int:
    data = hash_items(
        "schnorr-challenge",
        [
            group.name.encode(),
            _int_bytes(commitment, group),
            _int_bytes(public, group),
            message,
        ],
    )
    return hash_to_int("schnorr-challenge-int", data, group.subgroup_order)


@dataclass(frozen=True)
class SchnorrKeyPair:
    """Signing key pair.  Create with :meth:`generate`."""

    group: DHGroup
    secret: int
    public_key: SchnorrPublicKey

    @classmethod
    def generate(cls, rng: HmacDrbg, group: DHGroup = OAKLEY_GROUP_1) -> "SchnorrKeyPair":
        secret = rng.randrange(1, group.subgroup_order)
        h = _subgroup_generator(group)
        return cls(
            group=group,
            secret=secret,
            public_key=SchnorrPublicKey(group=group, element=group.power(h, secret)),
        )

    @classmethod
    def from_secret(cls, secret: int, group: DHGroup = OAKLEY_GROUP_1) -> "SchnorrKeyPair":
        if not 1 <= secret < group.subgroup_order:
            raise CryptoError("secret out of range")
        h = _subgroup_generator(group)
        return cls(
            group=group,
            secret=secret,
            public_key=SchnorrPublicKey(group=group, element=group.power(h, secret)),
        )

    def sign(self, message: bytes) -> SchnorrSignature:
        group = self.group
        q = group.subgroup_order
        h = _subgroup_generator(group)
        # Derandomized nonce: independent per (key, message) pair.
        nonce_rng = HmacDrbg(
            _int_bytes(self.secret, group) + message, personalization="schnorr-nonce"
        )
        k = nonce_rng.randrange(1, q)
        r = group.power(h, k)
        e = _challenge(group, r, self.public_key.element, message)
        s = (k + e * self.secret) % q
        return SchnorrSignature(challenge=e, response=s)
