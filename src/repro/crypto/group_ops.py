"""Fast public-key group operations: tables, multi-exp, session resume.

PR 4 made the masking/ring kernels 10-500x faster, which left pure-python
``pow`` over the safe-prime group as the dominant cost of a round: Schnorr
sign/verify, DH handshakes, and Pedersen commitment arithmetic all reduce
to full-width modular exponentiations.  This module attacks that cost on
three fronts, all exact (never approximate) and all gated by parity twins
in :mod:`repro.perf.reference`:

* **Fixed-base windowed tables** (:class:`FixedBaseTable`,
  :func:`fixed_power`) — the subgroup generator ``h``, the Pedersen
  second generator ``u``, and long-lived public keys are raised to fresh
  exponents thousands of times per deployment.  Precomputing
  ``base^(d·2^(w·i))`` once turns each exponentiation into ~128 table
  multiplies instead of ~1150 square-and-multiply steps.  Tables build
  lazily: any base exponentiated more than :data:`AUTO_BUILD_THRESHOLD`
  times earns one, so hot public keys are discovered, not declared.
* **Simultaneous multi-exponentiation** (:func:`multi_power`, Pippenger's
  bucket method) — verifying a whole cohort at once (batch Schnorr, batch
  Pedersen openings) needs ``Π base_i^{z_i}`` for small random ``z_i``;
  sharing the squarings across the products beats a ``pow`` loop by the
  ratio of exponent widths.
* **Cross-round DH session cache** (:class:`DHSessionCache`) — repeat
  provisioning legs to the same peer resume a previously established
  shared secret with an HKDF-ratcheted per-round key instead of paying
  keygen + membership check + shared-secret exponentiation again,
  mirroring the quote-resumption pattern of :mod:`repro.sgx.sessions`.

The module also memoizes subgroup-membership checks (True results only —
an element proven in the subgroup stays in the subgroup; invalid elements
always re-run the full check) and exposes the counters the engine folds
into :class:`~repro.runtime.telemetry.RoundReport` so cache efficacy is
observable per round.

Everything here is plain-int arithmetic: no imports from
:mod:`repro.crypto.dh` or :mod:`repro.crypto.schnorr`, which lets those
modules build on this one without cycles.
"""

from __future__ import annotations

from repro.crypto.drbg import HmacDrbg
from repro.crypto.kdf import hkdf

__all__ = [
    "FixedBaseTable",
    "DHSessionCache",
    "fixed_power",
    "register_base",
    "multi_power",
    "jacobi",
    "batch_scalars",
    "counters",
    "counters_delta",
    "reset_tables",
]

#: Window width for fixed-base tables.  w=6 costs ~12 ms and ~1 MB per
#: 768-bit base and makes each exponentiation ~4.5x faster than ``pow``;
#: wider windows buy little more and cost quadratically more to build.
WINDOW_BITS = 6

#: Below this prime width the CPython ``pow`` C loop beats any pure-python
#: windowed ladder, so small groups (e.g. the 64-bit test group) bypass
#: tables entirely.
MIN_TABLE_PRIME_BITS = 256

#: A base earns a table after this many exponentiations.  Building costs
#: ~8 plain exponentiations' worth of multiplies, so the threshold keeps
#: one-shot bases (ephemeral peer publics) on the plain path.
AUTO_BUILD_THRESHOLD = 8

#: Hard caps so adversarial traffic cannot balloon the caches.
_MAX_TABLES = 32
_MAX_USE_COUNTS = 4096
_MAX_MEMBERS = 8192

#: Width of the random batch-verification scalars.  2^-128 soundness
#: error per Schwartz-Zippel, comfortably below the hash security level.
BATCH_SCALAR_BITS = 128


# ------------------------------------------------------------------ counters

_COUNTERS = {
    "batch_verifications": 0,
    "batch_fallbacks": 0,
    "handshakes_resumed": 0,
    "membership_checks_skipped": 0,
}


def bump(counter: str, by: int = 1) -> None:
    _COUNTERS[counter] += by


def counters() -> dict[str, int]:
    """A snapshot of the process-wide cache/batching counters."""
    return dict(_COUNTERS)


def counters_delta(before: dict[str, int]) -> dict[str, int]:
    """Counter growth since ``before`` (a prior :func:`counters` snapshot)."""
    return {key: _COUNTERS[key] - before.get(key, 0) for key in _COUNTERS}


# ----------------------------------------------------------- windowed tables


class FixedBaseTable:
    """Precomputed powers ``base^(d · 2^(w·i)) mod prime`` for fast ``^e``.

    With window width ``w``, exponents up to ``prime.bit_length()`` bits
    split into digits ``d_i`` and ``base^e = Π table[i][d_i]`` — one
    multiply per non-zero digit, no squarings at exponentiation time.
    """

    __slots__ = ("prime", "base", "window", "coverage_bits", "_rows")

    def __init__(
        self, prime: int, base: int, window: int = WINDOW_BITS, max_bits: int | None = None
    ) -> None:
        self.prime = prime
        self.base = base
        self.window = window
        bits = max_bits if max_bits is not None else prime.bit_length()
        radix = 1 << window
        num_rows = max(1, -(-bits // window))
        self.coverage_bits = num_rows * window
        rows = []
        step = base % prime
        for _ in range(num_rows):
            row = [1] * radix
            acc = 1
            for digit in range(1, radix):
                acc = acc * step % prime
                row[digit] = acc
            rows.append(row)
            # acc == step^(radix-1); one more multiply gives the next
            # row's unit step step^radix = base^(2^(w·(i+1))).
            step = acc * step % prime
        self._rows = rows

    def power(self, exponent: int) -> int:
        """``base^exponent mod prime`` — exact, falls back out of range."""
        if exponent < 0 or exponent.bit_length() > self.coverage_bits:
            return pow(self.base, exponent, self.prime)
        prime = self.prime
        mask = (1 << self.window) - 1
        result = 1
        row = 0
        while exponent:
            digit = exponent & mask
            if digit:
                result = result * self._rows[row][digit] % prime
            exponent >>= self.window
            row += 1
        return result


_TABLES: dict[tuple[int, int], FixedBaseTable] = {}
_USE_COUNTS: dict[tuple[int, int], int] = {}


def register_base(prime: int, base: int) -> FixedBaseTable | None:
    """Eagerly build (or fetch) the table for a known-hot base.

    Returns ``None`` for primes too small to profit or when the table
    budget is exhausted — callers never need to care, :func:`fixed_power`
    stays correct either way.
    """
    key = (prime, base)
    table = _TABLES.get(key)
    if table is not None:
        return table
    if prime.bit_length() < MIN_TABLE_PRIME_BITS or len(_TABLES) >= _MAX_TABLES:
        return None
    table = FixedBaseTable(prime, base)
    _TABLES[key] = table
    return table


def fixed_power(prime: int, base: int, exponent: int) -> int:
    """``pow(base, exponent, prime)`` through a fixed-base table when hot.

    Bit-exact with ``pow`` on every input: tables only change *how* the
    product is computed.  Cold bases are counted and earn a table after
    :data:`AUTO_BUILD_THRESHOLD` uses, which is how long-lived public
    keys (service signing key, provisioner identities) get fast without
    any call site declaring them.
    """
    key = (prime, base)
    table = _TABLES.get(key)
    if table is not None:
        return table.power(exponent)
    if prime.bit_length() >= MIN_TABLE_PRIME_BITS and len(_TABLES) < _MAX_TABLES:
        if len(_USE_COUNTS) >= _MAX_USE_COUNTS:
            _USE_COUNTS.clear()
        count = _USE_COUNTS.get(key, 0) + 1
        _USE_COUNTS[key] = count
        if count >= AUTO_BUILD_THRESHOLD:
            table = register_base(prime, base)
            if table is not None:
                _USE_COUNTS.pop(key, None)
                return table.power(exponent)
    return pow(base, exponent, prime)


def reset_tables() -> None:
    """Drop every cached table, use count, and membership memo (tests)."""
    _TABLES.clear()
    _USE_COUNTS.clear()
    _MEMBERS.clear()


# --------------------------------------------------- multi-exponentiation


def multi_power(prime: int, bases, exponents) -> int:
    """``Π bases[i]^exponents[i] mod prime`` via Pippenger's bucket method.

    Exact for any non-negative exponents.  The win over a ``pow`` loop
    comes from sharing one squaring chain across all products — for the
    128-bit scalars of batch verification that is ~3x at 64 bases and
    grows with the batch.
    """
    bases = [int(b) % prime for b in bases]
    exponents = [int(e) for e in exponents]
    if len(bases) != len(exponents):
        raise ValueError("multi_power needs one exponent per base")
    if any(e < 0 for e in exponents):
        raise ValueError("multi_power exponents must be non-negative")
    if not bases:
        return 1 % prime
    if len(bases) == 1:
        return pow(bases[0], exponents[0], prime)
    max_bits = max(e.bit_length() for e in exponents)
    if max_bits == 0:
        return 1 % prime
    window = 6 if len(bases) >= 16 else 4
    mask = (1 << window) - 1
    num_windows = -(-max_bits // window)
    result = 1
    for w in range(num_windows - 1, -1, -1):
        if result != 1:
            for _ in range(window):
                result = result * result % prime
        shift = w * window
        buckets = [1] * (mask + 1)
        for base, exponent in zip(bases, exponents):
            digit = (exponent >> shift) & mask
            if digit:
                buckets[digit] = buckets[digit] * base % prime
        # Σ d·bucket[d] via the running-product trick: suffix products
        # accumulate each bucket once per unit of its digit value.
        acc = 1
        windowed = 1
        for digit in range(mask, 0, -1):
            acc = acc * buckets[digit] % prime
            windowed = windowed * acc % prime
        result = result * windowed % prime
    return result


def jacobi(a: int, n: int) -> int:
    """The Jacobi symbol ``(a|n)`` for odd ``n`` (standard binary algorithm).

    For a safe prime ``p = 2q+1`` the order-``q`` subgroup is exactly the
    quadratic residues, so ``jacobi(x, p) == 1`` is a cheap (no
    exponentiation) membership pre-filter used by the batch verifiers to
    keep full-group forgeries out of subgroup-soundness arguments.
    """
    if n <= 0 or n % 2 == 0:
        raise ValueError("jacobi is defined for positive odd n")
    a %= n
    result = 1
    while a:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def batch_scalars(transcript: bytes, count: int) -> list[int]:
    """Deterministic random weights for batch verification.

    Drawn from a DRBG seeded by the batch transcript, so the scalars are
    unpredictable to whoever produced the signatures/openings (they are
    fixed only after the batch is), yet reproducible for the replay
    suites.  Each is a nonzero :data:`BATCH_SCALAR_BITS`-bit value.
    """
    rng = HmacDrbg(transcript, personalization="batch-verify-scalars")
    width = BATCH_SCALAR_BITS // 8
    return [
        int.from_bytes(rng.generate(width), "big") or 1 for _ in range(count)
    ]


# ------------------------------------------------------ membership memoizing

_MEMBERS: set[tuple[int, int]] = set()


def is_known_member(prime: int, element: int) -> bool:
    """Has this element already passed the full subgroup-membership check?

    Only ``True`` results are ever cached (:func:`remember_member`), so a
    hit can never turn an invalid element valid — invalid elements always
    pay the full exponentiation and always fail it.
    """
    if (prime, element) in _MEMBERS:
        bump("membership_checks_skipped")
        return True
    return False


def remember_member(prime: int, element: int) -> None:
    """Record a full-check success for :func:`is_known_member`."""
    if len(_MEMBERS) >= _MAX_MEMBERS:
        _MEMBERS.clear()
    _MEMBERS.add((prime, element))


# -------------------------------------------------------- DH session cache


class DHSessionCache:
    """Resume prior DH handshakes instead of re-running them.

    One side of a provisioning relationship (a provisioner, a glimmer)
    keeps ``(peer identity, context) → (own public, base key)``: the
    shared key both ends derived the first time they completed a full
    handshake.  Later rounds derive a fresh per-round key by ratcheting
    the base key with the round's session id (:meth:`resume_key`) — no
    keygen, no membership check, no shared-secret exponentiation.

    Keying mirrors :mod:`repro.sgx.sessions`: the *initiating* side keys
    on a stable peer identity (the attested platform id — the glimmer's
    own DH public is fresh per session and useless as a key), the
    *responding* side keys on the initiator's long-lived DH public, which
    only ever repeats when the initiator is resuming.  Eviction on either
    side is self-announcing: a fresh keypair means a fresh public, so the
    peer's cache misses and the pair falls back to the full handshake.
    The one asymmetric case — the responder lost its cache (enclave
    restart) while the initiator resumes — surfaces as an authenticated-
    decryption failure; the initiator heals by :meth:`evict`-ing the peer
    and retrying the full path.

    Resumption deliberately skips the initiator's per-leg DRBG keypair
    draws, so enabling a cache changes the initiator's random stream:
    caches are strictly opt-in and disqualify the bit-exact parallel
    round path (see :func:`repro.scale.rounds.parallel_eligible`).
    """

    def __init__(self, max_entries: int = 256) -> None:
        self.max_entries = max_entries
        self._entries: dict[tuple[object, str], tuple[int, bytes]] = {}
        self.stores = 0
        self.hits = 0
        self.evictions = 0

    def lookup(self, peer, context: str) -> tuple[int, bytes] | None:
        """``(own public, base key)`` for a resumable peer, else ``None``."""
        entry = self._entries.get((peer, context))
        if entry is not None:
            self.hits += 1
            bump("handshakes_resumed")
        return entry

    def store(self, peer, context: str, own_public: int, base_key: bytes) -> None:
        """Record a completed full handshake for later resumption."""
        if len(self._entries) >= self.max_entries:
            self._entries.pop(next(iter(self._entries)))
            self.evictions += 1
        self._entries[(peer, context)] = (own_public, base_key)
        self.stores += 1

    @staticmethod
    def resume_key(base_key: bytes, session_id: bytes, context: str) -> bytes:
        """The per-round key: HKDF over the base key and this session.

        Stateless in the session id (no counters to desync), so retries
        and out-of-order rounds derive the same key on both ends.
        """
        return hkdf(base_key + session_id, "dh-session-resume:" + context)

    def evict(self, peer, context: str) -> None:
        """Forget one peer (e.g. after a resumed delivery failed to open)."""
        if self._entries.pop((peer, context), None) is not None:
            self.evictions += 1

    def clear(self) -> None:
        self.evictions += len(self._entries)
        self._entries.clear()

    def counters(self) -> dict[str, int]:
        return {
            "stores": self.stores,
            "hits": self.hits,
            "evictions": self.evictions,
            "entries": len(self._entries),
        }
