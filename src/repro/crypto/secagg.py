"""Pairwise-mask secure aggregation with dropout recovery (Bonawitz et al.).

§3 of the paper cites "Practical Secure Aggregation for Federated Learning
on User-Held Data" [3] as the blinding technique a Glimmer would use.  The
simple sum-zero scheme (:mod:`repro.crypto.masking`) needs a trusted
blinding service; this module implements the decentralized alternative the
citation describes, so experiment E3 can compare both:

* every pair of clients ``(i, j)`` derives a shared seed via Diffie-Hellman
  and expands it into a mask vector; client ``i`` adds it, client ``j``
  subtracts it, so pairwise masks cancel in the server's sum;
* every client also adds a private *self-mask* ``b_i`` to defend against a
  server that colludes with late-dropping clients;
* both the DH secret (via a 16-byte generating seed) and ``b_i`` are
  Shamir-shared among the cohort, so the server can repair the sum when
  clients drop: it reconstructs the *pairwise* seeds of dropped clients and
  the *self-masks* of survivors — never both for the same client, which is
  the protocol's key privacy invariant, enforced here by the client logic.

The server never sees an individual ``x_i`` in the clear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.crypto.cipher import AuthenticatedCipher, SealedBox
from repro.crypto.dh import DHGroup, DHKeyPair, OAKLEY_GROUP_1
from repro.crypto.drbg import HmacDrbg
from repro.crypto.fixedpoint import FixedPointCodec
from repro.crypto.kdf import hkdf
from repro.crypto.shamir import ShamirShare, recover_secret, split_secret
from repro.errors import CryptoError, ProtocolError
from repro.perf import kernels

_SEED_SIZE = 16


def _expand_mask(seed: bytes, label: str, length: int, modulus: int) -> np.ndarray:
    """PRG-expand a seed into a ``np.uint64`` ring vector.

    The 64-bit ring (every codec this library ships) takes the bulk DRBG
    path: one HMAC stream pass parsed as big-endian words.  Other moduli
    keep per-element rejection sampling, since truncating a 64-bit word
    is only uniform modulo powers of two.
    """
    rng = HmacDrbg(seed, personalization="secagg-mask:" + label)
    if modulus == 1 << 64:
        return rng.uint64_vector(length)
    return np.asarray(
        [rng.randint(modulus) for _ in range(length)], dtype=np.uint64
    )


def _keypair_from_seed(seed: bytes, group: DHGroup) -> DHKeyPair:
    rng = HmacDrbg(seed, personalization="secagg-dh-keypair")
    return DHKeyPair.generate(group, rng)


@dataclass(frozen=True)
class KeyBundle:
    """Round-0 advertisement: a client's identity and DH public value."""

    client_id: int
    dh_public: int


@dataclass(frozen=True)
class EncryptedShares:
    """Round-1 payload from one client to one peer (encrypted under their pairwise key)."""

    sender: int
    receiver: int
    box: SealedBox


@dataclass
class _PeerShares:
    """What a client holds on behalf of a peer after round 1."""

    seed_share: ShamirShare
    selfmask_share: ShamirShare


class SecureAggregationClient:
    """One protocol participant.

    Drive it through the round methods in order; each validates protocol
    state and raises :class:`ProtocolError` on misuse.  The privacy
    invariant — never reveal both a peer's key-seed share and its self-mask
    share — is enforced in :meth:`unmask_response`.
    """

    def __init__(
        self,
        client_id: int,
        rng: HmacDrbg,
        codec: FixedPointCodec | None = None,
        group: DHGroup = OAKLEY_GROUP_1,
    ) -> None:
        self.client_id = client_id
        self._rng = rng
        self._codec = codec or FixedPointCodec()
        self._group = group
        self._dh_seed = rng.generate(_SEED_SIZE)
        self._keypair = _keypair_from_seed(self._dh_seed, group)
        self._selfmask_seed = rng.generate(_SEED_SIZE)
        self._roster: dict[int, KeyBundle] = {}
        self._threshold = 0
        self._held_shares: dict[int, _PeerShares] = {}
        self._position: dict[int, int] = {}
        self._revealed_seed: set[int] = set()
        self._revealed_selfmask: set[int] = set()
        self._sent_masked_input = False

    # ---------------------------------------------------------------- round 0

    def advertise(self) -> KeyBundle:
        """Publish this client's DH public key."""
        return KeyBundle(client_id=self.client_id, dh_public=self._keypair.public)

    # ---------------------------------------------------------------- round 1

    def _pairwise_key(self, peer: KeyBundle, context: str) -> bytes:
        shared = self._keypair.shared_secret(peer.dh_public)
        low, high = sorted((self.client_id, peer.client_id))
        return hkdf(shared, f"secagg:{context}:{low}:{high}")

    def share_keys(
        self, roster: Sequence[KeyBundle], threshold: int
    ) -> list[EncryptedShares]:
        """Shamir-share the DH seed and self-mask seed to every peer."""
        if self._roster:
            raise ProtocolError("share_keys already called")
        if threshold < 2:
            raise ProtocolError("threshold must be at least 2")
        ids = [bundle.client_id for bundle in roster]
        if len(set(ids)) != len(ids):
            raise ProtocolError("duplicate client ids in roster")
        if self.client_id not in ids:
            raise ProtocolError("own id missing from roster")
        if threshold > len(roster):
            raise ProtocolError("threshold exceeds cohort size")
        self._roster = {bundle.client_id: bundle for bundle in roster}
        self._threshold = threshold

        peers = [bundle for bundle in roster if bundle.client_id != self.client_id]
        n = len(roster)
        seed_shares = split_secret(self._dh_seed, threshold, n, self._rng.fork("seed"))
        mask_shares = split_secret(
            self._selfmask_seed, threshold, n, self._rng.fork("selfmask")
        )
        # Share x-coordinates are 1-based roster positions; remember our own.
        position = {bundle.client_id: idx + 1 for idx, bundle in enumerate(
            sorted(roster, key=lambda b: b.client_id)
        )}
        self._position = position
        out = []
        for peer in peers:
            idx = position[peer.client_id] - 1
            payload = _encode_shares(seed_shares[idx], mask_shares[idx])
            key = self._pairwise_key(peer, "share-transport")
            cipher = AuthenticatedCipher(key)
            nonce = self._rng.generate(16)
            associated = self.client_id.to_bytes(4, "big") + peer.client_id.to_bytes(4, "big")
            out.append(
                EncryptedShares(
                    sender=self.client_id,
                    receiver=peer.client_id,
                    box=cipher.encrypt(nonce, payload, associated_data=associated),
                )
            )
        # Keep our own shares too (position of self).
        own_idx = position[self.client_id] - 1
        self._held_shares[self.client_id] = _PeerShares(
            seed_share=seed_shares[own_idx], selfmask_share=mask_shares[own_idx]
        )
        return out

    def receive_shares(self, messages: Sequence[EncryptedShares]) -> None:
        """Decrypt and store peers' shares addressed to this client."""
        if not self._roster:
            raise ProtocolError("share_keys must run before receive_shares")
        for message in messages:
            if message.receiver != self.client_id:
                raise ProtocolError("share routed to wrong client")
            peer = self._roster.get(message.sender)
            if peer is None:
                raise ProtocolError(f"share from unknown client {message.sender}")
            key = self._pairwise_key(peer, "share-transport")
            cipher = AuthenticatedCipher(key)
            associated = message.sender.to_bytes(4, "big") + self.client_id.to_bytes(4, "big")
            payload = cipher.decrypt(message.box, associated_data=associated)
            seed_share, mask_share = _decode_shares(payload)
            self._held_shares[message.sender] = _PeerShares(
                seed_share=seed_share, selfmask_share=mask_share
            )

    # ---------------------------------------------------------------- round 2

    def masked_input(self, encoded: Sequence[int]) -> list[int]:
        """Return ``x + b_i + Σ_{j>i} s_ij - Σ_{j<i} s_ij`` in the ring."""
        if not self._roster:
            raise ProtocolError("share_keys must run before masked_input")
        if self._sent_masked_input:
            raise ProtocolError("masked_input already sent")
        modulus = self._codec.modulus()
        modulus_bits = self._codec.modulus_bits
        length = len(encoded)
        result = kernels.as_ring(encoded, modulus_bits)
        result = result + _expand_mask(self._selfmask_seed, "self", length, modulus)
        for peer_id, peer in self._roster.items():
            if peer_id == self.client_id:
                continue
            seed = self._pairwise_key(peer, "pairwise-mask")
            mask = _expand_mask(seed, "pair", length, modulus)
            if self.client_id < peer_id:
                result = result + mask
            else:
                result = result - mask
        self._sent_masked_input = True
        return kernels.ring_reduce(result, modulus_bits).tolist()

    # ---------------------------------------------------------------- round 3

    def unmask_response(
        self, survivors: set[int], dropped: set[int]
    ) -> dict[int, ShamirShare]:
        """Reveal recovery shares: key-seed shares for dropped peers, self-mask shares for survivors.

        Refuses to reveal both kinds for the same peer across calls — the
        privacy invariant of the protocol.
        """
        if survivors & dropped:
            raise ProtocolError("a client cannot be both survivor and dropout")
        if self.client_id not in survivors:
            raise ProtocolError("only survivors respond to unmask requests")
        out: dict[int, ShamirShare] = {}
        for peer_id in sorted(dropped):
            if peer_id in self._revealed_selfmask:
                raise ProtocolError(
                    f"refusing to reveal key-seed share for {peer_id}: "
                    "self-mask share already revealed"
                )
            held = self._held_shares.get(peer_id)
            if held is not None:
                out[peer_id] = held.seed_share
                self._revealed_seed.add(peer_id)
        for peer_id in sorted(survivors):
            if peer_id in self._revealed_seed:
                raise ProtocolError(
                    f"refusing to reveal self-mask share for {peer_id}: "
                    "key-seed share already revealed"
                )
            held = self._held_shares.get(peer_id)
            if held is not None:
                out[peer_id] = held.selfmask_share
                self._revealed_selfmask.add(peer_id)
        return out


class SecureAggregationServer:
    """The aggregator: routes messages, sums masked inputs, repairs dropouts.

    It learns only the final sum (plus who participated), which experiment
    E3 verifies by measuring an inversion attacker's advantage against the
    messages the server sees.
    """

    def __init__(
        self,
        codec: FixedPointCodec | None = None,
        group: DHGroup = OAKLEY_GROUP_1,
        reducer=None,
    ) -> None:
        self._codec = codec or FixedPointCodec()
        self._group = group
        self._roster: dict[int, KeyBundle] = {}
        self._threshold = 0
        self._masked: dict[int, np.ndarray] = {}
        self._length = 0
        self._reducer = reducer
        """Optional ``callable(matrix, modulus_bits) -> row`` summing the
        masked matrix; replaceable with a sharded reducer (any
        partition-and-merge over ring addition is bit-exact against the
        flat sum).  ``None`` — the default — folds via the chunked
        :func:`repro.perf.kernels.ring_accumulate`, which never stacks
        the full cohort matrix."""

    @property
    def codec(self) -> FixedPointCodec:
        return self._codec

    def register(self, bundles: Sequence[KeyBundle], threshold: int) -> list[KeyBundle]:
        """Round 0: fix the cohort and the recovery threshold."""
        ids = [bundle.client_id for bundle in bundles]
        if len(set(ids)) != len(ids):
            raise ProtocolError("duplicate client ids")
        if threshold < 2 or threshold > len(bundles):
            raise ProtocolError("invalid threshold")
        self._roster = {bundle.client_id: bundle for bundle in bundles}
        self._threshold = threshold
        return sorted(bundles, key=lambda b: b.client_id)

    @staticmethod
    def route_shares(
        all_messages: Sequence[EncryptedShares],
    ) -> dict[int, list[EncryptedShares]]:
        """Round 1: group encrypted shares by receiver (server is a dumb router)."""
        routed: dict[int, list[EncryptedShares]] = {}
        for message in all_messages:
            routed.setdefault(message.receiver, []).append(message)
        return routed

    def collect_masked_input(self, client_id: int, masked: Sequence[int]) -> None:
        """Round 2: accept one masked vector per registered client."""
        if client_id not in self._roster:
            raise ProtocolError(f"unknown client {client_id}")
        if client_id in self._masked:
            raise ProtocolError(f"duplicate masked input from {client_id}")
        if self._length == 0:
            self._length = len(masked)
        elif len(masked) != self._length:
            raise ProtocolError("masked input length mismatch")
        # Ingest into a ring array once, at submission time: the round-3
        # unmask is then pure column-wise numpy over a contiguous matrix.
        self._masked[client_id] = kernels.as_ring(
            masked, self._codec.modulus_bits
        )

    def survivor_sets(self) -> tuple[set[int], set[int]]:
        """Who submitted (survivors) vs. who dropped after key sharing."""
        survivors = set(self._masked)
        dropped = set(self._roster) - survivors
        return survivors, dropped

    def unmask_and_sum(
        self, responses: Mapping[int, Mapping[int, ShamirShare]]
    ) -> list[int]:
        """Round 3: reconstruct repair masks from shares and output the ring sum.

        ``responses[r][p]`` is responder ``r``'s share for peer ``p``.
        Raises :class:`ProtocolError` if fewer than ``threshold`` shares are
        available for any needed reconstruction.
        """
        survivors, dropped = self.survivor_sets()
        if len(survivors) < self._threshold:
            raise ProtocolError("too few survivors to meet the recovery threshold")
        modulus = self._codec.modulus()
        modulus_bits = self._codec.modulus_bits
        if self._reducer is not None:
            total = self._reducer(
                np.stack(list(self._masked.values())), modulus_bits
            )
        else:
            total = kernels.ring_accumulate(
                self._masked.values(), modulus_bits
            )

        # Remove survivors' self-masks.
        for peer_id in sorted(survivors):
            seed = self._reconstruct(responses, peer_id, minimum=self._threshold)
            total = total - _expand_mask(seed, "self", self._length, modulus)

        # Cancel dangling pairwise masks between dropped clients and survivors.
        for dropped_id in sorted(dropped):
            seed = self._reconstruct(responses, dropped_id, minimum=self._threshold)
            keypair = _keypair_from_seed(seed, self._group)
            for survivor_id in sorted(survivors):
                peer = self._roster[survivor_id]
                shared = keypair.shared_secret(peer.dh_public)
                low, high = sorted((dropped_id, survivor_id))
                pair_seed = hkdf(shared, f"secagg:pairwise-mask:{low}:{high}")
                mask = _expand_mask(pair_seed, "pair", self._length, modulus)
                # The survivor applied sign(survivor, dropped); subtract that.
                if survivor_id < dropped_id:
                    total = total - mask
                else:
                    total = total + mask
        return kernels.ring_reduce(total, modulus_bits).tolist()

    def aggregate(
        self, responses: Mapping[int, Mapping[int, ShamirShare]]
    ) -> "list[float]":
        """Unmask, then decode back to floats with the codec."""
        return list(self._codec.decode(self.unmask_and_sum(responses)))

    def _reconstruct(
        self,
        responses: Mapping[int, Mapping[int, ShamirShare]],
        peer_id: int,
        minimum: int,
    ) -> bytes:
        shares = [
            per_peer[peer_id]
            for per_peer in responses.values()
            if peer_id in per_peer
        ]
        if len(shares) < minimum:
            raise ProtocolError(
                f"only {len(shares)} shares available for client {peer_id}, "
                f"need {minimum}"
            )
        return recover_secret(shares[:minimum])


def _encode_shares(seed_share: ShamirShare, mask_share: ShamirShare) -> bytes:
    return b"".join(
        value.to_bytes(40, "big")
        for value in (seed_share.x, seed_share.y, mask_share.x, mask_share.y)
    )


def _decode_shares(payload: bytes) -> tuple[ShamirShare, ShamirShare]:
    if len(payload) != 160:
        raise CryptoError("malformed share payload")
    # Four 320-bit big-endian values, parsed as a 4x5 matrix of 64-bit
    # limbs in one frombuffer pass and recombined most-significant first.
    limbs = np.frombuffer(payload, dtype=">u8").reshape(4, 5)
    values = []
    for row in limbs.tolist():
        value = 0
        for limb in row:
            value = (value << 64) | limb
        values.append(value)
    return (
        ShamirShare(x=values[0], y=values[1]),
        ShamirShare(x=values[2], y=values[3]),
    )
