"""Self-contained cryptographic toolkit for the Glimmers reproduction.

The Glimmer architecture (validation → blinding → signing inside a TEE)
needs: deterministic randomness, key derivation, authenticated encryption,
Diffie-Hellman key agreement, digital signatures, secret sharing, additive
blinding, and a full secure-aggregation protocol.  All of it is implemented
here on top of :mod:`hashlib`/:mod:`hmac` only, so the simulator is
dependency-free, deterministic under seeding, and easy to audit.

.. warning::
   Simulation-grade crypto: parameters are sized for fast simulation and the
   implementations are not constant-time.  Do not reuse outside this repo.
"""

from repro.crypto.cipher import AuthenticatedCipher, SealedBox
from repro.crypto.dh import DHGroup, DHKeyPair, OAKLEY_GROUP_1, TEST_GROUP
from repro.crypto.drbg import HmacDrbg
from repro.crypto.fixedpoint import FixedPointCodec
from repro.crypto.hashing import hash_bytes, hash_items, hexdigest
from repro.crypto.kdf import hkdf
from repro.crypto.masking import BlindingService, SumZeroMasks
from repro.crypto.schnorr import SchnorrKeyPair, SchnorrPublicKey, SchnorrSignature
from repro.crypto.secagg import SecureAggregationServer, SecureAggregationClient
from repro.crypto.shamir import ShamirShare, split_secret, recover_secret

__all__ = [
    "AuthenticatedCipher",
    "SealedBox",
    "DHGroup",
    "DHKeyPair",
    "OAKLEY_GROUP_1",
    "TEST_GROUP",
    "HmacDrbg",
    "FixedPointCodec",
    "hash_bytes",
    "hash_items",
    "hexdigest",
    "hkdf",
    "BlindingService",
    "SumZeroMasks",
    "SchnorrKeyPair",
    "SchnorrPublicKey",
    "SchnorrSignature",
    "SecureAggregationServer",
    "SecureAggregationClient",
    "ShamirShare",
    "split_secret",
    "recover_secret",
]
