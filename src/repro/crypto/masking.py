"""Sum-zero additive blinding — the exact construction of §3 of the paper.

    "Assume the existence of a trusted blinding service ... that computes N
    random blinding values p_i such that Σ p_i = 0.  It then seals each p_i
    value to the Glimmer code, and encrypts one of the sealed values to each
    of N clients' public keys ... The Blinding component then computes the
    blinded user contribution y_i = x_i + p_i."

:class:`BlindingService` plays that trusted third party: it samples ``N``
mask vectors summing to zero in the ring, and hands each out encrypted to a
per-client key.  :class:`SumZeroMasks` is the client-side arithmetic.

The paper notes the blinding service "could, itself, be implemented as a
separate enclave on one of the clients"; :mod:`repro.core.provisioning`
hosts this service inside a simulated enclave and handles the sealing leg.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.crypto.cipher import AuthenticatedCipher, SealedBox
from repro.crypto.drbg import HmacDrbg
from repro.crypto.fixedpoint import FixedPointCodec
from repro.errors import ConfigurationError, CryptoError
from repro.perf import kernels


@dataclass(frozen=True)
class SumZeroMasks:
    """A family of N ring vectors whose component-wise sum is zero."""

    masks: tuple[tuple[int, ...], ...]
    modulus_bits: int

    @classmethod
    def sample(
        cls, num_parties: int, length: int, rng: HmacDrbg, modulus_bits: int = 64
    ) -> "SumZeroMasks":
        """Sample N masks with Σ_i masks[i] ≡ 0 (mod 2^modulus_bits), per component.

        The first N-1 masks are uniform; the last is the ring negation of
        their sum, which makes the family jointly uniform subject to the
        sum-zero constraint.

        For the 64-bit ring each mask is one bulk DRBG expansion
        (:meth:`~repro.crypto.drbg.HmacDrbg.uint64_vector`) and the
        running sum is numpy ring arithmetic — bit-exact against the
        scalar reference (:func:`repro.perf.reference.sample_sum_zero_scalar`).
        Narrower rings keep the per-element rejection sampler, since a
        masked 64-bit word is not uniform mod a non-power-of-two slice.
        """
        if num_parties < 1:
            raise ConfigurationError("need at least one party")
        if length < 1:
            raise ConfigurationError("mask length must be positive")
        if modulus_bits == 64:
            running = np.zeros(length, dtype=np.uint64)
            masks: list[tuple[int, ...]] = []
            for _ in range(num_parties - 1):
                row = rng.uint64_vector(length)
                running += row
                masks.append(tuple(row.tolist()))
            masks.append(tuple(kernels.ring_neg(running).tolist()))
            return cls(masks=tuple(masks), modulus_bits=modulus_bits)
        modulus = 1 << modulus_bits
        masks = []
        running_list = [0] * length
        for _ in range(num_parties - 1):
            mask = tuple(rng.randint(modulus) for _ in range(length))
            for i, value in enumerate(mask):
                running_list[i] = (running_list[i] + value) % modulus
            masks.append(mask)
        masks.append(tuple((-total) % modulus for total in running_list))
        return cls(masks=tuple(masks), modulus_bits=modulus_bits)

    def mask_for(self, party_index: int) -> tuple[int, ...]:
        return self.masks[party_index]

    def verify_sum_zero(self) -> bool:
        """Sanity invariant used by tests and the blinding service's self-check.

        Chunked accumulation (:func:`repro.perf.kernels.ring_accumulate`)
        keeps the check's peak memory bounded even for large families —
        the full row-major matrix is never needed for a sum.
        """
        totals = kernels.ring_accumulate(self.masks, self.modulus_bits)
        return not totals.any()


class GroupedSumZeroMasks:
    """Per-subgroup sum-zero mask families, materialized on demand.

    The hierarchical aggregation path samples an *independent* sum-zero
    family inside each subgroup of a :class:`repro.scale.subgroup.
    SubgroupPlan`: every subgroup sums to zero, so the cohort sums to
    zero, and the aggregate is bit-identical to any flat sum-zero
    construction — the parity gate is the aggregate, not the mask
    stream.  What changes is the resident state: instead of O(n·k) mask
    words the service holds one 32-byte seed per subgroup and
    re-expands a subgroup's :class:`SumZeroMasks` only when a slot in it
    is provisioned or repaired.  A small LRU keeps the hot subgroup
    warm, so §3 dropout repair touches O(g) mask words, never O(n).
    """

    #: Materialized subgroups kept warm per family.
    CACHE_GROUPS = 4

    def __init__(self, plan, seeds: tuple[bytes, ...], length: int, modulus_bits: int) -> None:
        if len(seeds) != plan.num_groups:
            raise ConfigurationError("one seed per subgroup required")
        self.plan = plan
        self.seeds = seeds
        self.length = length
        self.modulus_bits = modulus_bits
        self._cache: dict[int, SumZeroMasks] = {}

    @classmethod
    def sample(
        cls, plan, length: int, rng: HmacDrbg, modulus_bits: int = 64
    ) -> "GroupedSumZeroMasks":
        """Draw one independent seed per subgroup from the round's DRBG."""
        if length < 1:
            raise ConfigurationError("mask length must be positive")
        seeds = tuple(rng.generate(32) for _ in range(plan.num_groups))
        return cls(plan, seeds, length, modulus_bits)

    @property
    def num_parties(self) -> int:
        return self.plan.num_slots

    def group_family(self, group: int) -> SumZeroMasks:
        """Materialize (or fetch cached) one subgroup's sum-zero family."""
        family = self._cache.get(group)
        if family is None:
            family = SumZeroMasks.sample(
                len(self.plan.slots_in(group)),
                self.length,
                HmacDrbg(self.seeds[group], personalization="subgroup-masks"),
                modulus_bits=self.modulus_bits,
            )
            if len(self._cache) >= self.CACHE_GROUPS:
                self._cache.pop(next(iter(self._cache)))
            self._cache[group] = family
        return family

    def mask_for(self, party_index: int) -> tuple[int, ...]:
        group = self.plan.group_of(party_index)
        local = self.plan.local_index(party_index)
        return self.group_family(group).mask_for(local)

    @property
    def masks(self) -> tuple[tuple[int, ...], ...]:
        """All masks in slot order (commitment/sealing path; O(n·k)).

        The engine-scale verifiable-blinding path still commits to every
        slot's mask, which requires the full family once at round open;
        the memory-bounded streaming path never calls this.
        """
        rows: list[tuple[int, ...] | None] = [None] * self.plan.num_slots
        for group in range(self.plan.num_groups):
            family = SumZeroMasks.sample(
                len(self.plan.slots_in(group)),
                self.length,
                HmacDrbg(self.seeds[group], personalization="subgroup-masks"),
                modulus_bits=self.modulus_bits,
            )
            for local, slot in enumerate(self.plan.slots_in(group)):
                rows[slot] = family.mask_for(local)
        return tuple(rows)  # type: ignore[arg-type]

    def verify_sum_zero(self) -> bool:
        """Each subgroup independently sums to zero (hence so does the whole)."""
        for group in range(self.plan.num_groups):
            if not self.group_family(group).verify_sum_zero():
                return False
        return True


def apply_mask(
    encoded: Sequence[int], mask: Sequence[int], modulus_bits: int = 64
) -> list[int]:
    """Blind an encoded contribution: ``y_i = x_i + p_i`` in the ring."""
    if len(encoded) != len(mask):
        raise ConfigurationError("mask length does not match vector length")
    return kernels.ring_add(encoded, mask, modulus_bits).tolist()


def remove_mask(
    blinded: Sequence[int], mask: Sequence[int], modulus_bits: int = 64
) -> list[int]:
    """Inverse of :func:`apply_mask` (used for dropout repair and tests)."""
    if len(blinded) != len(mask):
        raise ConfigurationError("mask length does not match vector length")
    return kernels.ring_sub(blinded, mask, modulus_bits).tolist()


@dataclass(frozen=True)
class EncryptedMask:
    """A mask encrypted to one client's key, tagged with the round it belongs to."""

    party_index: int
    round_id: int
    box: SealedBox


class BlindingService:
    """The trusted blinding service of §3.

    For each aggregation round it samples a fresh :class:`SumZeroMasks`
    family and encrypts mask ``i`` under client ``i``'s symmetric key (in
    the full system this key comes from an attested DH exchange with the
    client's Glimmer; see :mod:`repro.core.provisioning`).

    The service never learns contributions — it only produces masks — which
    is why the paper can afford to centralize it.
    """

    def __init__(
        self,
        rng: HmacDrbg,
        codec: FixedPointCodec | None = None,
    ) -> None:
        self._rng = rng
        self._codec = codec or FixedPointCodec()
        self._round_masks: dict[int, SumZeroMasks] = {}

    @property
    def codec(self) -> FixedPointCodec:
        return self._codec

    def open_round(self, round_id: int, num_parties: int, length: int) -> SumZeroMasks:
        """Sample the mask family for a round (idempotent per round id)."""
        if round_id in self._round_masks:
            raise CryptoError(f"round {round_id} already opened")
        masks = SumZeroMasks.sample(
            num_parties, length, self._rng.fork(f"round-{round_id}"),
            modulus_bits=self._codec.modulus_bits,
        )
        self._round_masks[round_id] = masks
        return masks

    def open_round_grouped(
        self, round_id: int, num_parties: int, length: int, subgroup_size: int
    ) -> GroupedSumZeroMasks:
        """Open a round with per-subgroup sum-zero families (hierarchical path).

        Mask state is O(subgroups) seeds instead of O(n·k) words; every
        later ``mask_for``/``mask_for_dropout`` touches one subgroup's
        O(g·k) family.  The flat :meth:`open_round` DRBG stream is
        untouched — grouped rounds fork a distinct label, so enabling
        subgrouping for one round never shifts another round's masks.
        """
        if round_id in self._round_masks:
            raise CryptoError(f"round {round_id} already opened")
        from repro.scale.subgroup import plan_subgroups

        plan = plan_subgroups(round_id, num_parties, subgroup_size)
        masks = GroupedSumZeroMasks.sample(
            plan, length, self._rng.fork(f"round-grouped-{round_id}"),
            modulus_bits=self._codec.modulus_bits,
        )
        self._round_masks[round_id] = masks
        return masks

    def has_round(self, round_id: int) -> bool:
        return round_id in self._round_masks

    def restore_round(self, round_id: int, masks: SumZeroMasks) -> None:
        """Reinstate a round's mask family from durable (sealed) storage.

        A blinding service restarted mid-round must still be able to
        reveal dropout masks for §3 repair — this is the recovery half of
        that story; :class:`repro.core.provisioning.BlinderProvisioner`
        owns the sealing half.  Restoring a round that is already live
        with *different* masks is refused: that would split the sum-zero
        family and silently corrupt the aggregate.
        """
        existing = self._round_masks.get(round_id)
        if existing is not None:
            if existing != masks:
                raise CryptoError(
                    f"round {round_id} already open with different masks"
                )
            return
        if not masks.verify_sum_zero():
            raise CryptoError(f"restored masks for round {round_id} do not sum to zero")
        self._round_masks[round_id] = masks

    def encrypted_mask(
        self, round_id: int, party_index: int, client_key: bytes
    ) -> EncryptedMask:
        """Encrypt party ``i``'s mask under its key, bound to the round id."""
        masks = self._round_masks.get(round_id)
        if masks is None:
            raise CryptoError(f"round {round_id} not opened")
        mask = masks.mask_for(party_index)
        payload = kernels.be_words_to_bytes(mask)
        cipher = AuthenticatedCipher(client_key)
        nonce = self._rng.generate(16)
        associated = round_id.to_bytes(8, "big") + party_index.to_bytes(4, "big")
        return EncryptedMask(
            party_index=party_index,
            round_id=round_id,
            box=cipher.encrypt(nonce, payload, associated_data=associated),
        )

    @staticmethod
    def decrypt_mask(encrypted: EncryptedMask, client_key: bytes) -> tuple[int, ...]:
        """Client-side decryption; raises on tampering or round/party mismatch."""
        cipher = AuthenticatedCipher(client_key)
        associated = encrypted.round_id.to_bytes(8, "big") + encrypted.party_index.to_bytes(
            4, "big"
        )
        payload = cipher.decrypt(encrypted.box, associated_data=associated)
        if len(payload) % 8 != 0:
            raise CryptoError("mask payload has invalid length")
        return kernels.bytes_to_be_words(payload)

    def mask_for(self, round_id: int, party_index: int) -> tuple[int, ...]:
        """The raw mask for one party in one round (provisioning-side view)."""
        masks = self._round_masks.get(round_id)
        if masks is None:
            raise CryptoError(f"round {round_id} not opened")
        return masks.mask_for(party_index)

    def mask_for_dropout(self, round_id: int, party_index: int) -> tuple[int, ...]:
        """Reveal a dropped-out party's mask so the round sum stays exact.

        With the §3 scheme, if client ``i`` never submits, the service's sum
        is off by ``p_i`` (because Σp = 0); the blinding service can
        disclose just that mask (learning nothing about submitted
        contributions) to repair the round.
        """
        return self.mask_for(round_id, party_index)
