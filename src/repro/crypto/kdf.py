"""HKDF (RFC 5869) key derivation over HMAC-SHA256.

Used everywhere a protocol turns a shared secret into working keys: the
attested Diffie-Hellman channels of §4.1/§4.2, sealing keys in the SGX
simulator, and per-pair mask seeds in secure aggregation.
"""

from __future__ import annotations

import hmac
import hashlib

_HASH_LEN = 32


def hkdf_extract(salt: bytes, input_key_material: bytes) -> bytes:
    """HKDF-Extract: concentrate entropy into a pseudorandom key."""
    if not salt:
        salt = b"\x00" * _HASH_LEN
    return hmac.new(salt, input_key_material, hashlib.sha256).digest()


def hkdf_expand(pseudorandom_key: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand: stretch a pseudorandom key to ``length`` bytes."""
    if length < 0:
        raise ValueError("length must be non-negative")
    if length > 255 * _HASH_LEN:
        raise ValueError("HKDF output length limit exceeded")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac.new(
            pseudorandom_key, previous + info + bytes([counter]), hashlib.sha256
        ).digest()
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf(input_key_material: bytes, info: str, length: int = 32, salt: bytes = b"") -> bytes:
    """One-shot HKDF with a string ``info`` label for readability at call sites."""
    prk = hkdf_extract(salt, input_key_material)
    return hkdf_expand(prk, info.encode("utf-8"), length)
