"""Fixed-point encoding of real-valued model vectors into a modular ring.

Blinding (§3) operates on integers modulo ``2^64``: masks cancel exactly only
in modular arithmetic.  Model weights are floats, so every protocol in this
library encodes them as scaled integers first.  The codec is exact for the
quantization it advertises and round-trips any value within its range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.perf import kernels

DEFAULT_MODULUS_BITS = 64

#: Largest integer magnitude exactly representable in a float64.  The
#: vectorized encode/decode paths are used only when every intermediate
#: stays at or below this, which makes the float arithmetic bit-exact
#: against the scalar ``round``/true-division reference; otherwise the
#: codec falls back to the scalar loop.
_EXACT_FLOAT_BOUND = 1 << 53


@dataclass(frozen=True)
class FixedPointCodec:
    """Encode floats in ``[-bound, bound]`` as integers mod ``2^modulus_bits``.

    Parameters
    ----------
    scale:
        Quantization factor: an encoded value represents ``round(x * scale)``.
    bound:
        Largest representable magnitude *after aggregation*.  Choose
        ``bound >= max_clients * per_client_bound`` so sums never wrap.
    modulus_bits:
        Ring size.  The codec refuses configurations where ``bound * scale``
        does not fit in half the ring (positive/negative halves).
    """

    scale: int = 1 << 16
    bound: float = 1 << 20
    modulus_bits: int = DEFAULT_MODULUS_BITS

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigurationError("scale must be positive")
        if self.bound <= 0:
            raise ConfigurationError("bound must be positive")
        if self.bound * self.scale >= self.modulus() // 2:
            raise ConfigurationError(
                "bound * scale must fit in half the ring to preserve signs"
            )

    def modulus(self) -> int:
        return 1 << self.modulus_bits

    def encode_value(self, value: float) -> int:
        if not -self.bound <= value <= self.bound:
            raise ConfigurationError(
                f"value {value!r} outside codec bound ±{self.bound}"
            )
        return round(value * self.scale) % self.modulus()

    def decode_value(self, encoded: int) -> float:
        modulus = self.modulus()
        encoded %= modulus
        if encoded >= modulus // 2:  # negative half
            encoded -= modulus
        return encoded / self.scale

    def _batch_exact(self) -> bool:
        """Whether float64 round-trips are provably exact for this codec."""
        return (
            self.bound * self.scale <= _EXACT_FLOAT_BOUND
            and self.scale <= _EXACT_FLOAT_BOUND
        )

    def encode(self, values: Sequence[float]) -> list[int]:
        """Encode a float vector; raises if any entry exceeds the bound.

        Batch path: one ``np.rint`` pass (round-half-even, matching
        Python's ``round``) over the whole vector, exact because the gated
        magnitudes fit a float64 mantissa.  Codecs scaled beyond that
        range take the scalar loop.
        """
        if not self._batch_exact():
            return [self.encode_value(float(v)) for v in values]
        array = np.asarray(values, dtype=np.float64)
        in_bound = (array >= -self.bound) & (array <= self.bound)
        if not in_bound.all():
            offender = float(array[~in_bound][0])
            raise ConfigurationError(
                f"value {offender!r} outside codec bound ±{self.bound}"
            )
        scaled = np.rint(array * self.scale).astype(np.int64)
        ring = kernels.ring_reduce(scaled.view(np.uint64), self.modulus_bits)
        return ring.tolist()

    def decode(self, encoded: Sequence[int]) -> np.ndarray:
        """Decode a ring vector back to floats."""
        arr = kernels.as_ring(encoded, self.modulus_bits)
        if self.modulus_bits == 64:
            centered = arr.view(np.int64)
        else:
            # (x + half) mod 2^mb - half recenters into [-half, half) without
            # ever materializing 2^mb (which can overflow int64 at mb=63).
            half = 1 << (self.modulus_bits - 1)
            shifted = kernels.ring_reduce(arr + np.uint64(half), self.modulus_bits)
            centered = shifted.astype(np.int64) - np.int64(half)
        if (
            self.scale <= _EXACT_FLOAT_BOUND
            and np.abs(centered).max(initial=0) <= _EXACT_FLOAT_BOUND
        ):
            return centered.astype(np.float64) / self.scale
        return np.array([self.decode_value(int(e)) for e in encoded], dtype=float)

    def add(self, left: Sequence[int], right: Sequence[int]) -> list[int]:
        """Component-wise ring addition (what the service does with blinded vectors)."""
        if len(left) != len(right):
            raise ConfigurationError("vector length mismatch")
        return kernels.ring_add(left, right, self.modulus_bits).tolist()

    def sum_vectors(self, vectors: Sequence[Sequence[int]]) -> list[int]:
        """Ring sum of many encoded vectors — one column-wise numpy pass."""
        if not vectors:
            raise ConfigurationError("no vectors to sum")
        length = len(vectors[0])
        for vector in vectors:
            if len(vector) != length:
                raise ConfigurationError("vector length mismatch")
        return kernels.ring_sum_rows(vectors, self.modulus_bits).tolist()
