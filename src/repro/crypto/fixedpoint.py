"""Fixed-point encoding of real-valued model vectors into a modular ring.

Blinding (§3) operates on integers modulo ``2^64``: masks cancel exactly only
in modular arithmetic.  Model weights are floats, so every protocol in this
library encodes them as scaled integers first.  The codec is exact for the
quantization it advertises and round-trips any value within its range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

DEFAULT_MODULUS_BITS = 64


@dataclass(frozen=True)
class FixedPointCodec:
    """Encode floats in ``[-bound, bound]`` as integers mod ``2^modulus_bits``.

    Parameters
    ----------
    scale:
        Quantization factor: an encoded value represents ``round(x * scale)``.
    bound:
        Largest representable magnitude *after aggregation*.  Choose
        ``bound >= max_clients * per_client_bound`` so sums never wrap.
    modulus_bits:
        Ring size.  The codec refuses configurations where ``bound * scale``
        does not fit in half the ring (positive/negative halves).
    """

    scale: int = 1 << 16
    bound: float = 1 << 20
    modulus_bits: int = DEFAULT_MODULUS_BITS

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigurationError("scale must be positive")
        if self.bound <= 0:
            raise ConfigurationError("bound must be positive")
        if self.bound * self.scale >= self.modulus() // 2:
            raise ConfigurationError(
                "bound * scale must fit in half the ring to preserve signs"
            )

    def modulus(self) -> int:
        return 1 << self.modulus_bits

    def encode_value(self, value: float) -> int:
        if not -self.bound <= value <= self.bound:
            raise ConfigurationError(
                f"value {value!r} outside codec bound ±{self.bound}"
            )
        return round(value * self.scale) % self.modulus()

    def decode_value(self, encoded: int) -> float:
        modulus = self.modulus()
        encoded %= modulus
        if encoded >= modulus // 2:  # negative half
            encoded -= modulus
        return encoded / self.scale

    def encode(self, values: Sequence[float]) -> list[int]:
        """Encode a float vector; raises if any entry exceeds the bound."""
        return [self.encode_value(float(v)) for v in values]

    def decode(self, encoded: Sequence[int]) -> np.ndarray:
        """Decode a ring vector back to floats."""
        return np.array([self.decode_value(int(e)) for e in encoded], dtype=float)

    def add(self, left: Sequence[int], right: Sequence[int]) -> list[int]:
        """Component-wise ring addition (what the service does with blinded vectors)."""
        if len(left) != len(right):
            raise ConfigurationError("vector length mismatch")
        modulus = self.modulus()
        return [(a + b) % modulus for a, b in zip(left, right)]

    def sum_vectors(self, vectors: Sequence[Sequence[int]]) -> list[int]:
        """Ring sum of many encoded vectors."""
        if not vectors:
            raise ConfigurationError("no vectors to sum")
        length = len(vectors[0])
        modulus = self.modulus()
        total = [0] * length
        for vector in vectors:
            if len(vector) != length:
                raise ConfigurationError("vector length mismatch")
            for i, value in enumerate(vector):
                total[i] = (total[i] + value) % modulus
        return total
