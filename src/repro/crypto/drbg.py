"""HMAC-DRBG (NIST SP 800-90A style) deterministic random bit generator.

All randomness in the simulator flows through :class:`HmacDrbg` so that
experiments are reproducible bit-for-bit from a seed.  The construction is
the standard HMAC-SHA256 DRBG: an internal ``(K, V)`` state updated on every
generate and reseed.
"""

from __future__ import annotations

import hashlib
import hmac
import math

import numpy as np

_DIGEST = hashlib.sha256
_OUTLEN = 32


class HmacDrbg:
    """Deterministic random bit generator keyed by a seed and a personalization string.

    Parameters
    ----------
    seed:
        Entropy input.  Equal seeds plus equal personalization yield equal
        output streams.
    personalization:
        Domain-separation string; two DRBGs with the same seed but different
        personalization produce independent-looking streams.
    """

    def __init__(self, seed: bytes, personalization: str = "") -> None:
        if not isinstance(seed, (bytes, bytearray)):
            raise TypeError("seed must be bytes")
        self._key = b"\x00" * _OUTLEN
        self._value = b"\x01" * _OUTLEN
        self._update(bytes(seed) + personalization.encode("utf-8"))
        self.reseed_counter = 1

    def _hmac(self, key: bytes, data: bytes) -> bytes:
        return hmac.new(key, data, _DIGEST).digest()

    def _update(self, provided: bytes = b"") -> None:
        self._key = self._hmac(self._key, self._value + b"\x00" + provided)
        self._value = self._hmac(self._key, self._value)
        if provided:
            self._key = self._hmac(self._key, self._value + b"\x01" + provided)
            self._value = self._hmac(self._key, self._value)

    def reseed(self, entropy: bytes) -> None:
        """Mix fresh entropy into the state."""
        self._update(entropy)
        self.reseed_counter = 1

    def generate(self, num_bytes: int) -> bytes:
        """Return ``num_bytes`` pseudorandom bytes and advance the state."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        out = bytearray()
        while len(out) < num_bytes:
            self._value = self._hmac(self._key, self._value)
            out.extend(self._value)
        self._update()
        self.reseed_counter += 1
        return bytes(out[:num_bytes])

    def generate_block(self, num_bytes: int) -> bytes:
        """Bulk form of :meth:`generate`: same byte stream, one keyed pass.

        Emits exactly the bytes :meth:`generate` would for the same state
        (pinned by golden-value tests), but reuses a single keyed HMAC
        object across the ``num_bytes / 32`` output blocks instead of
        re-running the key schedule per block — the difference between
        per-element and memory-bandwidth mask expansion.
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        keyed = hmac.new(self._key, digestmod=_DIGEST)
        value = self._value
        blocks: list[bytes] = []
        produced = 0
        while produced < num_bytes:
            block = keyed.copy()
            block.update(value)
            value = block.digest()
            blocks.append(value)
            produced += _OUTLEN
        self._value = value
        self._update()
        self.reseed_counter += 1
        return b"".join(blocks)[:num_bytes]

    def uint64_vector(self, length: int) -> np.ndarray:
        """``length`` uniform 64-bit ring words as a ``np.uint64`` array.

        One HMAC stream pass: the words are the big-endian parse of
        ``generate_block(8 * length)``, so a scalar caller doing
        ``int.from_bytes`` over the same stream reproduces them exactly
        (the parity contract the mask kernels rely on).
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        data = self.generate_block(8 * length)
        return np.frombuffer(data, dtype=">u8").astype(np.uint64)

    def randint(self, upper: int) -> int:
        """Uniform integer in ``[0, upper)`` via rejection sampling.

        ``nbits`` is the bit length of ``upper - 1``: for a power-of-two
        ``upper`` the masked candidate is always in range, so exactly one
        ``generate`` call is consumed — no rejection loop (tested as the
        no-rejection fast path; :meth:`uniform` and 64-bit ring sampling
        depend on it).  For any other ``upper`` the bit lengths of
        ``upper`` and ``upper - 1`` coincide, the candidate is rejected
        with probability below one half, and the loop retries — unbiased
        by construction, identical stream to the historical behavior.
        """
        if upper <= 0:
            raise ValueError("upper must be positive")
        nbits = (upper - 1).bit_length()
        nbytes = (nbits + 7) // 8
        mask = (1 << nbits) - 1
        while True:
            candidate = int.from_bytes(self.generate(nbytes), "big") & mask
            if candidate < upper:
                return candidate

    def randrange(self, lower: int, upper: int) -> int:
        """Uniform integer in ``[lower, upper)``."""
        if upper <= lower:
            raise ValueError("empty range")
        return lower + self.randint(upper - lower)

    def uniform(self) -> float:
        """Uniform float in ``[0, 1)`` with 53 bits of precision.

        ``2^53`` is a power of two, so :meth:`randint` takes its
        no-rejection fast path: every call consumes exactly one 7-byte
        generate, and the result is an exact dyadic rational ``k / 2^53``
        — there is no modulo bias to correct for.
        """
        return self.randint(1 << 53) / float(1 << 53)

    def gauss(self, mean: float = 0.0, sigma: float = 1.0) -> float:
        """Gaussian sample via Box-Muller (deterministic, like everything here)."""
        u1 = self.uniform()
        while u1 == 0.0:
            u1 = self.uniform()
        u2 = self.uniform()
        return mean + sigma * math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)

    def choice(self, seq):
        """Uniformly pick one element of a non-empty sequence."""
        if not seq:
            raise ValueError("cannot choose from an empty sequence")
        return seq[self.randint(len(seq))]

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle driven by this DRBG."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(i + 1)
            items[i], items[j] = items[j], items[i]

    def fork(self, label: str) -> "HmacDrbg":
        """Derive an independent child DRBG.

        Forking lets one experiment seed spawn per-client, per-round
        generators without the streams overlapping.
        """
        return HmacDrbg(self.generate(_OUTLEN), personalization="fork:" + label)
