"""Authenticated encryption built from HMAC-SHA256.

The cipher is encrypt-then-MAC over a counter-mode keystream:

* keystream block ``i`` = ``HMAC(K_enc, nonce || i)``
* tag = ``HMAC(K_mac, nonce || associated_data_framing || ciphertext)``

Encryption and MAC keys are derived from the caller's key with HKDF, so a
single 32-byte key is all protocols carry around.  The construction is a
standard, provable AE composition; what makes it simulation-grade is the key
sizes elsewhere in the library, not this module.
"""

from __future__ import annotations

import hmac
import hashlib
from dataclasses import dataclass

from repro.crypto.kdf import hkdf
from repro.errors import AuthenticationError, CryptoError

NONCE_SIZE = 16
TAG_SIZE = 32
_BLOCK = 32


@dataclass(frozen=True)
class SealedBox:
    """An authenticated ciphertext: nonce, ciphertext, and tag."""

    nonce: bytes
    ciphertext: bytes
    tag: bytes

    def to_bytes(self) -> bytes:
        """Serialize for transport: nonce || tag || ciphertext."""
        return self.nonce + self.tag + self.ciphertext

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SealedBox":
        if len(blob) < NONCE_SIZE + TAG_SIZE:
            raise CryptoError("sealed box too short")
        return cls(
            nonce=blob[:NONCE_SIZE],
            tag=blob[NONCE_SIZE : NONCE_SIZE + TAG_SIZE],
            ciphertext=blob[NONCE_SIZE + TAG_SIZE :],
        )


class AuthenticatedCipher:
    """Symmetric authenticated encryption under a single 32-byte key.

    The caller supplies nonces (the simulator's DRBGs generate them), which
    keeps the cipher deterministic and testable.  A nonce must never repeat
    under one key; protocols in this library use per-message counters or
    DRBG output.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) < 16:
            raise CryptoError("key must be at least 16 bytes")
        self._enc_key = hkdf(key, "ae-encryption-key")
        self._mac_key = hkdf(key, "ae-mac-key")

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        blocks = []
        for i in range((length + _BLOCK - 1) // _BLOCK):
            blocks.append(
                hmac.new(
                    self._enc_key, nonce + i.to_bytes(8, "big"), hashlib.sha256
                ).digest()
            )
        return b"".join(blocks)[:length]

    def _tag(self, nonce: bytes, associated_data: bytes, ciphertext: bytes) -> bytes:
        framing = (
            nonce
            + len(associated_data).to_bytes(8, "big")
            + associated_data
            + ciphertext
        )
        return hmac.new(self._mac_key, framing, hashlib.sha256).digest()

    def encrypt(self, nonce: bytes, plaintext: bytes, associated_data: bytes = b"") -> SealedBox:
        """Encrypt and authenticate ``plaintext`` (and bind ``associated_data``)."""
        if len(nonce) != NONCE_SIZE:
            raise CryptoError(f"nonce must be {NONCE_SIZE} bytes")
        stream = self._keystream(nonce, len(plaintext))
        ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
        return SealedBox(nonce, ciphertext, self._tag(nonce, associated_data, ciphertext))

    def decrypt(self, box: SealedBox, associated_data: bytes = b"") -> bytes:
        """Verify the tag and return the plaintext; raise on any tampering."""
        expected = self._tag(box.nonce, associated_data, box.ciphertext)
        if not hmac.compare_digest(expected, box.tag):
            raise AuthenticationError("ciphertext authentication failed")
        stream = self._keystream(box.nonce, len(box.ciphertext))
        return bytes(c ^ s for c, s in zip(box.ciphertext, stream))
