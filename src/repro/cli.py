"""Command-line interface: run experiments and inspect the deployment.

Usage (also available as ``python -m repro``)::

    python -m repro list                     # experiment index
    python -m repro run e4                   # run one experiment, print its table
    python -m repro run all                  # run every registered experiment
    python -m repro run e4 --json            # machine-readable table output
    python -m repro demo                     # the quickstart narrative

Experiment parameter overrides are passed as ``key=value`` pairs and parsed
with :func:`ast.literal_eval`, e.g.::

    python -m repro run e4 num_users=12 "magnitudes=(538.0,)"

The benchmark-regression harness lives under ``bench``::

    python -m repro bench                    # full run, compare vs newest BENCH_*.json
    python -m repro bench --quick            # CI smoke: small sizes, short timings
    python -m repro bench --json             # machine-readable comparison
    python -m repro bench --threshold 0.1    # fail if any metric loses >10%
    python -m repro bench --workers 2        # also time the parallel pipeline

``bench`` exits 1 when any tracked metric regresses beyond the threshold
against the baseline snapshot.

The long-lived service runs under ``serve``/``submit``::

    python -m repro submit --state-dir ./state --tenant a --user user-0000
    python -m repro serve --state-dir ./state --tenants a,b --rounds 2
    python -m repro serve --state-dir ./state --tenants a,b --resume

``submit`` enqueues into the durable submission queue (admission control
applies: a full queue exits 3); ``serve`` drains queued submissions
through concurrent async rounds, one per tenant at a time, and ``--resume``
first finishes any round a previous process left open in the journal.
Both commands default to the ``disk`` backend so separate invocations
share state through ``--state-dir``.

Robustness tooling::

    python -m repro serve --state-dir ./state --chaos-seed demo-1
    python -m repro audit-verify --state-dir ./state
    python -m repro audit-verify --state-dir ./state --repair

``serve --chaos-seed`` drains the queue under a deterministic storage
fault plan with hard kill-points, restarting the service from persisted
state after every incident — a command-line miniature of the chaos
suite's exact-or-recovered harness.  ``audit-verify`` exits 1 on any
tamper/truncation of the hash-chained audit log and, with ``--repair``,
quarantines the broken history and re-anchors the chain.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path

from repro.experiments.registry import EXPERIMENTS, run_experiment


def _parse_overrides(pairs: list[str]) -> dict:
    overrides = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"override {pair!r} is not key=value")
        key, raw = pair.split("=", 1)
        try:
            overrides[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            overrides[key] = raw  # plain string value
    return overrides


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(eid) for eid in EXPERIMENTS)
    for experiment_id, (title, module) in EXPERIMENTS.items():
        print(f"{experiment_id.ljust(width)}  {title}  [{module}]")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    targets = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    overrides = _parse_overrides(args.overrides)
    if args.seed:
        # An explicit seed=... override still beats the flag.
        overrides.setdefault("seed", args.seed.encode("utf-8"))
    status = 0
    for experiment_id in targets:
        if experiment_id not in EXPERIMENTS:
            print(f"unknown experiment {experiment_id!r}; try 'list'", file=sys.stderr)
            return 2
        try:
            result = run_experiment(experiment_id, **overrides)
            table = result.table()
            rendered = table.to_json(indent=2) if args.json else table.render()
        except Exception as exc:
            # Rendering failures count too: a consumer of --json output must
            # never see exit 0 alongside a missing or truncated table.
            if args.json:
                print(json.dumps({"experiment": experiment_id, "error": str(exc)}))
            print(f"{experiment_id} failed: {exc}", file=sys.stderr)
            status = 1
            continue
        print(rendered)
        print()
    return status


def _cmd_demo(_args: argparse.Namespace) -> int:
    """A self-contained miniature of examples/quickstart.py."""
    import numpy as np

    from repro.experiments.common import Deployment
    from repro.runtime.telemetry import OUTCOME_VALIDATION_REJECTED

    deployment = Deployment.build(num_users=4, seed=b"cli-demo")
    user_ids = [user.user_id for user in deployment.corpus.users]
    vectors = deployment.local_vectors()
    aggregate = deployment.honest_round(1)
    truth = np.mean(np.stack([vectors[u] for u in user_ids]), axis=0)
    print(f"blinded round of {len(user_ids)} clients over the message bus: "
          f"aggregate max error {float(np.max(np.abs(aggregate - truth))):.2e}")
    report = deployment.last_report
    print(f"  telemetry: {report.messages_sent} messages, "
          f"{report.bytes_on_wire} bytes, {report.latency_ms:.1f} ms simulated, "
          f"{report.ecalls} ecalls")
    engine = deployment.engine
    engine.open_round(2, 1, len(deployment.features))
    engine.provision_mask(user_ids[0], 2, 0)
    outcome = engine.contribute(
        user_ids[0],
        2,
        [538.0] + [0.0] * (len(deployment.features) - 1),
        deployment.features.bigrams,
    )
    if outcome == OUTCOME_VALIDATION_REJECTED:
        print("and the 538 attack is stopped in-enclave: validation-rejected")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf import bench

    if not 0.0 < args.threshold < 1.0:
        print("--threshold must be in (0, 1)", file=sys.stderr)
        return 2
    if args.workers < 0:
        print("--workers must be >= 0", file=sys.stderr)
        return 2
    return bench.main(
        out_dir=Path(args.out_dir),
        quick=args.quick,
        baseline=Path(args.baseline) if args.baseline else None,
        threshold=args.threshold,
        as_json=args.json,
        write=not args.no_write,
        workers=args.workers,
        chaos=args.chaos,
        fleet=args.fleet,
    )


def _cmd_stream_smoke(args: argparse.Namespace) -> int:
    from repro.perf import stream_smoke

    if args.users < 1 or args.length < 1 or args.subgroup_size < 1:
        print(
            "--users, --length, and --subgroup-size must be >= 1",
            file=sys.stderr,
        )
        return 2
    return stream_smoke.main(
        args.users,
        length=args.length,
        subgroup_size=args.subgroup_size,
        max_rss_kb=args.max_rss_kb,
        as_json=args.json,
    )


def _service_for(args: argparse.Namespace):
    """Build (or recover) a GlimmerService over the chosen backend."""
    from repro.service import GlimmerService, build_backend

    backend = build_backend(args.backend, args.state_dir)
    if backend.get("service", "config") is not None:
        service = GlimmerService.recover(backend)
    else:
        service = GlimmerService(
            backend,
            base_seed=args.seed.encode("utf-8"),
            num_users=args.users,
            queue_capacity=args.queue_capacity,
            overflow=args.overflow,
        )
    return service


def _cmd_serve_chaos(args: argparse.Namespace) -> int:
    """Self-healing serve: faulty storage + kill-points, restart on death."""
    from repro.crypto.drbg import HmacDrbg
    from repro.errors import (
        ConfigurationError,
        ServiceKilledError,
        StorageError,
    )
    from repro.faults import (
        FaultInjector,
        FaultyStorageBackend,
        sample_service_plan,
    )
    from repro.service import GlimmerService, build_backend

    seed = args.chaos_seed.encode("utf-8")
    plan = sample_service_plan(
        HmacDrbg(seed, personalization="service-plan"),
        args.fault_rate,
        label=args.chaos_seed,
    )
    injector = FaultInjector(plan, seed=seed)
    tenants = [t for t in args.tenants.split(",") if t]
    restarts = 0
    while True:
        backend = FaultyStorageBackend(
            build_backend(args.backend, args.state_dir), injector
        )
        try:
            try:
                service = GlimmerService.recover(backend)
            except ConfigurationError:
                service = GlimmerService(
                    backend,
                    base_seed=args.seed.encode("utf-8"),
                    num_users=args.users,
                    queue_capacity=args.queue_capacity,
                    overflow=args.overflow,
                )
            service.attach_chaos(injector)
            for name in tenants:
                if name not in service.tenants:
                    service.add_tenant(name)
            for report in service.resume_sync():
                print(
                    f"recovered round {report.round_id}: "
                    f"{report.num_contributions} contributions"
                )
            for _ in range(args.rounds):
                reports = service.run_pending_sync(limit=args.batch)
                if not reports:
                    break
                for report in reports:
                    print(
                        f"round {report.round_id}: "
                        f"{report.num_contributions} contributions"
                    )
            repair = service.audit.verify_and_repair()
            print(
                f"chaos schedule {plan.label!r}: {restarts} restart(s), "
                f"{len(injector.fired_log())} fault(s) fired, audit "
                + ("repaired" if repair["repaired"] else "intact")
            )
            service.close()
            return 0
        except (ServiceKilledError, StorageError) as exc:
            restarts += 1
            print(
                f"incident: {type(exc).__name__}: {exc} -- "
                f"restarting from persisted state ({restarts})"
            )
            if restarts > args.max_restarts:
                print("giving up: max restarts exceeded", file=sys.stderr)
                return 1


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.chaos_seed:
        return _cmd_serve_chaos(args)
    with _service_for(args) as service:
        for name in [t for t in args.tenants.split(",") if t]:
            if name not in service.tenants:
                service.add_tenant(name)
        if args.resume:
            for report in service.resume_sync():
                print(
                    f"resumed round {report.round_id}: "
                    f"{report.num_contributions} contributions"
                )
        for _ in range(args.rounds):
            reports = service.run_pending_sync(limit=args.batch)
            if not reports:
                print("no pending submissions; queue drained")
                break
            for report in reports:
                print(
                    f"round {report.round_id}: "
                    f"{report.num_contributions} contributions, "
                    f"{report.masks_repaired} repaired, "
                    f"{report.latency_ms:.1f} ms simulated"
                )
        for name, runtime in sorted(service.tenants.items()):
            print(f"tenant {name}: queue depth {runtime.queue.depth()}")
        print(f"audit chain verified: {service.audit.verify_chain()} entries")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.errors import AdmissionError, ConfigurationError

    with _service_for(args) as service:
        if args.tenant not in service.tenants:
            service.add_tenant(args.tenant)
        try:
            if args.values:
                values = [float(v) for v in args.values.split(",")]
                submission_id = service.submit(args.tenant, args.user, values)
            else:
                submission_id = service.submit_honest(args.tenant, args.user)
        except AdmissionError as exc:
            print(f"rejected: {exc}", file=sys.stderr)
            return 3
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        state = service.tenant(args.tenant).queue.state_of(submission_id)
        print(f"admitted {submission_id} ({state})")
    return 0


def _cmd_audit_verify(args: argparse.Namespace) -> int:
    from repro.service import AuditLog, build_backend

    audit = AuditLog(build_backend(args.backend, args.state_dir))
    if args.repair:
        report = audit.verify_and_repair()
        if report["repaired"]:
            print(
                f"repaired: break at entry {report['break_index']}, "
                f"{report['quarantined']} entries quarantined, "
                f"{report['truncated_by']} lost from the tail"
            )
        if report["ok"]:
            print(f"audit chain verified: {audit.verify_chain()} entries")
            return 0
        print("audit chain unrepairable", file=sys.stderr)
        return 1
    try:
        count = audit.verify_chain()
    except ValueError as exc:
        print(f"audit chain broken: {exc}", file=sys.stderr)
        print("run 'repro audit-verify --repair' to quarantine and re-anchor")
        return 1
    print(f"audit chain verified: {count} entries")
    return 0


def _add_service_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--state-dir", default="./glimmer-state",
        help="service state directory (default ./glimmer-state)",
    )
    parser.add_argument(
        "--backend", default="disk", choices=("memory", "disk", "sqlite"),
        help="storage backend (default disk; memory forgets on exit)",
    )
    parser.add_argument(
        "--seed", default="glimmer-service",
        help="base seed for tenant deployments (first run only)",
    )
    parser.add_argument(
        "--users", type=int, default=6,
        help="clients per tenant deployment (first run only)",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=16,
        help="submission queue bound per tenant (first run only)",
    )
    parser.add_argument(
        "--overflow", default="reject", choices=("reject", "defer"),
        help="admission policy past the queue bound (first run only)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Glimmers (HotOS 2017) reproduction — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the experiment index").set_defaults(
        func=_cmd_list
    )

    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id, e.g. e4, or 'all'")
    run_parser.add_argument(
        "overrides", nargs="*", help="key=value parameter overrides"
    )
    run_parser.add_argument(
        "--json", action="store_true", help="print tables as JSON"
    )
    run_parser.add_argument(
        "--seed",
        help="deterministic seed threaded to every runner that accepts one",
    )
    run_parser.set_defaults(func=_cmd_run)

    sub.add_parser("demo", help="run the quickstart narrative").set_defaults(
        func=_cmd_demo
    )

    bench_parser = sub.add_parser(
        "bench", help="run kernel/round benchmarks and compare to the baseline"
    )
    bench_parser.add_argument(
        "--quick", action="store_true", help="small sizes and short timings (CI smoke)"
    )
    bench_parser.add_argument(
        "--out-dir", default=".", help="directory for BENCH_<date>.json (default: cwd)"
    )
    bench_parser.add_argument(
        "--baseline",
        help="explicit baseline snapshot (default: newest BENCH_*.json in --out-dir)",
    )
    bench_parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="fractional regression that fails the run (default 0.25)",
    )
    bench_parser.add_argument(
        "--json", action="store_true", help="machine-readable comparison output"
    )
    bench_parser.add_argument(
        "--no-write", action="store_true", help="measure and compare without writing"
    )
    bench_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="also time the parallel round pipeline with this many worker "
        "processes and record its speedup vs serial (default 0: serial only)",
    )
    bench_parser.add_argument(
        "--chaos",
        action="store_true",
        help="also run chaos schedules and record recovery telemetry in a "
        "non-gated 'robustness' snapshot section",
    )
    bench_parser.add_argument(
        "--fleet",
        action="store_true",
        help="also run degraded-link fleet schedules and record rounds "
        "recovered, time-to-settle, and re-attestations avoided in a "
        "non-gated 'fleet' snapshot section",
    )
    bench_parser.set_defaults(func=_cmd_bench)

    stream_parser = sub.add_parser(
        "stream-smoke",
        help="memory-bounded large-cohort streaming ingest round "
        "(hierarchical subgroup masks; exits 1 on inexact aggregate or "
        "blown RSS budget)",
    )
    stream_parser.add_argument(
        "--users", type=int, default=100_000, help="cohort size (default 100000)"
    )
    stream_parser.add_argument(
        "--length",
        type=int,
        default=64,
        help="contribution vector length in ring words (default 64)",
    )
    stream_parser.add_argument(
        "--subgroup-size",
        type=int,
        default=256,
        help="bounded subgroup size g (default 256)",
    )
    stream_parser.add_argument(
        "--max-rss-kb",
        type=int,
        default=None,
        help="fail (exit 1) if process peak RSS exceeds this many KiB",
    )
    stream_parser.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    stream_parser.set_defaults(func=_cmd_stream_smoke)

    serve_parser = sub.add_parser(
        "serve", help="drain queued submissions through concurrent async rounds"
    )
    _add_service_arguments(serve_parser)
    serve_parser.add_argument(
        "--tenants", default="tenant-a",
        help="comma-separated tenant names to ensure exist (default tenant-a)",
    )
    serve_parser.add_argument(
        "--rounds", type=int, default=1,
        help="how many rounds-per-tenant sweeps to run (default 1)",
    )
    serve_parser.add_argument(
        "--batch", type=int, default=None,
        help="max submissions per round (default: all pending, one per user)",
    )
    serve_parser.add_argument(
        "--resume", action="store_true",
        help="first finish rounds a previous process left open in the journal",
    )
    serve_parser.add_argument(
        "--chaos-seed",
        help="run the self-healing loop under a DRBG-scheduled fault plan "
        "seeded by this string (storage faults + kill-points; the service "
        "restarts from persisted state after every incident)",
    )
    serve_parser.add_argument(
        "--fault-rate", type=float, default=0.1,
        help="fault density for --chaos-seed schedules (default 0.1)",
    )
    serve_parser.add_argument(
        "--max-restarts", type=int, default=25,
        help="give up after this many chaos restarts (default 25)",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    submit_parser = sub.add_parser(
        "submit", help="enqueue one client submission into the durable queue"
    )
    _add_service_arguments(submit_parser)
    submit_parser.add_argument("--tenant", default="tenant-a")
    submit_parser.add_argument(
        "--user", required=True, help="client id, e.g. user-0000"
    )
    submit_parser.add_argument(
        "--values",
        help="comma-separated contribution values "
        "(default: the user's honestly trained vector)",
    )
    submit_parser.set_defaults(func=_cmd_submit)

    audit_parser = sub.add_parser(
        "audit-verify",
        help="verify the service audit chain; exits 1 on any break",
    )
    audit_parser.add_argument(
        "--state-dir", default="./glimmer-state",
        help="service state directory (default ./glimmer-state)",
    )
    audit_parser.add_argument(
        "--backend", default="disk", choices=("memory", "disk", "sqlite"),
        help="storage backend holding the audit log (default disk)",
    )
    audit_parser.add_argument(
        "--repair", action="store_true",
        help="quarantine broken history under an explicit repair record "
        "and re-anchor the chain; exits 0 once the chain verifies again",
    )
    audit_parser.set_defaults(func=_cmd_audit_verify)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
