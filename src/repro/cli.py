"""Command-line interface: run experiments and inspect the deployment.

Usage (also available as ``python -m repro``)::

    python -m repro list                     # experiment index
    python -m repro run e4                   # run one experiment, print its table
    python -m repro run all                  # run every registered experiment
    python -m repro run e4 --json            # machine-readable table output
    python -m repro demo                     # the quickstart narrative

Experiment parameter overrides are passed as ``key=value`` pairs and parsed
with :func:`ast.literal_eval`, e.g.::

    python -m repro run e4 num_users=12 "magnitudes=(538.0,)"
"""

from __future__ import annotations

import argparse
import ast
import json
import sys

from repro.experiments.registry import EXPERIMENTS, run_experiment


def _parse_overrides(pairs: list[str]) -> dict:
    overrides = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"override {pair!r} is not key=value")
        key, raw = pair.split("=", 1)
        try:
            overrides[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            overrides[key] = raw  # plain string value
    return overrides


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(eid) for eid in EXPERIMENTS)
    for experiment_id, (title, module) in EXPERIMENTS.items():
        print(f"{experiment_id.ljust(width)}  {title}  [{module}]")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    targets = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    overrides = _parse_overrides(args.overrides)
    if args.seed:
        # An explicit seed=... override still beats the flag.
        overrides.setdefault("seed", args.seed.encode("utf-8"))
    status = 0
    for experiment_id in targets:
        if experiment_id not in EXPERIMENTS:
            print(f"unknown experiment {experiment_id!r}; try 'list'", file=sys.stderr)
            return 2
        try:
            result = run_experiment(experiment_id, **overrides)
            table = result.table()
            rendered = table.to_json(indent=2) if args.json else table.render()
        except Exception as exc:
            # Rendering failures count too: a consumer of --json output must
            # never see exit 0 alongside a missing or truncated table.
            if args.json:
                print(json.dumps({"experiment": experiment_id, "error": str(exc)}))
            print(f"{experiment_id} failed: {exc}", file=sys.stderr)
            status = 1
            continue
        print(rendered)
        print()
    return status


def _cmd_demo(_args: argparse.Namespace) -> int:
    """A self-contained miniature of examples/quickstart.py."""
    import numpy as np

    from repro.experiments.common import Deployment
    from repro.runtime.telemetry import OUTCOME_VALIDATION_REJECTED

    deployment = Deployment.build(num_users=4, seed=b"cli-demo")
    user_ids = [user.user_id for user in deployment.corpus.users]
    vectors = deployment.local_vectors()
    aggregate = deployment.honest_round(1)
    truth = np.mean(np.stack([vectors[u] for u in user_ids]), axis=0)
    print(f"blinded round of {len(user_ids)} clients over the message bus: "
          f"aggregate max error {float(np.max(np.abs(aggregate - truth))):.2e}")
    report = deployment.last_report
    print(f"  telemetry: {report.messages_sent} messages, "
          f"{report.bytes_on_wire} bytes, {report.latency_ms:.1f} ms simulated, "
          f"{report.ecalls} ecalls")
    engine = deployment.engine
    engine.open_round(2, 1, len(deployment.features))
    engine.provision_mask(user_ids[0], 2, 0)
    outcome = engine.contribute(
        user_ids[0],
        2,
        [538.0] + [0.0] * (len(deployment.features) - 1),
        deployment.features.bigrams,
    )
    if outcome == OUTCOME_VALIDATION_REJECTED:
        print("and the 538 attack is stopped in-enclave: validation-rejected")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Glimmers (HotOS 2017) reproduction — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the experiment index").set_defaults(
        func=_cmd_list
    )

    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id, e.g. e4, or 'all'")
    run_parser.add_argument(
        "overrides", nargs="*", help="key=value parameter overrides"
    )
    run_parser.add_argument(
        "--json", action="store_true", help="print tables as JSON"
    )
    run_parser.add_argument(
        "--seed",
        help="deterministic seed threaded to every runner that accepts one",
    )
    run_parser.set_defaults(func=_cmd_run)

    sub.add_parser("demo", help="run the quickstart narrative").set_defaults(
        func=_cmd_demo
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
