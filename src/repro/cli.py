"""Command-line interface: run experiments and inspect the deployment.

Usage (also available as ``python -m repro``)::

    python -m repro list                     # experiment index
    python -m repro run e4                   # run one experiment, print its table
    python -m repro run all                  # run all twelve
    python -m repro demo                     # the quickstart narrative

Experiment parameter overrides are passed as ``key=value`` pairs and parsed
with :func:`ast.literal_eval`, e.g.::

    python -m repro run e4 num_users=12 "magnitudes=(538.0,)"
"""

from __future__ import annotations

import argparse
import ast
import sys

from repro.experiments.registry import EXPERIMENTS, run_experiment


def _parse_overrides(pairs: list[str]) -> dict:
    overrides = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"override {pair!r} is not key=value")
        key, raw = pair.split("=", 1)
        try:
            overrides[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            overrides[key] = raw  # plain string value
    return overrides


def _cmd_list(_args: argparse.Namespace) -> int:
    width = max(len(eid) for eid in EXPERIMENTS)
    for experiment_id, (title, module) in EXPERIMENTS.items():
        print(f"{experiment_id.ljust(width)}  {title}  [{module}]")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    targets = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    overrides = _parse_overrides(args.overrides)
    status = 0
    for experiment_id in targets:
        if experiment_id not in EXPERIMENTS:
            print(f"unknown experiment {experiment_id!r}; try 'list'", file=sys.stderr)
            return 2
        result = run_experiment(experiment_id, **overrides)
        print(result.table().render())
        print()
    return status


def _cmd_demo(_args: argparse.Namespace) -> int:
    """A self-contained miniature of examples/quickstart.py."""
    import numpy as np

    from repro.errors import ValidationError
    from repro.experiments.common import Deployment

    deployment = Deployment.build(num_users=4, seed=b"cli-demo")
    user_ids = [user.user_id for user in deployment.corpus.users]
    deployment.open_round(1, user_ids)
    vectors = deployment.local_vectors()
    for user_id in user_ids:
        signed = deployment.clients[user_id].contribute(
            1, list(vectors[user_id]), deployment.features.bigrams
        )
        deployment.service.submit(1, signed)
    result = deployment.service.finalize_blinded_round(1)
    truth = np.mean(np.stack([vectors[u] for u in user_ids]), axis=0)
    print(f"blinded round of {len(user_ids)} clients: aggregate max error "
          f"{float(np.max(np.abs(result.aggregate - truth))):.2e}")
    deployment.blinder_provisioner.open_round(2, 1, len(deployment.features))
    deployment.service.open_round(2, 1)
    client = deployment.clients[user_ids[0]]
    client.provision_mask(deployment.blinder_provisioner, 2, 0)
    try:
        client.contribute(
            2,
            [538.0] + [0.0] * (len(deployment.features) - 1),
            deployment.features.bigrams,
        )
    except ValidationError as exc:
        print(f"and the 538 attack is stopped in-enclave: {exc}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Glimmers (HotOS 2017) reproduction — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the experiment index").set_defaults(
        func=_cmd_list
    )

    run_parser = sub.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", help="experiment id, e.g. e4, or 'all'")
    run_parser.add_argument(
        "overrides", nargs="*", help="key=value parameter overrides"
    )
    run_parser.set_defaults(func=_cmd_run)

    sub.add_parser("demo", help="run the quickstart narrative").set_defaults(
        func=_cmd_demo
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
