"""Contribution-forging attacks, headlined by the "538" attack of Figure 1d.

The paper's core integrity problem: blinding hides contributions from the
service, so "Alice could contribute a blinded local model ... maliciously
manipulated to overweight her personal political convictions (i.e.,
contributing an illegal value of 538 for one model parameter, violating the
valid range of [0,1])", skewing the aggregate "catastrophically".

:class:`Poisoner` builds such contributions.  Three escalating strategies
are provided, matching the predicate ladder of experiment E6:

* ``magnitude`` — the literal Figure 1d attack: one parameter set to an
  out-of-range value (538).  Defeated by a range check.
* ``boost_in_range`` — every targeted parameter pushed to the legal
  maximum (1.0).  Survives a range check; defeated by corroboration
  against actual keyboard evidence.
* ``fabricated_consistent`` — a fully fabricated but internally consistent
  model, with forged keyboard evidence to match.  Survives range and
  corroboration checks; only raises the adversary's cost (the paper's
  point: stronger predicates raise the cost to cheat, they don't make it
  impossible).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.federated.model import Bigram, FeatureSpace


@dataclass
class PoisonedContribution:
    """A malicious vector plus whatever forged evidence backs it."""

    vector: np.ndarray
    strategy: str
    forged_sentences: list | None = None
    fabrication_effort: int = 0
    """Simulated effort units the adversary spent fabricating evidence."""


class Poisoner:
    """Builds poisoned contributions targeting chosen bigrams."""

    def __init__(self, features: FeatureSpace, targets: Sequence[Bigram]) -> None:
        if not targets:
            raise ConfigurationError("poisoner needs at least one target bigram")
        self.features = features
        self.targets = list(targets)
        self._target_idx = [features.position(b) for b in self.targets]

    def magnitude_attack(
        self, base_vector: np.ndarray, magnitude: float = 538.0
    ) -> PoisonedContribution:
        """Figure 1d: set target parameters to an out-of-range magnitude."""
        vector = np.asarray(base_vector, dtype=float).copy()
        vector[self._target_idx] = magnitude
        return PoisonedContribution(vector=vector, strategy="magnitude")

    def boost_in_range_attack(
        self, base_vector: np.ndarray, level: float = 1.0
    ) -> PoisonedContribution:
        """Push targets to the legal maximum; passes any range check."""
        if not 0.0 <= level <= 1.0:
            raise ConfigurationError("boost level must stay in [0, 1] to evade range checks")
        vector = np.asarray(base_vector, dtype=float).copy()
        vector[self._target_idx] = level
        return PoisonedContribution(vector=vector, strategy="boost_in_range")

    def fabricated_consistent_attack(
        self, repetitions: int = 50
    ) -> PoisonedContribution:
        """Fabricate sentences that *genuinely* train to the target weights.

        The adversary types (or synthesizes) the target bigrams over and
        over; the resulting model is consistent with its keyboard evidence,
        so corroboration predicates pass.  The cost is the fabrication
        effort, which execution-trace predicates (E6) drive up further.
        """
        sentences = []
        for __ in range(repetitions):
            for left, right in self.targets:
                sentences.append([left, right])
        pair_counts: Counter = Counter()
        left_counts: Counter = Counter()
        for sentence in sentences:
            for left, right in zip(sentence, sentence[1:]):
                pair_counts[(left, right)] += 1
                left_counts[left] += 1
        vector = np.zeros(len(self.features), dtype=float)
        for i, (left, right) in enumerate(self.features.bigrams):
            total = left_counts.get(left, 0)
            if total:
                vector[i] = pair_counts.get((left, right), 0) / total
        return PoisonedContribution(
            vector=vector,
            strategy="fabricated_consistent",
            forged_sentences=sentences,
            fabrication_effort=sum(len(s) for s in sentences),
        )

    def skew(self, aggregate_before: np.ndarray, aggregate_after: np.ndarray) -> float:
        """How much the attack moved the aggregate on the targeted parameters."""
        before = np.asarray(aggregate_before, dtype=float)[self._target_idx]
        after = np.asarray(aggregate_after, dtype=float)[self._target_idx]
        return float(np.max(np.abs(after - before)))
