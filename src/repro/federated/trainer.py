"""Per-user local training (the client half of federated learning).

Each client trains a :class:`~repro.federated.model.BigramModel` on its own
keyboard stream and submits the weight vector.  The trainer also keeps the
raw evidence (bigram and left-word counts) because *validation* predicates
(experiment E6) ask the Glimmer to corroborate the reported weights against
the user's actual keyboard activity — data that never leaves the device.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.federated.model import BigramModel, FeatureSpace


@dataclass
class LocalTrainingResult:
    """A client's partial model plus the private evidence behind it."""

    model: BigramModel
    pair_counts: Counter = field(default_factory=Counter)
    left_counts: Counter = field(default_factory=Counter)
    num_sentences: int = 0
    num_tokens: int = 0

    def contribution(self) -> np.ndarray:
        """The vector this client would submit to the service."""
        return self.model.as_vector()


class LocalTrainer:
    """Trains a partial model from one user's sentences."""

    def __init__(self, features: FeatureSpace) -> None:
        self.features = features

    def train(self, sentences: Sequence[Sequence[str]]) -> LocalTrainingResult:
        """Count bigrams, derive conditional-probability weights."""
        pair_counts: Counter = Counter()
        left_counts: Counter = Counter()
        num_tokens = 0
        for sentence in sentences:
            num_tokens += len(sentence)
            for left, right in zip(sentence, sentence[1:]):
                pair_counts[(left, right)] += 1
                left_counts[left] += 1
        weights = np.zeros(len(self.features), dtype=float)
        for i, (left, right) in enumerate(self.features.bigrams):
            total = left_counts.get(left, 0)
            if total:
                weights[i] = pair_counts.get((left, right), 0) / total
        return LocalTrainingResult(
            model=BigramModel(self.features, weights),
            pair_counts=pair_counts,
            left_counts=left_counts,
            num_sentences=len(sentences),
            num_tokens=num_tokens,
        )
