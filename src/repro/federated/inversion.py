"""Model inversion: recovering sensitive attributes from partial models.

The paper's §1 argument against plain federated learning (Figure 1b) is
that "learned models ... can still reveal information about the raw inputs
used to train those models (e.g., machine-learning models can be inverted
[4])".  For the bigram keyboard model the inversion is direct and damning:
a per-user partial model carries the user's own conditional probabilities,
so the weights of stance-bearing bigrams ("voting" → "for" vs. "don't" →
"like", in the Alice/Bob example) read the user's politics right back out.

:class:`InversionAttacker` implements this attribute-inference attack given
*any* vector the adversary can attribute to a single user.  Experiments use
it three ways:

* against raw per-user models (Figure 1b) — high advantage;
* against blinded per-user vectors (Figure 1c) — chance advantage, because
  ring-masked values are marginally uniform;
* against the aggregate model — bounded leakage about any individual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.federated.model import Bigram, FeatureSpace


@dataclass(frozen=True)
class StanceEvidence:
    """Which bigram weights indicate each value of the sensitive attribute.

    ``positive_markers`` push the score toward label ``positive_label``;
    ``negative_markers`` toward ``negative_label``.
    """

    positive_label: str
    negative_label: str
    positive_markers: tuple[Bigram, ...]
    negative_markers: tuple[Bigram, ...]


class InversionAttacker:
    """Infers a user's sensitive attribute from an attributed model vector."""

    def __init__(self, features: FeatureSpace, evidence: StanceEvidence) -> None:
        self.features = features
        self.evidence = evidence
        self._positive_idx = [features.position(b) for b in evidence.positive_markers]
        self._negative_idx = [features.position(b) for b in evidence.negative_markers]
        if not self._positive_idx or not self._negative_idx:
            raise ConfigurationError("evidence must name at least one marker per side")

    def score(self, vector: np.ndarray) -> float:
        """Positive score → ``positive_label``; negative → ``negative_label``."""
        vector = np.asarray(vector, dtype=float)
        positive = float(np.sum(vector[self._positive_idx]))
        negative = float(np.sum(vector[self._negative_idx]))
        return positive - negative

    def infer(self, vector: np.ndarray) -> str:
        """The attacker's best guess for this user's attribute."""
        if self.score(vector) >= 0:
            return self.evidence.positive_label
        return self.evidence.negative_label

    def attack_cohort(
        self, vectors: Mapping[str, np.ndarray]
    ) -> dict[str, str]:
        """Run the attack on every (user id → attributed vector) pair."""
        return {user: self.infer(vector) for user, vector in vectors.items()}

    def accuracy(
        self,
        vectors: Mapping[str, np.ndarray],
        true_labels: Mapping[str, str],
    ) -> float:
        """Fraction of users whose attribute the attacker recovers."""
        if not vectors:
            raise ConfigurationError("no vectors to attack")
        guesses = self.attack_cohort(vectors)
        hits = sum(
            1 for user, guess in guesses.items() if true_labels.get(user) == guess
        )
        return hits / len(guesses)
