"""Federated learning substrate: the paper's motivating service.

§1 of the paper motivates Glimmers with a federated next-word prediction
service (Figure 1): every client trains a local partial model on its own
keyboard stream, the service aggregates the partial models, and the global
model suggests "Trump" after "Donald" even to users who never typed it.
This package implements that whole pipeline:

* :mod:`repro.federated.model` — the bigram next-word model (the paper's
  "simplistic keyboard model [that] associates a weight between 0 and 1
  for an ordered pair of words") and its vector encoding;
* :mod:`repro.federated.trainer` — per-user local training;
* :mod:`repro.federated.aggregation` — FedSum/FedAvg service-side merging;
* :mod:`repro.federated.inversion` — the model-inversion attack [4] that
  breaks plain federated learning (Figure 1b);
* :mod:`repro.federated.poisoning` — the "538" contribution-forging attack
  (Figure 1d) and friends;
* :mod:`repro.federated.metrics` — utility and privacy-leakage metrics.
"""

from repro.federated.aggregation import FederatedAggregator
from repro.federated.inversion import InversionAttacker, StanceEvidence
from repro.federated.metrics import (
    attribute_inference_advantage,
    model_distance,
    top1_accuracy,
)
from repro.federated.model import BigramModel, FeatureSpace
from repro.federated.poisoning import PoisonedContribution, Poisoner
from repro.federated.trainer import LocalTrainer

__all__ = [
    "FederatedAggregator",
    "InversionAttacker",
    "StanceEvidence",
    "attribute_inference_advantage",
    "model_distance",
    "top1_accuracy",
    "BigramModel",
    "FeatureSpace",
    "PoisonedContribution",
    "Poisoner",
    "LocalTrainer",
]
