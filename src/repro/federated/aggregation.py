"""Service-side aggregation of partial models.

The service in Figure 1b "sums those models together to generate a global
one".  We implement the standard federated average: the global weight for a
bigram is the mean of the clients' reported weights.  The aggregator
operates purely on vectors, so the same code path serves:

* plaintext contributions (Figure 1b — the service sees each vector);
* blinded contributions already summed in the ring (Figure 1c — the service
  sees only the sum and divides by the count);
* Glimmer-signed contributions (only signature-valid vectors are admitted).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.federated.model import BigramModel, FeatureSpace


class FederatedAggregator:
    """Averages contribution vectors into a global model."""

    def __init__(self, features: FeatureSpace) -> None:
        self.features = features

    def _check(self, vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (len(self.features),):
            raise ConfigurationError(
                f"contribution has shape {vector.shape}, expected ({len(self.features)},)"
            )
        return vector

    def aggregate(self, contributions: Sequence[np.ndarray]) -> BigramModel:
        """Mean of per-client vectors (FedAvg with equal weights)."""
        if not contributions:
            raise ConfigurationError("no contributions to aggregate")
        stacked = np.stack([self._check(v) for v in contributions])
        return BigramModel(self.features, stacked.mean(axis=0))

    def aggregate_sum(self, total: np.ndarray, count: int) -> BigramModel:
        """From a pre-summed vector (the blinded-aggregation path)."""
        if count <= 0:
            raise ConfigurationError("count must be positive")
        total = self._check(np.asarray(total, dtype=float))
        return BigramModel(self.features, total / count)
