"""Utility and privacy metrics for the federated experiments.

Three quantities recur throughout the evaluation:

* **utility** — next-word prediction accuracy of a model against held-out
  sentences (:func:`top1_accuracy`), the benefit users get from sharing;
* **leakage** — an attribute-inference attacker's *advantage* over random
  guessing (:func:`attribute_inference_advantage`), the privacy cost;
* **integrity damage** — distance between the honest aggregate and the
  aggregate under attack (:func:`model_distance`, plus per-parameter skew
  in :mod:`repro.federated.poisoning`).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.federated.model import BigramModel


def top1_accuracy(
    model: BigramModel, sentences: Sequence[Sequence[str]]
) -> float:
    """Fraction of (tracked-context) next-word events the model predicts.

    Only contexts the feature space tracks are scored; a model that has
    seen no data scores 0 because its top predictions are empty.
    """
    tracked_firsts = model.features.first_words()
    attempts = 0
    hits = 0
    for sentence in sentences:
        for left, right in zip(sentence, sentence[1:]):
            if left not in tracked_firsts:
                continue
            attempts += 1
            if model.top_prediction(left) == right:
                hits += 1
    if attempts == 0:
        return 0.0
    return hits / attempts


def attribute_inference_advantage(
    accuracy: float, num_classes: int = 2
) -> float:
    """Attacker advantage over random guessing, normalized to [~0, 1].

    0 means the attack does no better than chance; 1 means perfect
    recovery.  (Slightly negative values can occur by sampling noise.)
    """
    if num_classes < 2:
        raise ConfigurationError("need at least two classes")
    chance = 1.0 / num_classes
    return (accuracy - chance) / (1.0 - chance)


def model_distance(a: BigramModel, b: BigramModel) -> float:
    """L∞ distance between two models' weights (worst-parameter skew)."""
    if a.features.bigrams != b.features.bigrams:
        raise ConfigurationError("models use different feature spaces")
    return float(np.max(np.abs(a.weights - b.weights))) if len(a.weights) else 0.0


def prediction_changed(
    honest: BigramModel, attacked: BigramModel, word: str
) -> bool:
    """Did the attack flip the model's suggestion for ``word``?"""
    return honest.top_prediction(word) != attacked.top_prediction(word)


def empirical_accuracy(
    guesses: Mapping[str, str], truth: Mapping[str, str]
) -> float:
    """Fraction of correct guesses over the keys present in ``guesses``."""
    if not guesses:
        raise ConfigurationError("no guesses to score")
    hits = sum(1 for key, guess in guesses.items() if truth.get(key) == guess)
    return hits / len(guesses)
