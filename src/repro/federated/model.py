"""The bigram next-word prediction model of Figure 1.

The paper's illustration: a model "associates a weight between 0 and 1 for
an ordered pair of words" — i.e. an estimate of ``P(next | current)``.  The
service fixes a :class:`FeatureSpace` (an ordered list of tracked word
pairs), so every client's partial model is a dense float vector over the
same features; that vector is exactly what gets range-checked, blinded,
and aggregated in the Glimmer pipeline.

Weights are conditional probabilities, hence the legal per-parameter range
``[0, 1]`` that the "538" attack of Figure 1d violates.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError

Bigram = tuple[str, str]


@dataclass(frozen=True)
class FeatureSpace:
    """An ordered, deduplicated list of tracked bigrams.

    The service publishes this; clients report one weight per feature.
    """

    bigrams: tuple[Bigram, ...]
    index: dict = field(init=False, repr=False, hash=False, compare=False)

    def __post_init__(self) -> None:
        if len(set(self.bigrams)) != len(self.bigrams):
            raise ConfigurationError("feature space contains duplicate bigrams")
        object.__setattr__(
            self, "index", {bigram: i for i, bigram in enumerate(self.bigrams)}
        )

    def __len__(self) -> int:
        return len(self.bigrams)

    def position(self, bigram: Bigram) -> int:
        try:
            return self.index[bigram]
        except KeyError:
            raise ConfigurationError(f"bigram {bigram!r} not in feature space") from None

    @classmethod
    def from_corpus(cls, sentences: Iterable[Sequence[str]], max_features: int | None = None) -> "FeatureSpace":
        """Track the bigrams observed in a corpus, most frequent first."""
        counts: Counter = Counter()
        for sentence in sentences:
            for left, right in zip(sentence, sentence[1:]):
                counts[(left, right)] += 1
        ordered = [bigram for bigram, __ in counts.most_common(max_features)]
        if not ordered:
            raise ConfigurationError("corpus contains no bigrams")
        return cls(bigrams=tuple(ordered))

    def first_words(self) -> set[str]:
        return {left for left, __ in self.bigrams}


class BigramModel:
    """Conditional next-word probabilities over a feature space.

    ``weights[i]`` estimates ``P(right_i | left_i)`` for the i-th tracked
    bigram.  Untracked continuations contribute probability mass that the
    model simply does not represent — adequate for the paper's illustration
    and for measuring relative utility.
    """

    def __init__(self, features: FeatureSpace, weights: np.ndarray | None = None) -> None:
        self.features = features
        if weights is None:
            weights = np.zeros(len(features), dtype=float)
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (len(features),):
            raise ConfigurationError(
                f"weights shape {weights.shape} does not match feature space size {len(features)}"
            )
        self.weights = weights

    # ------------------------------------------------------------- training

    @classmethod
    def train(
        cls, features: FeatureSpace, sentences: Iterable[Sequence[str]]
    ) -> "BigramModel":
        """Maximum-likelihood weights from a token stream.

        ``P(right | left)`` is estimated against *all* continuations of
        ``left`` seen in the stream (not only tracked ones), so weights are
        genuine conditional probabilities in ``[0, 1]``.
        """
        pair_counts: Counter = Counter()
        left_counts: Counter = Counter()
        for sentence in sentences:
            for left, right in zip(sentence, sentence[1:]):
                pair_counts[(left, right)] += 1
                left_counts[left] += 1
        weights = np.zeros(len(features), dtype=float)
        for i, (left, right) in enumerate(features.bigrams):
            total = left_counts.get(left, 0)
            if total:
                weights[i] = pair_counts.get((left, right), 0) / total
        return cls(features, weights)

    # ------------------------------------------------------------ prediction

    def weight(self, bigram: Bigram) -> float:
        return float(self.weights[self.features.position(bigram)])

    def predict_next(self, word: str) -> list[tuple[str, float]]:
        """Ranked continuation candidates for ``word`` (tracked bigrams only)."""
        candidates = [
            (right, float(self.weights[i]))
            for i, (left, right) in enumerate(self.features.bigrams)
            if left == word
        ]
        return sorted(candidates, key=lambda item: (-item[1], item[0]))

    def top_prediction(self, word: str) -> str | None:
        ranked = self.predict_next(word)
        if not ranked or ranked[0][1] == 0.0:
            return None
        return ranked[0][0]

    # --------------------------------------------------------------- algebra

    def copy(self) -> "BigramModel":
        return BigramModel(self.features, self.weights.copy())

    def as_vector(self) -> np.ndarray:
        """The contribution vector clients submit (a copy; mutations are local)."""
        return self.weights.copy()

    @classmethod
    def from_vector(cls, features: FeatureSpace, vector: Sequence[float]) -> "BigramModel":
        return cls(features, np.asarray(vector, dtype=float))

    def in_legal_range(self, low: float = 0.0, high: float = 1.0) -> bool:
        """Whether every weight is a plausible probability."""
        return bool(np.all(self.weights >= low) and np.all(self.weights <= high))
