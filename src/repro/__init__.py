"""Reproduction of "Glimmers: Resolving the Privacy/Trust Quagmire" (HotOS 2017).

The package is organized by subsystem (see DESIGN.md for the full
inventory):

* :mod:`repro.crypto` — self-contained simulation-grade cryptography;
* :mod:`repro.sgx` — a functional Intel SGX simulator;
* :mod:`repro.network` — simulated transport, channels, adversaries;
* :mod:`repro.federated` — the motivating federated keyboard service;
* :mod:`repro.workloads` — synthetic data with planted ground truth;
* :mod:`repro.core` — the Glimmer architecture (the paper's contribution);
* :mod:`repro.analysis` — privacy/utility measurement helpers;
* :mod:`repro.experiments` — one experiment per paper figure/claim.

Quick entry points: :class:`repro.experiments.common.Deployment` stands up
a complete provisioned deployment; ``python -m repro`` runs experiments
from the command line.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
