"""Memory-bounded large-cohort smoke round (``repro stream-smoke``).

The engine-scale hierarchical path still pays O(n) once per round for
Pedersen mask commitments, so it cannot demonstrate the DESIGN.md §16
memory claim at 100k+ clients.  This harness exercises exactly the
subsystems that claim covers — the DRBG-keyed subgroup plan, per-subgroup
sum-zero families re-expanded O(g) at a time, and fold-on-arrival
subgroup accumulators — over a synthetic cohort, then proves the result
bit-exact against an independently accumulated ring sum of the surviving
plaintexts.

Peak RSS is read at the end (``VmHWM`` where procfs exists, else
``resource.getrusage``), so the harness is meant to run in its own
process (the CLI command, or the bench harness's subprocess): the
measurement is then "memory needed for the whole ingest", which is the
quantity the CI ``large-cohort`` job budgets.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.crypto.drbg import HmacDrbg
from repro.crypto.fixedpoint import FixedPointCodec
from repro.crypto.masking import GroupedSumZeroMasks
from repro.errors import ConfigurationError

DEFAULT_LENGTH = 64
DEFAULT_SUBGROUP = 256
#: Slots dropped from the synthetic cohort (every k-th; prime so the
#: dropouts spread across subgroup boundaries instead of aliasing them).
DROPOUT_STRIDE = 97


def _slot_values(slot: int, length: int) -> list[float]:
    """A cheap deterministic per-slot vector in [-11/16, 11/16]."""
    return [((slot + j) % 23 - 11) / 16 for j in range(length)]


def run_stream_smoke(
    num_users: int,
    length: int = DEFAULT_LENGTH,
    subgroup_size: int = DEFAULT_SUBGROUP,
    round_id: int = 1,
    dropout_stride: int = DROPOUT_STRIDE,
    seed: bytes = b"stream-smoke",
) -> dict:
    """One streaming ingest round; returns the report dict.

    Walks the cohort subgroup by subgroup (so the grouped-mask cache
    serves every slot warm), blinds each surviving slot with its §3
    mask, folds it into the streaming accumulator, and folds the
    *mask* of every dropped slot as the repair — per-subgroup families
    sum to zero, so present-blinded plus dropped-masks telescopes to the
    plaintext sum of the survivors.  ``exact`` compares that against a
    directly accumulated ring sum, word for word.
    """
    if num_users < 1:
        raise ConfigurationError("need at least one user")
    from repro.scale.streaming import StreamingSubgroupAccumulator
    from repro.scale.subgroup import plan_subgroups

    start = time.perf_counter()
    plan = plan_subgroups(round_id, num_users, subgroup_size)
    rng = HmacDrbg(seed, personalization="stream-smoke")
    masks = GroupedSumZeroMasks.sample(plan, length, rng.fork("masks"))
    codec = FixedPointCodec()
    accumulator = StreamingSubgroupAccumulator(plan)
    expected = np.zeros(length, dtype=np.uint64)
    survivors = 0
    dropouts = 0
    for group in range(plan.num_groups):
        family = masks.group_family(group)
        for local, slot in enumerate(plan.slots_in(group)):
            mask = np.asarray(family.mask_for(local), dtype=np.uint64)
            if dropout_stride and slot % dropout_stride == 0:
                # §3 repair: the blinder reveals the dropped slot's mask
                # and the service folds it; within the slot's subgroup
                # the family still telescopes to zero.
                accumulator.fold_repair(mask, slot=slot)
                dropouts += 1
                continue
            encoded = np.asarray(
                codec.encode(_slot_values(slot, length)), dtype=np.uint64
            )
            accumulator.fold(encoded + mask, slot=slot)
            expected += encoded
            survivors += 1
    total = accumulator.total()
    exact = bool(np.array_equal(total, expected))
    mean = codec.decode(total) / max(survivors, 1)
    wall = time.perf_counter() - start
    return {
        "num_users": num_users,
        "length": length,
        "subgroup_size": plan.group_size,
        "num_groups": plan.num_groups,
        "survivors": survivors,
        "dropouts": dropouts,
        "folds": accumulator.folded,
        "repairs": accumulator.repairs_folded,
        "exact": exact,
        "mean_head": [float(v) for v in mean[: min(4, length)]],
        "wall_s": wall,
        "users_per_sec": num_users / wall if wall > 0 else math.inf,
        "peak_rss_kb": peak_rss_kb(),
    }


def peak_rss_kb() -> int | None:
    """Process-lifetime peak RSS in KiB (None off-POSIX)."""
    from repro.perf.bench import _peak_rss_kb

    return _peak_rss_kb()


def main(
    num_users: int,
    length: int = DEFAULT_LENGTH,
    subgroup_size: int = DEFAULT_SUBGROUP,
    max_rss_kb: int | None = None,
    as_json: bool = False,
) -> int:
    """The ``repro stream-smoke`` entry point; returns the exit code.

    Exits 1 when the aggregate is not bit-exact or peak RSS exceeds
    ``--max-rss-kb`` — the CI large-cohort job's pass/fail line.
    """
    report = run_stream_smoke(
        num_users, length=length, subgroup_size=subgroup_size
    )
    over_budget = (
        max_rss_kb is not None
        and report["peak_rss_kb"] is not None
        and report["peak_rss_kb"] > max_rss_kb
    )
    report["max_rss_kb"] = max_rss_kb
    report["rss_ok"] = not over_budget
    if as_json:
        import json

        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        rss = report["peak_rss_kb"]
        print(
            f"stream-smoke: {report['num_users']} users x "
            f"{report['length']} words, subgroups of "
            f"{report['subgroup_size']} ({report['num_groups']} groups) — "
            f"{report['survivors']} survived, {report['dropouts']} repaired "
            f"in {report['wall_s']:.2f}s "
            f"({report['users_per_sec']:.0f} users/s)"
        )
        print(
            f"  aggregate bit-exact: {report['exact']}; peak RSS "
            + (f"{rss / 1024:.0f} MiB" if rss is not None else "n/a")
            + (
                f" (budget {max_rss_kb / 1024:.0f} MiB: "
                + ("OK" if not over_budget else "EXCEEDED")
                + ")"
                if max_rss_kb is not None
                else ""
            )
        )
    if not report["exact"] or over_budget:
        return 1
    return 0
