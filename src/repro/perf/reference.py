"""Scalar reference implementations for the vectorized kernels.

Two distinct families live here, and the distinction matters:

* ``*_scalar`` functions are the **parity references**: the same
  algorithm as the numpy fast path, written as plain Python loops.  The
  parity suite (``tests/perf/test_parity.py``) asserts bit-identical
  outputs between each fast path and its ``_scalar`` twin on the same
  inputs / same DRBG state.

* ``*_legacy`` functions preserve the **pre-kernel implementations**
  (per-element ``randint`` sampling, per-element ring loops) exactly as
  the seed revision shipped them.  They are *not* stream-compatible with
  the bulk DRBG expansion — they exist so ``repro bench`` measures the
  speedup against what the code actually used to do, not against a straw
  man.
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto.drbg import HmacDrbg

# ------------------------------------------------------------------ parity


def uint64_vector_scalar(rng: HmacDrbg, length: int) -> list[int]:
    """Scalar twin of :meth:`HmacDrbg.uint64_vector`: same stream, int loop."""
    if length < 0:
        raise ValueError("length must be non-negative")
    data = rng.generate(8 * length)
    return [
        int.from_bytes(data[8 * i : 8 * (i + 1)], "big") for i in range(length)
    ]


def sample_sum_zero_scalar(
    num_parties: int, length: int, rng: HmacDrbg, modulus_bits: int = 64
) -> list[tuple[int, ...]]:
    """Scalar twin of the bulk :meth:`SumZeroMasks.sample` (64-bit path).

    First ``N - 1`` masks are big-endian parses of one ``generate`` call
    each; the last is the ring negation of their running sum.
    """
    modulus = 1 << modulus_bits
    masks: list[tuple[int, ...]] = []
    running = [0] * length
    for _ in range(num_parties - 1):
        if modulus_bits == 64:
            mask = tuple(uint64_vector_scalar(rng, length))
        else:
            mask = tuple(rng.randint(modulus) for _ in range(length))
        for i, value in enumerate(mask):
            running[i] = (running[i] + value) % modulus
        masks.append(mask)
    masks.append(tuple((-total) % modulus for total in running))
    return masks


def expand_mask_scalar(
    seed: bytes, label: str, length: int, modulus: int
) -> list[int]:
    """Scalar twin of secagg's bulk ``_expand_mask`` (64-bit ring)."""
    rng = HmacDrbg(seed, personalization="secagg-mask:" + label)
    if modulus == 1 << 64:
        return uint64_vector_scalar(rng, length)
    return [rng.randint(modulus) for _ in range(length)]


def apply_mask_scalar(
    encoded: Sequence[int], mask: Sequence[int], modulus_bits: int = 64
) -> list[int]:
    modulus = 1 << modulus_bits
    return [(int(x) + int(p)) % modulus for x, p in zip(encoded, mask)]


def remove_mask_scalar(
    blinded: Sequence[int], mask: Sequence[int], modulus_bits: int = 64
) -> list[int]:
    modulus = 1 << modulus_bits
    return [(int(y) - int(p)) % modulus for y, p in zip(blinded, mask)]


def sum_vectors_scalar(
    vectors: Sequence[Sequence[int]], modulus_bits: int = 64
) -> list[int]:
    modulus = 1 << modulus_bits
    total = [0] * len(vectors[0])
    for vector in vectors:
        for i, value in enumerate(vector):
            total[i] = (total[i] + int(value)) % modulus
    return total


def streaming_fold_scalar(
    rows: Sequence[Sequence[int]],
    groups: Sequence[int],
    num_groups: int,
    modulus_bits: int = 64,
) -> list[int]:
    """Scalar twin of the subgroup streaming fold + parent merge.

    Folds each row into its subgroup's per-element partial sum, then
    merges the partials — the same shape as
    :class:`repro.scale.streaming.StreamingSubgroupAccumulator` followed
    by ``total()``, as plain Python loops.
    """
    modulus = 1 << modulus_bits
    length = len(rows[0])
    partials = [[0] * length for _ in range(num_groups)]
    for row, group in zip(rows, groups):
        bucket = partials[group]
        for i, value in enumerate(row):
            bucket[i] = (bucket[i] + int(value)) % modulus
    return sum_vectors_scalar(partials, modulus_bits)


def encode_scalar(codec, values: Sequence[float]) -> list[int]:
    """Scalar fixed-point encode: per-value ``round(v * scale) % modulus``."""
    return [codec.encode_value(float(v)) for v in values]


def decode_scalar(codec, encoded: Sequence[int]) -> list[float]:
    """Scalar fixed-point decode (list form; callers wrap in np.array)."""
    return [codec.decode_value(int(e)) for e in encoded]


def words_to_bytes_scalar(words: Sequence[int]) -> bytes:
    return b"".join(int(v).to_bytes(8, "big") for v in words)


def bytes_to_words_scalar(payload: bytes) -> tuple[int, ...]:
    return tuple(
        int.from_bytes(payload[i : i + 8], "big")
        for i in range(0, len(payload), 8)
    )


# ------------------------------------------------------------------- legacy


def sample_sum_zero_legacy(
    num_parties: int, length: int, rng: HmacDrbg, modulus_bits: int = 64
) -> list[tuple[int, ...]]:
    """The seed revision's per-element mask sampler (benchmark baseline)."""
    modulus = 1 << modulus_bits
    masks: list[tuple[int, ...]] = []
    running = [0] * length
    for _ in range(num_parties - 1):
        mask = tuple(rng.randint(modulus) for _ in range(length))
        for i, value in enumerate(mask):
            running[i] = (running[i] + value) % modulus
        masks.append(mask)
    masks.append(tuple((-total) % modulus for total in running))
    return masks


def sum_vectors_legacy(
    vectors: Sequence[Sequence[int]], modulus_bits: int = 64
) -> list[int]:
    """The seed revision's blinded-sum loop (benchmark baseline)."""
    return sum_vectors_scalar(vectors, modulus_bits)


# ----------------------------------------------------- public-key baselines


def fixed_power_naive(prime: int, base: int, exponent: int) -> int:
    """Naive twin of :func:`repro.crypto.group_ops.fixed_power`."""
    return pow(base, exponent, prime)


def multi_power_naive(
    prime: int, bases: Sequence[int], exponents: Sequence[int]
) -> int:
    """Naive twin of :func:`repro.crypto.group_ops.multi_power`: a pow loop."""
    product = 1 % prime
    for base, exponent in zip(bases, exponents):
        product = product * pow(base, exponent, prime) % prime
    return product


def schnorr_verify_naive(group, public_element: int, message: bytes, signature) -> bool:
    """Frozen per-signature Schnorr verification with builtin ``pow``.

    Mirrors the seed revision's :meth:`SchnorrPublicKey.verify` decision
    exactly — range checks, full membership check, ``r' = h^s·y^{q-e}``,
    challenge recomputation — with no tables, no memoization, and no
    batching.  The batch path must agree with this on every input.
    """
    from repro.crypto.schnorr import _challenge

    q = group.subgroup_order
    if not (0 <= signature.challenge < q and 0 <= signature.response < q):
        return False
    element = public_element
    if not 1 < element < group.prime - 1:
        return False
    if pow(element, q, group.prime) != 1:
        return False
    h = pow(group.generator, 2, group.prime)
    r_prime = (
        pow(h, signature.response, group.prime)
        * pow(element, q - signature.challenge, group.prime)
    ) % group.prime
    return _challenge(group, r_prime, element, message) == signature.challenge


def verify_signatures_naive(public, items) -> bool:
    """Naive cohort verification: :func:`schnorr_verify_naive` in a loop."""
    return all(
        schnorr_verify_naive(public.group, public.element, message, signature)
        for message, signature in items
    )


def verify_openings_naive(commitments, openings) -> bool:
    """Naive twin of :func:`repro.crypto.commitments.batch_verify_openings`.

    Per-slot Pedersen point checks with builtin ``pow`` — the decision
    (not the arithmetic route) the batch multi-exp path must reproduce.
    """
    from repro.crypto.commitments import (
        MaskVerificationError,
        _checked_scalar,
        pedersen_generators,
        resolve_group,
    )

    group = resolve_group(commitments.group_name)
    h, u = pedersen_generators(group)
    weights = commitments.weights()
    for slot, opening in openings:
        try:
            scalar, point = _checked_scalar(commitments, slot, opening, weights)
        except MaskVerificationError:
            return False
        expected = (
            pow(h, scalar, group.prime)
            * pow(u, opening.randomizer, group.prime)
        ) % group.prime
        if expected != point:
            return False
    return True
