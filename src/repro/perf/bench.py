"""Microbenchmarks and the persistent benchmark-regression harness.

``repro bench`` measures the vectorized kernels against the pre-kernel
scalar implementations (:mod:`repro.perf.reference`), times a few
end-to-end experiment rounds, and writes a ``BENCH_<date>.json`` snapshot.
When a previous snapshot exists, the harness compares against it and exits
non-zero if any tracked metric regressed beyond the threshold.

Machine-to-machine variance is normalized away with a *calibration score*:
a fixed pure-Python + hashlib workload timed alongside the benchmarks.
Comparisons use ``ops_per_sec / calibration_ops_per_sec``, so a snapshot
from a fast laptop and one from a throttled CI runner remain comparable —
the ratio only moves when the *code* gets slower relative to the machine.
"""

from __future__ import annotations

import datetime as _dt
import gc
import hashlib
import json
import math
import time
from pathlib import Path
from typing import Callable

import numpy as np

from repro.crypto.drbg import HmacDrbg
from repro.crypto.fixedpoint import FixedPointCodec
from repro.crypto.masking import SumZeroMasks
from repro.perf import kernels, reference

SCHEMA_VERSION = 1

#: Tracked metric → regression comparison applies to its normalized score.
DEFAULT_THRESHOLD = 0.25

_FULL_SIZES = (256, 4096, 65536)
_QUICK_SIZES = (256, 4096)
_NUM_PARTIES = 4
_SUM_ROWS = 8


# ------------------------------------------------------------------ timing


def _timeit(fn: Callable[[], object], min_time: float = 0.2, batches: int = 5) -> dict:
    """Time ``fn`` over several batches and keep the *fastest* per-call time.

    Best-of-batches (the ``timeit`` convention) is robust where averaging
    is not: scheduler preemption and turbo throttling only ever make a
    batch slower, so the minimum tracks the code's actual cost and keeps
    cross-snapshot ratios stable enough for a regression threshold.
    """
    fn()  # warm-up: imports, allocator, first-call caches
    target = min_time / batches
    reps = 1
    while True:
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        elapsed = time.perf_counter() - start
        if elapsed >= target or reps >= 1 << 16:
            break
        scale = target / max(elapsed, 1e-9)
        reps = min(max(reps * 2, int(reps * scale) + 1), 1 << 16)
    best = elapsed / reps
    for _ in range(batches - 1):
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter() - start) / reps)
    return {
        "ops_per_sec": 1.0 / best if best > 0 else math.inf,
        "wall_ms": best * 1000.0,
        "reps": reps,
    }


def calibration_score(min_time: float = 0.2) -> float:
    """Ops/s of a fixed pure-Python + hashlib workload (machine yardstick)."""

    def op() -> None:
        digest = hashlib.sha256()
        acc = 1
        for _ in range(64):
            digest.update(b"repro-bench-calibration")
            acc = (acc * 1103515245 + 12345) % (1 << 31)
        int.from_bytes(digest.digest(), "big")

    return _timeit(op, min_time=min_time)["ops_per_sec"]


# ------------------------------------------------------------- micro benches


def _bench_mask_sampling(length: int, min_time: float) -> tuple[dict, dict]:
    rng = HmacDrbg(b"bench-masks")

    def vectorized() -> None:
        SumZeroMasks.sample(_NUM_PARTIES, length, rng.fork("v"))

    def legacy() -> None:
        reference.sample_sum_zero_legacy(_NUM_PARTIES, length, rng.fork("s"))

    return _timeit(vectorized, min_time), _timeit(legacy, min_time)


def _bench_blinded_sum(length: int, min_time: float) -> tuple[dict, dict]:
    rng = HmacDrbg(b"bench-sums")
    rows = [rng.uint64_vector(length) for _ in range(_SUM_ROWS)]
    matrix = np.stack(rows)
    lists = [row.tolist() for row in rows]

    def vectorized() -> None:
        kernels.ring_sum_rows(matrix)

    def legacy() -> None:
        reference.sum_vectors_legacy(lists)

    return _timeit(vectorized, min_time), _timeit(legacy, min_time)


def _bench_drbg_expand(length: int, min_time: float) -> tuple[dict, dict]:
    rng = HmacDrbg(b"bench-drbg")

    def vectorized() -> None:
        rng.fork("v").uint64_vector(length)

    def legacy() -> None:
        reference.uint64_vector_scalar(rng.fork("s"), length)

    return _timeit(vectorized, min_time), _timeit(legacy, min_time)


def _bench_codec_encode(length: int, min_time: float) -> tuple[dict, dict]:
    codec = FixedPointCodec()
    values = [math.sin(i / 7.0) for i in range(length)]

    def vectorized() -> None:
        codec.encode(values)

    def legacy() -> None:
        reference.encode_scalar(codec, values)

    return _timeit(vectorized, min_time), _timeit(legacy, min_time)


def _bench_codec_decode(length: int, min_time: float) -> tuple[dict, dict]:
    codec = FixedPointCodec()
    encoded = codec.encode([math.sin(i / 7.0) for i in range(length)])

    def vectorized() -> None:
        codec.decode(encoded)

    def legacy() -> None:
        reference.decode_scalar(codec, encoded)

    return _timeit(vectorized, min_time), _timeit(legacy, min_time)


def _bench_ring_ingest(length: int, min_time: float) -> tuple[dict, dict]:
    """The wire-boundary conversion the service pays once per submission."""
    rng = HmacDrbg(b"bench-ingest")
    words = rng.uint64_vector(length).tolist()

    def vectorized() -> None:
        kernels.as_ring(words)

    def legacy() -> None:
        [int(v) % (1 << 64) for v in words]

    return _timeit(vectorized, min_time), _timeit(legacy, min_time)


def _bench_serialization(length: int, min_time: float) -> tuple[dict, dict]:
    rng = HmacDrbg(b"bench-serial")
    words = rng.uint64_vector(length).tolist()
    payload = kernels.be_words_to_bytes(words)

    def vectorized() -> None:
        kernels.bytes_to_be_words(kernels.be_words_to_bytes(words))

    def legacy() -> None:
        reference.bytes_to_words_scalar(reference.words_to_bytes_scalar(words))

    assert kernels.bytes_to_be_words(payload) == tuple(words)
    return _timeit(vectorized, min_time), _timeit(legacy, min_time)


def _bench_streaming_fold(length: int, min_time: float) -> tuple[dict, dict]:
    """Fold-on-arrival subgroup ingest + parent merge vs scalar loops."""
    from repro.scale.streaming import StreamingSubgroupAccumulator
    from repro.scale.subgroup import plan_subgroups

    rng = HmacDrbg(b"bench-stream-fold")
    num_slots = _SUM_ROWS * 4
    plan = plan_subgroups(11, num_slots, 8)
    rows = [rng.uint64_vector(length) for _ in range(num_slots)]
    lists = [row.tolist() for row in rows]
    groups = [plan.group_of(slot) for slot in range(num_slots)]

    def vectorized() -> None:
        accumulator = StreamingSubgroupAccumulator(plan)
        for slot, row in enumerate(rows):
            accumulator.fold(row, slot=slot)
        accumulator.total()

    def legacy() -> None:
        reference.streaming_fold_scalar(lists, groups, plan.num_groups)

    return _timeit(vectorized, min_time), _timeit(legacy, min_time)


def _bench_subgroup_repair(length: int, min_time: float) -> tuple[dict, dict]:
    """O(g) dropout repair: re-expand one subgroup's sum-zero family."""
    from repro.crypto.masking import GroupedSumZeroMasks
    from repro.scale.subgroup import plan_subgroups

    group_size = 16
    plan = plan_subgroups(13, 1024, group_size)
    rng = HmacDrbg(b"bench-subgroup-repair")
    masks = GroupedSumZeroMasks.sample(plan, length, rng.fork("grouped"))

    def vectorized() -> None:
        masks._cache.clear()
        masks.group_family(7)

    def legacy() -> None:
        reference.sample_sum_zero_legacy(
            group_size, length, rng.fork("legacy")
        )

    return _timeit(vectorized, min_time), _timeit(legacy, min_time)


_MICRO_BENCHES: dict[str, Callable[[int, float], tuple[dict, dict]]] = {
    "mask_sampling": _bench_mask_sampling,
    "blinded_sum": _bench_blinded_sum,
    "drbg_expand": _bench_drbg_expand,
    "codec_encode": _bench_codec_encode,
    "codec_decode": _bench_codec_decode,
    "ring_ingest": _bench_ring_ingest,
    "serialization": _bench_serialization,
    "streaming_fold": _bench_streaming_fold,
    "subgroup_repair": _bench_subgroup_repair,
}


# ------------------------------------------------------- public-key benches
#
# Public-key rows run at their own, much smaller sizes: ``length`` here is
# a batch size (signatures, bases, exponentiations), not a vector length,
# and a single naive 768-bit ``pow`` already costs ~2ms.  All rows use
# OAKLEY_GROUP_1 so they measure real modular sizes, and compare against
# the frozen naive twins in :mod:`repro.perf.reference`.

_PK_SIZES = (64,)
_PK_QUICK_SIZES = (16,)


def _bench_pk_fixed_exp(length: int, min_time: float) -> tuple[dict, dict]:
    """Windowed fixed-base exponentiation vs builtin ``pow``."""
    from repro.crypto import group_ops
    from repro.crypto.dh import OAKLEY_GROUP_1 as group

    rng = HmacDrbg(b"bench-pk-exp")
    h = group.subgroup_generator()
    group_ops.register_base(group.prime, h)
    exponents = [group.random_exponent(rng) for _ in range(length)]

    def windowed() -> None:
        for exponent in exponents:
            group_ops.fixed_power(group.prime, h, exponent)

    def naive() -> None:
        for exponent in exponents:
            reference.fixed_power_naive(group.prime, h, exponent)

    return _timeit(windowed, min_time), _timeit(naive, min_time)


def _bench_pk_multi_exp(length: int, min_time: float) -> tuple[dict, dict]:
    """Pippenger simultaneous multi-exponentiation vs a ``pow`` loop."""
    from repro.crypto import group_ops
    from repro.crypto.dh import OAKLEY_GROUP_1 as group

    rng = HmacDrbg(b"bench-pk-multiexp")
    h = group.subgroup_generator()
    bases = [group.power(h, group.random_exponent(rng)) for _ in range(length)]
    exponents = [
        int.from_bytes(rng.generate(16), "big") or 1 for _ in range(length)
    ]

    def pippenger() -> None:
        group_ops.multi_power(group.prime, bases, exponents)

    def naive() -> None:
        reference.multi_power_naive(group.prime, bases, exponents)

    assert group_ops.multi_power(group.prime, bases, exponents) == (
        reference.multi_power_naive(group.prime, bases, exponents)
    )
    return _timeit(pippenger, min_time), _timeit(naive, min_time)


def _bench_pk_batch_verify(length: int, min_time: float) -> tuple[dict, dict]:
    """Randomized batch Schnorr verification vs the per-signature loop."""
    from repro.crypto import schnorr
    from repro.crypto.dh import OAKLEY_GROUP_1 as group

    rng = HmacDrbg(b"bench-pk-verify")
    keypair = schnorr.SchnorrKeyPair.generate(rng, group)
    items = [
        (message, keypair.sign(message))
        for message in (f"bench-msg-{i}".encode() for i in range(length))
    ]
    public = keypair.public_key
    assert schnorr.batch_verify(public, items) is True
    assert reference.verify_signatures_naive(public, items) is True

    def batched() -> None:
        schnorr.batch_verify(public, items)

    def naive() -> None:
        reference.verify_signatures_naive(public, items)

    return _timeit(batched, min_time), _timeit(naive, min_time)


_PK_BENCHES: dict[str, Callable[[int, float], tuple[dict, dict]]] = {
    "pk_fixed_exp": _bench_pk_fixed_exp,
    "pk_multi_exp": _bench_pk_multi_exp,
    "pk_batch_verify": _bench_pk_batch_verify,
}


# -------------------------------------------------------- experiment benches


def _peak_rss_kb() -> int | None:
    """This process's lifetime peak RSS in KiB (None where unavailable).

    Prefers ``VmHWM`` from ``/proc/self/status``: some kernels carry the
    parent's ``ru_maxrss`` high-water mark across fork+exec, which would
    make a subprocess-isolated measurement (the ``stream/u*`` bench
    entries) report the *parent's* peak.  ``VmHWM`` is re-established on
    exec, so it is the child's own.  Falls back to ``ru_maxrss``
    (kilobytes on Linux, bytes on macOS — normalized) elsewhere.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:  # pragma: no cover - no procfs
        pass
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX platform
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        peak //= 1024
    return int(peak)


def _experiment_round_bench(
    num_users: int, rounds: int, workers: int = 0, shards: int = 1
) -> dict:
    """Wall time, clients/s, and peak RSS of honest rounds over the bus.

    Training runs *before* the clock starts (the metric is the round
    pipeline, not the trainer), and so does worker-pool warm-up — a cold
    ``ProcessPoolExecutor`` pays process startup inside the first round,
    which would skew every parallel-vs-serial comparison.

    ``peak_rss_kb`` is the process-lifetime high-water mark sampled after
    the rounds complete.  It is monotonic across a bench run (earlier
    entries can only report lower-or-equal peaks), so treat it as "memory
    needed to get this far", not a per-entry footprint; it is recorded
    for snapshot archaeology and deliberately not regression-gated.
    """
    from repro.crypto import group_ops
    from repro.experiments.common import Deployment

    parallelism = None
    if workers:
        from repro.scale import ScaleConfig

        parallelism = ScaleConfig(workers=workers, shards=shards)
    deployment = Deployment.build(
        num_users=num_users, seed=b"bench-rounds", parallelism=parallelism
    )
    deployment.local_vectors()
    if workers:
        # Forked workers inherit the parent heap copy-on-write; collecting
        # garbage left by earlier experiments first keeps the page-copy tax
        # out of the timed rounds (it showed up as ~30% on u1000).
        gc.collect()
    with deployment.engine as engine:
        engine.warm_scale_pool()
        counters_before = group_ops.counters()
        start = time.perf_counter()
        for round_id in range(1, rounds + 1):
            deployment.honest_round(round_id)
        wall = time.perf_counter() - start
    served = num_users * rounds
    return {
        "num_users": num_users,
        "rounds": rounds,
        "workers": workers,
        "wall_s": wall,
        "clients_per_sec": served / wall if wall > 0 else math.inf,
        "peak_rss_kb": _peak_rss_kb(),
        # Observables, never gated: what the public-key fast path absorbed
        # during the timed rounds (process-wide, exact for serial runs).
        "pk_counters": group_ops.counters_delta(counters_before),
    }


def _experiment_benches(quick: bool, workers: int = 0) -> dict[str, dict]:
    # Keys carry the workload shape so a quick snapshot never compares a
    # 4-client round against a full snapshot's 8-client round.  Parallel
    # entries append ``wN`` and ride next to their serial twin, so the
    # snapshot itself documents the parallel-vs-serial speedup.
    if quick:
        benches = {"round_pipeline/u4x1": _experiment_round_bench(4, 1)}
        if workers:
            benches[f"round_pipeline/u4x1w{workers}"] = _experiment_round_bench(
                4, 1, workers=workers, shards=2
            )
        return benches
    benches = {
        "round_pipeline/u8x2": _experiment_round_bench(8, 2),
        "round_pipeline/u16x1": _experiment_round_bench(16, 1),
        "round_pipeline/u1000x1": _experiment_round_bench(1000, 1),
    }
    if workers:
        # Each parallel run rides directly after its serial twin so the
        # speedup pair is measured under the same allocator/heap state.
        benches[f"round_pipeline/u1000x1w{workers}"] = _experiment_round_bench(
            1000, 1, workers=workers, shards=8
        )
        benches["round_pipeline/u4096x1"] = _experiment_round_bench(4096, 1)
        benches[f"round_pipeline/u4096x1w{workers}"] = _experiment_round_bench(
            4096, 1, workers=workers, shards=8
        )
    return benches


def _mem_available_kb() -> int | None:
    """MemAvailable from /proc/meminfo (None off-Linux)."""
    try:
        with open("/proc/meminfo") as handle:
            for line in handle:
                if line.startswith("MemAvailable:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return None


#: u1M streaming entry runs only when this much memory is free: the run
#: itself needs well under 1 GiB, but a box that close to the edge is
#: swapping and the wall-clock number would be meaningless.
_U1M_MEM_FLOOR_KB = 4 * 1024 * 1024


def _stream_benches(quick: bool) -> dict[str, dict]:
    """Large-cohort streaming-ingest entries, one subprocess each.

    ``ru_maxrss`` is a process-lifetime high-water mark, so measuring the
    streaming path inside the bench process would only report "whatever
    the earlier benches peaked at".  Each entry instead runs
    :func:`repro.perf.stream_smoke.run_stream_smoke` in a fresh
    interpreter and reads back its JSON — the reported ``peak_rss_kb``
    is the real cost of that ingest, nothing else.  The section is an
    observable (never regression-gated): the CI ``large-cohort`` job is
    where the RSS budget is enforced.
    """
    import os
    import subprocess
    import sys

    import repro

    configs = [(10_000, 32, 128)] if quick else [(100_000, 64, 256)]
    if not quick:
        available = _mem_available_kb()
        if available is not None and available >= _U1M_MEM_FLOOR_KB:
            configs.append((1_000_000, 16, 256))
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = (
        src_dir + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src_dir
    )
    entries: dict[str, dict] = {}
    for users, length, group_size in configs:
        script = (
            "import json; from repro.perf import stream_smoke; "
            f"print(json.dumps(stream_smoke.run_stream_smoke({users}, "
            f"length={length}, subgroup_size={group_size})))"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
        )
        key = f"stream/u{users}"
        if proc.returncode != 0:
            entries[key] = {"error": proc.stderr.strip()[-500:]}
            continue
        entries[key] = json.loads(proc.stdout)
    return entries


def _chaos_bench(quick: bool = False) -> dict:
    """Self-healing telemetry over a handful of chaos schedules.

    Runs :func:`~repro.service.chaos.run_service_schedule` against
    in-memory storage and aggregates its recovery counters.  The numbers
    land in the snapshot's ``robustness`` section, which
    :func:`compare_snapshots` deliberately never walks: recovery wall
    time depends on the sampled fault schedule and the machine, so the
    row is tracked as an observable, not gated as a regression metric.
    """
    from repro.service.chaos import run_service_schedule
    from repro.service.storage import MemoryBackend

    schedules = 4 if quick else 10
    fault_rate = 0.1
    totals = {
        "rounds_finalized": 0,
        "rounds_recovered": 0,
        "rounds_settled": 0,
        "rounds_aborted": 0,
        "restarts": 0,
        "kills": 0,
        "audit_repairs": 0,
    }
    recovery_seconds = []
    for index in range(schedules):
        backend = MemoryBackend()
        report = run_service_schedule(
            lambda: backend, seed=b"bench-chaos-3", index=index,
            fault_rate=fault_rate,
        )
        for key in totals:
            totals[key] += report[key]
        if report["restarts"]:
            recovery_seconds.append(
                report["recovery_time"] / report["restarts"]
            )
    totals.update(
        schedules=schedules,
        fault_rate=fault_rate,
        mean_recovery_s=(
            sum(recovery_seconds) / len(recovery_seconds)
            if recovery_seconds
            else 0.0
        ),
    )
    return totals


def _fleet_bench(quick: bool = False) -> dict:
    """Fleet-resilience telemetry over a few degraded-link schedules.

    Runs :func:`~repro.service.fleet.run_fleet_schedule` across the
    condition profiles and aggregates what the defenses absorbed.  Like
    the chaos section, the numbers land in a snapshot section that
    :func:`compare_snapshots` never walks: settle time depends on the
    sampled weather, so the row is an observable, not a gate.
    """
    from repro.network.conditions import PROFILES
    from repro.service.fleet import run_fleet_schedule

    per_profile = 2 if quick else 4
    totals = {
        "rounds": 0,
        "rounds_recovered": 0,
        "rejoins": 0,
        "resumed": 0,
        "full_attestations": 0,
        "perturbed_submissions": 0,
        "submissions_reconciled": 0,
    }
    settle_ms = []
    for profile in sorted(PROFILES):
        for index in range(per_profile):
            report = run_fleet_schedule(
                seed=b"bench-fleet", index=index, profile=profile
            )
            for key in totals:
                totals[key] += report[key]
            settle_ms.append(report["mean_settle_ms"])
    totals.update(
        schedules=per_profile * len(PROFILES),
        mean_settle_ms=sum(settle_ms) / len(settle_ms),
        reattestations_avoided=totals["resumed"],
    )
    return totals


# ----------------------------------------------------------------- snapshots


def run_benchmarks(
    quick: bool = False,
    workers: int = 0,
    chaos: bool = False,
    fleet: bool = False,
) -> dict:
    """Run every bench; returns the snapshot document (not yet written).

    ``workers > 0`` additionally times the parallel round pipeline next
    to its serial twin and records the measured speedup.
    """
    min_time = 0.1 if quick else 0.25
    sizes = _QUICK_SIZES if quick else _FULL_SIZES
    calibration = calibration_score(min_time=min_time)
    results: dict[str, dict] = {}
    speedups: dict[str, float] = {}
    pk_sizes = _PK_QUICK_SIZES if quick else _PK_SIZES
    plan = [(name, bench, sizes) for name, bench in _MICRO_BENCHES.items()]
    plan += [(name, bench, pk_sizes) for name, bench in _PK_BENCHES.items()]
    for name, bench, bench_sizes in plan:
        for length in bench_sizes:
            fast, slow = bench(length, min_time)
            key = f"{name}/n{length}"
            speedup = fast["ops_per_sec"] / slow["ops_per_sec"]
            results[key] = {
                "ops_per_sec": fast["ops_per_sec"],
                "wall_ms": fast["wall_ms"],
                "normalized": fast["ops_per_sec"] / calibration,
                "scalar_ops_per_sec": slow["ops_per_sec"],
                "scalar_wall_ms": slow["wall_ms"],
                "speedup": speedup,
                # Lifetime high-water mark when this row finished —
                # monotonic across the run (snapshot archaeology, not a
                # per-row footprint) and never regression-gated.
                "peak_rss_kb": _peak_rss_kb(),
            }
            speedups[key] = speedup
    experiments = _experiment_benches(quick, workers)
    for entry in experiments.values():
        entry["normalized"] = entry["clients_per_sec"] / calibration
    for key, entry in experiments.items():
        if entry.get("workers"):
            serial = experiments.get(key[: key.rindex("w")])
            if serial is not None:
                entry["speedup_vs_serial"] = (
                    entry["clients_per_sec"] / serial["clients_per_sec"]
                )
    snapshot = {
        "schema": SCHEMA_VERSION,
        "date": _dt.date.today().isoformat(),
        "quick": quick,
        "workers": workers,
        "calibration_ops_per_sec": calibration,
        "results": results,
        "speedups": speedups,
        "experiments": experiments,
        "streaming": _stream_benches(quick),
        "peak_rss_kb": _peak_rss_kb(),
    }
    if chaos:
        snapshot["robustness"] = _chaos_bench(quick)
    if fleet:
        snapshot["fleet"] = _fleet_bench(quick)
    return snapshot


def snapshot_path(directory: Path, date: str | None = None) -> Path:
    date = date or _dt.date.today().isoformat()
    return directory / f"BENCH_{date}.json"


def find_baseline(directory: Path) -> Path | None:
    """The newest committed ``BENCH_*.json`` (dates sort lexicographically).

    A same-date snapshot is a valid baseline: comparison happens against
    the file's *committed* contents before the new snapshot overwrites it.
    """
    candidates = sorted(directory.glob("BENCH_*.json"))
    return candidates[-1] if candidates else None


def compare_snapshots(
    current: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD
) -> dict:
    """Compare self-normalized scores; metrics below ``1 - threshold`` regress.

    Micro benches are compared by **speedup** (vectorized ops/s over the
    frozen scalar reference, measured back-to-back in the same run).  The
    scalar reference never changes, so it is a per-metric machine probe
    with the same CPU/memory profile as the kernel it calibrates — a
    shared or throttled runner shifts both sides equally and the ratio
    holds, while an actual fast-path regression collapses it.  A separate
    wall-clock calibration score is recorded for context but deliberately
    not gated on: run-level machine drift makes it a noisy yardstick.

    Experiment rounds have no scalar twin; their calibration-normalized
    clients/s is compared instead.  Only metrics present in *both*
    snapshots are compared (a renamed or new bench is reported as
    unmatched, never as a failure).
    """
    comparisons: list[dict] = []
    regressions: list[dict] = []
    floor = 1.0 - threshold

    def check(metric: str, now: float, then: float) -> None:
        ratio = now / then if then > 0 else math.inf
        entry = {
            "metric": metric,
            "current": now,
            "baseline": then,
            "ratio": ratio,
            "regressed": ratio < floor,
        }
        comparisons.append(entry)
        if entry["regressed"]:
            regressions.append(entry)

    for key, result in current.get("results", {}).items():
        base = baseline.get("results", {}).get(key)
        if base is not None:
            check(key, result["speedup"], base["speedup"])
    for key, result in current.get("experiments", {}).items():
        base = baseline.get("experiments", {}).get(key)
        if base is not None:
            check(f"experiments/{key}", result["normalized"], base["normalized"])
    unmatched = sorted(
        set(current.get("results", {})) ^ set(baseline.get("results", {}))
    )
    return {
        "threshold": threshold,
        "comparisons": comparisons,
        "regressions": regressions,
        "unmatched": unmatched,
        "ok": not regressions,
    }


def write_snapshot(snapshot: dict, path: Path) -> None:
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")


# ----------------------------------------------------------------- reporting


def render_report(snapshot: dict, comparison: dict | None) -> str:
    lines = [
        f"repro bench — {snapshot['date']}"
        + (" (quick)" if snapshot.get("quick") else ""),
        f"calibration: {snapshot['calibration_ops_per_sec']:.0f} ops/s",
        "",
        f"{'benchmark':<24} {'vectorized':>14} {'scalar':>14} {'speedup':>9}",
    ]
    for key, result in sorted(snapshot["results"].items()):
        lines.append(
            f"{key:<24} {result['ops_per_sec']:>11.1f}/s "
            f"{result['scalar_ops_per_sec']:>11.1f}/s "
            f"{result['speedup']:>8.1f}x"
        )
    lines.append("")
    for key, entry in sorted(snapshot["experiments"].items()):
        line = (
            f"{key}: {entry['num_users']} clients x {entry['rounds']} rounds "
            f"in {entry['wall_s']:.2f}s ({entry['clients_per_sec']:.1f} clients/s)"
        )
        if entry.get("workers"):
            line += f" [workers={entry['workers']}]"
        if "speedup_vs_serial" in entry:
            line += f" — {entry['speedup_vs_serial']:.2f}x vs serial"
        if entry.get("peak_rss_kb"):
            line += f" (peak RSS {entry['peak_rss_kb'] / 1024:.0f} MiB)"
        lines.append(line)
        pk = {
            k: v for k, v in (entry.get("pk_counters") or {}).items() if v
        }
        if pk:
            lines.append(
                "  pk fast path: "
                + ", ".join(f"{k}={v}" for k, v in sorted(pk.items()))
            )
    streaming = snapshot.get("streaming")
    if streaming:
        lines.append("")
        for key, entry in sorted(streaming.items()):
            if "error" in entry:
                lines.append(f"{key}: FAILED — {entry['error']}")
                continue
            rss = entry.get("peak_rss_kb")
            lines.append(
                f"{key} (not gated): {entry['num_users']} users x "
                f"{entry['length']} words in subgroups of "
                f"{entry['subgroup_size']} — {entry['dropouts']} repaired, "
                f"bit-exact {entry['exact']}, {entry['wall_s']:.2f}s "
                f"({entry['users_per_sec']:.0f} users/s)"
                + (
                    f", peak RSS {rss / 1024:.0f} MiB (own process)"
                    if rss is not None
                    else ""
                )
            )
    robustness = snapshot.get("robustness")
    if robustness:
        lines.append("")
        lines.append(
            f"robustness (not gated): {robustness['schedules']} chaos "
            f"schedules at fault rate {robustness['fault_rate']} — "
            f"{robustness['rounds_finalized']} rounds finalized, "
            f"{robustness['rounds_recovered']} recovered, "
            f"{robustness['rounds_settled']} settled, "
            f"{robustness['rounds_aborted']} aborted; "
            f"{robustness['restarts']} restarts "
            f"({robustness['kills']} kills), "
            f"{robustness['audit_repairs']} audit repairs, "
            f"mean recovery {robustness['mean_recovery_s'] * 1000:.1f} ms"
        )
    fleet = snapshot.get("fleet")
    if fleet:
        lines.append("")
        lines.append(
            f"fleet (not gated): {fleet['schedules']} degraded-link "
            f"schedules — {fleet['rounds']} rounds "
            f"({fleet['rounds_recovered']} recovered), "
            f"mean time-to-settle {fleet['mean_settle_ms']:.1f} ms, "
            f"{fleet['rejoins']} rejoins with "
            f"{fleet['reattestations_avoided']} re-attestations avoided "
            f"({fleet['full_attestations']} full quote-verifies paid), "
            f"{fleet['perturbed_submissions']} perturbed submissions "
            f"all rejected, "
            f"{fleet['submissions_reconciled']} reconciled at finalize"
        )
    if comparison is not None:
        lines.append("")
        if comparison["ok"]:
            lines.append(
                f"vs baseline: OK — no metric below "
                f"{(1 - comparison['threshold']) * 100:.0f}% of baseline"
            )
        else:
            lines.append("vs baseline: REGRESSIONS")
            for entry in comparison["regressions"]:
                lines.append(
                    f"  {entry['metric']}: {entry['ratio'] * 100:.0f}% "
                    f"of baseline (threshold "
                    f"{(1 - comparison['threshold']) * 100:.0f}%)"
                )
    return "\n".join(lines)


def main(
    out_dir: Path,
    quick: bool = False,
    baseline: Path | None = None,
    threshold: float = DEFAULT_THRESHOLD,
    as_json: bool = False,
    write: bool = True,
    workers: int = 0,
    chaos: bool = False,
    fleet: bool = False,
) -> int:
    """The ``repro bench`` entry point; returns the process exit code."""
    snapshot = run_benchmarks(
        quick=quick, workers=workers, chaos=chaos, fleet=fleet
    )
    path = snapshot_path(out_dir, snapshot["date"])
    if baseline is None:
        baseline = find_baseline(out_dir)
    comparison = None
    if baseline is not None:
        try:
            baseline_doc = json.loads(Path(baseline).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read baseline {baseline}: {exc}")
            return 2
        comparison = compare_snapshots(snapshot, baseline_doc, threshold)
    if write:
        write_snapshot(snapshot, path)
    if as_json:
        print(
            json.dumps(
                {
                    "snapshot": str(path) if write else None,
                    "baseline": str(baseline) if baseline else None,
                    "date": snapshot["date"],
                    "speedups": snapshot["speedups"],
                    "robustness": snapshot.get("robustness"),
                    "fleet": snapshot.get("fleet"),
                    "comparison": comparison,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(render_report(snapshot, comparison))
        if write:
            print(f"\nsnapshot written to {path}")
    if comparison is not None and not comparison["ok"]:
        return 1
    return 0
