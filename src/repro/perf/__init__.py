"""Vectorized kernel layer and the benchmark-regression harness.

The §3 secure-aggregation pipeline is arithmetic over ``Z_{2^64}`` vectors
plus bulk pseudorandomness — exactly the shapes numpy executes at memory
bandwidth while pure Python pays interpreter overhead per element.  This
package concentrates the fast paths:

* :mod:`repro.perf.kernels` — ring arithmetic and big-endian word
  serialization as ``np.uint64`` array operations, bit-exact against the
  scalar definitions;
* :mod:`repro.perf.reference` — the scalar definitions themselves, kept
  importable so parity tests and benchmarks can always compare the two
  implementations on the same inputs;
* :mod:`repro.perf.bench` — the ``repro bench`` harness: runs micro and
  experiment benchmarks, emits ``BENCH_<date>.json`` snapshots, and
  compares against a previous snapshot with a regression threshold.

The public-key hot path (fixed-base windowed exponentiation, Pippenger
multi-exponentiation, batch Schnorr/Pedersen verification, DH session
resumption) lives in :mod:`repro.crypto.group_ops` and is re-exported
here — it is a performance layer in the same sense as the kernels, with
its own naive twins in :mod:`repro.perf.reference` and its own kernel
rows in the bench table.

Determinism contract
--------------------

Every fast path must produce *bit-identical* results to its scalar
reference under the same DRBG seed.  The chaos and Byzantine suites rely
on exact same-seed replay; a kernel that is "close enough" in floating
point or consumes the DRBG stream differently is a correctness bug here,
not an optimization.  ``tests/perf/test_parity.py`` enforces the contract
with seeded sweeps over degenerate and large lengths.
"""

from repro.crypto.group_ops import (
    DHSessionCache,
    FixedBaseTable,
    fixed_power,
    multi_power,
    register_base,
)
from repro.perf.kernels import (
    as_ring,
    as_ring_rows,
    be_words_to_bytes,
    bytes_to_be_words,
    ring_add,
    ring_neg,
    ring_sub,
    ring_sum_rows,
    ring_words,
)

__all__ = [
    "DHSessionCache",
    "FixedBaseTable",
    "as_ring",
    "as_ring_rows",
    "be_words_to_bytes",
    "bytes_to_be_words",
    "fixed_power",
    "multi_power",
    "register_base",
    "ring_add",
    "ring_neg",
    "ring_sub",
    "ring_sum_rows",
    "ring_words",
]
