"""Numpy ring-arithmetic and serialization kernels.

All §3 blinding math happens in ``Z_{2^modulus_bits}`` with
``modulus_bits <= 64``.  Native ``np.uint64`` arithmetic wraps modulo
``2^64``, and because ``2^modulus_bits`` divides ``2^64`` a final bitmask
reduces any wrapped result to the correct smaller ring — so every kernel
here is bit-exact against the ``(x op y) % modulus`` scalar definition,
including multi-term sums whose intermediate totals overflow 64 bits.

Inputs arrive from the wire as Python-int sequences; :func:`as_ring`
converts once at the boundary (falling back to an explicit ``% modulus``
pass for out-of-range values, matching scalar semantics) so downstream
phases can run O(1) array operations instead of O(length) interpreter
loops.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

U64 = np.uint64
#: Big-endian unsigned 64-bit word — the wire order of every ring vector.
BE_U64 = np.dtype(">u8")

_FULL_MASK = U64(0xFFFFFFFFFFFFFFFF)


def ring_bitmask(modulus_bits: int) -> np.uint64:
    """The ``2^modulus_bits - 1`` mask as a ``np.uint64`` scalar."""
    if not 1 <= modulus_bits <= 64:
        raise ValueError("modulus_bits must be in [1, 64]")
    if modulus_bits == 64:
        return _FULL_MASK
    return U64((1 << modulus_bits) - 1)


def ring_reduce(arr: np.ndarray, modulus_bits: int) -> np.ndarray:
    """Reduce a ``np.uint64`` array into ``[0, 2^modulus_bits)``."""
    if modulus_bits == 64:
        return arr
    return arr & ring_bitmask(modulus_bits)


_reduce = ring_reduce


def as_ring(values: Sequence[int] | np.ndarray, modulus_bits: int = 64) -> np.ndarray:
    """A 1-D ``np.uint64`` ring vector from any integer sequence.

    Values already in ``[0, 2^64)`` convert directly; anything outside
    (negative or arbitrarily large Python ints) takes a scalar ``%``
    fallback so the result always equals ``[int(v) % modulus for v in
    values]``.
    """
    if isinstance(values, np.ndarray) and values.dtype == U64:
        return _reduce(values, modulus_bits)
    try:
        arr = np.asarray(values, dtype=U64)
    except (OverflowError, TypeError, ValueError):
        modulus = 1 << modulus_bits
        arr = np.asarray([int(v) % modulus for v in values], dtype=U64)
    return _reduce(arr, modulus_bits)


def as_ring_rows(
    rows: Sequence[Sequence[int]] | np.ndarray, modulus_bits: int = 64
) -> np.ndarray:
    """A 2-D ``np.uint64`` matrix (one ring vector per row)."""
    if isinstance(rows, np.ndarray) and rows.dtype == U64 and rows.ndim == 2:
        return _reduce(rows, modulus_bits)
    try:
        arr = np.asarray(rows, dtype=U64)
        if arr.ndim != 2:
            raise ValueError("rows do not form a matrix")
    except (OverflowError, TypeError, ValueError):
        modulus = 1 << modulus_bits
        arr = np.asarray(
            [[int(v) % modulus for v in row] for row in rows], dtype=U64
        )
    return _reduce(arr, modulus_bits)


def ring_add(
    left: np.ndarray | Sequence[int],
    right: np.ndarray | Sequence[int],
    modulus_bits: int = 64,
) -> np.ndarray:
    """Component-wise ``(a + b) mod 2^modulus_bits``."""
    return _reduce(
        as_ring(left, modulus_bits) + as_ring(right, modulus_bits), modulus_bits
    )


def ring_sub(
    left: np.ndarray | Sequence[int],
    right: np.ndarray | Sequence[int],
    modulus_bits: int = 64,
) -> np.ndarray:
    """Component-wise ``(a - b) mod 2^modulus_bits``."""
    return _reduce(
        as_ring(left, modulus_bits) - as_ring(right, modulus_bits), modulus_bits
    )


def ring_neg(
    values: np.ndarray | Sequence[int], modulus_bits: int = 64
) -> np.ndarray:
    """Component-wise ``(-a) mod 2^modulus_bits``."""
    return _reduce(U64(0) - as_ring(values, modulus_bits), modulus_bits)


def ring_sum_rows(
    rows: np.ndarray | Sequence[Sequence[int]], modulus_bits: int = 64
) -> np.ndarray:
    """Column-wise ring sum of a matrix of ring vectors.

    ``uint64`` accumulation wraps mod ``2^64``; reducing the wrapped total
    by the ring bitmask yields exactly ``sum(column) % 2^modulus_bits``.
    """
    matrix = as_ring_rows(rows, modulus_bits)
    return _reduce(matrix.sum(axis=0, dtype=U64), modulus_bits)


def ring_accumulate(
    rows, modulus_bits: int = 64, chunk_rows: int = 1024
) -> np.ndarray:
    """Column-wise ring sum of an *iterable* of ring vectors, chunked.

    Bit-identical to :func:`ring_sum_rows` (uint64 addition mod ``2^64``
    is associative, and ``2^modulus_bits`` divides ``2^64``), but never
    materializes the full row-major matrix: rows are folded in blocks of
    ``chunk_rows``, so peak memory is O(chunk_rows · length) regardless
    of how many rows stream past.  This is the finalize-path sum for the
    streaming ingest story — a u1M round folds through a ~1k-row window.
    """
    if chunk_rows < 1:
        raise ValueError("chunk_rows must be >= 1")
    total: np.ndarray | None = None
    buffer: list = []
    for row in rows:
        buffer.append(row)
        if len(buffer) >= chunk_rows:
            partial = ring_sum_rows(buffer, modulus_bits)
            total = partial if total is None else total + partial
            buffer.clear()
    if buffer:
        partial = ring_sum_rows(buffer, modulus_bits)
        total = partial if total is None else total + partial
    if total is None:
        raise ValueError("ring_accumulate needs at least one row")
    return _reduce(total, modulus_bits)


def limb_column_sums(
    rows: np.ndarray | Sequence[Sequence[int]],
    num_limbs: int,
    limb_bits: int = 16,
) -> np.ndarray:
    """Per-limb column sums of a matrix of ring vectors.

    Returns a ``(num_limbs, length)`` ``np.uint64`` array where entry
    ``[l][i]`` is ``Σ_rows limb_l(row[i])`` — the quantity the mask
    commitment scheme publishes per limb column.  Each sum is bounded by
    ``num_rows · 2^limb_bits``, far inside ``uint64``, so the accumulation
    is exact and the result is bit-identical to the per-word scalar loop.
    """
    matrix = as_ring_rows(rows)
    limb_mask = U64((1 << limb_bits) - 1)
    return np.stack(
        [
            ((matrix >> U64(limb_bits * l)) & limb_mask).sum(axis=0, dtype=U64)
            for l in range(num_limbs)
        ]
    )


def ring_words(arr: np.ndarray | Sequence[int]) -> list[int]:
    """Back to a list of Python ints (the legacy in-memory representation)."""
    if isinstance(arr, np.ndarray):
        return arr.tolist()
    return [int(v) for v in arr]


# ------------------------------------------------------------- serialization


def be_words_to_bytes(words: Sequence[int] | np.ndarray) -> bytes:
    """``b"".join(int(v).to_bytes(8, "big") for v in words)``, in one pass.

    Out-of-range words fall back to the scalar join so the same
    ``OverflowError`` surfaces for values outside ``[0, 2^64)``.
    """
    try:
        arr = np.asarray(words, dtype=U64)
    except (OverflowError, TypeError, ValueError):
        return b"".join(int(v).to_bytes(8, "big") for v in words)
    return arr.astype(BE_U64, copy=False).tobytes()


def bytes_to_be_words(payload: bytes) -> tuple[int, ...]:
    """Inverse of :func:`be_words_to_bytes`; returns Python ints.

    ``payload`` length must be a multiple of 8 — callers validate framing
    before parsing, exactly as the scalar loops did.
    """
    return tuple(np.frombuffer(payload, dtype=BE_U64).tolist())
