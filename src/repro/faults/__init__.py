"""Deterministic fault injection for the Glimmer runtime.

The paper's trust model makes the *surroundings* of the enclave hostile:
the untrusted OS may kill an enclave at any instruction, the network may
drop either leg of any exchange, and the blinding service may crash
between sampling masks and revealing them.  This package turns those
failure modes into named **fault sites** threaded through the stack
(transport delivery, enclave ecalls, client lifecycle, blinder lifecycle,
engine phase boundaries) so the chaos suite can prove the runtime's
exact-or-abort guarantee under adversarial failure timing.

The same treatment extends *below* the protocol into the hosting layer:
``storage.*`` sites (I/O errors, torn writes, silent corruption, writes
lost after their ack) injected through
:class:`~repro.faults.storage.FaultyStorageBackend`, per-subsystem sites
for queue admission and journal/audit appends, and ``service.kill`` hard
kill-points at service lifecycle stages
(:mod:`repro.faults.service_plan`) — so the service chaos suite can prove
the *service's* exact-or-recovered guarantee across restarts.

Everything is DRBG-seeded: a :class:`FaultPlan` plus a seed fully
determines which faults fire and when, so any failing schedule replays
bit-for-bit.  Components that host a fault site call
:meth:`FaultInjector.fire` with context (client id, round, phase, message
kind) and act on the returned action — or do nothing when no injector is
wired, which keeps the happy path untouched.

Usage::

    plan = FaultPlan(
        specs=(FaultSpec(site=SITE_CLIENT_POST_SIGN, target="u03", round_id=7),),
        rates={SITE_RESPONSE: 0.05},
    )
    injector = FaultInjector(plan, seed=b"chaos-42")
    deployment.enable_faults(injector)

or sample a random-but-reproducible schedule::

    plan = FaultPlan.sample(HmacDrbg(b"chaos-42"), fault_rate=0.1, clients=ids)
"""

from repro.faults.plan import (
    ACTION_CRASH,
    ACTION_CORRUPT,
    ACTION_DROP,
    ACTION_IO_ERROR,
    ACTION_KILL,
    ACTION_LOSE,
    ACTION_LOST_AFTER_ACK,
    ACTION_PRESSURE,
    ACTION_STALL,
    ACTION_TORN_WRITE,
    DEFAULT_ACTIONS,
    PROBABILISTIC_SITES,
    SITE_AUDIT_APPEND,
    SITE_BLINDER,
    SITE_CLIENT_POST_SIGN,
    SITE_CLIENT_PRE_SIGN,
    SITE_CLIENT_PROVISION,
    SITE_ECALL,
    SITE_EPC_PRESSURE,
    SITE_JOURNAL_APPEND,
    SITE_PHASE_STALL,
    SITE_QUEUE_ADMIT,
    SITE_REQUEST,
    SITE_RESPONSE,
    SITE_SEAL_LOSS,
    SITE_SERVICE_KILL,
    SITE_STORAGE_APPEND,
    SITE_STORAGE_FLUSH,
    SITE_STORAGE_PUT,
    FaultPlan,
    FaultSpec,
)
from repro.faults.injector import FaultInjector, FiredFault
from repro.faults.service_plan import (
    KILL_STAGES,
    STORAGE_SITES,
    sample_service_plan,
)
from repro.faults.storage import FaultyStorageBackend, corrupt_value, is_torn

__all__ = [
    "ACTION_CRASH",
    "ACTION_CORRUPT",
    "ACTION_DROP",
    "ACTION_IO_ERROR",
    "ACTION_KILL",
    "ACTION_LOSE",
    "ACTION_LOST_AFTER_ACK",
    "ACTION_PRESSURE",
    "ACTION_STALL",
    "ACTION_TORN_WRITE",
    "DEFAULT_ACTIONS",
    "KILL_STAGES",
    "PROBABILISTIC_SITES",
    "SITE_AUDIT_APPEND",
    "SITE_BLINDER",
    "SITE_CLIENT_POST_SIGN",
    "SITE_CLIENT_PRE_SIGN",
    "SITE_CLIENT_PROVISION",
    "SITE_ECALL",
    "SITE_EPC_PRESSURE",
    "SITE_JOURNAL_APPEND",
    "SITE_PHASE_STALL",
    "SITE_QUEUE_ADMIT",
    "SITE_REQUEST",
    "SITE_RESPONSE",
    "SITE_SEAL_LOSS",
    "SITE_SERVICE_KILL",
    "SITE_STORAGE_APPEND",
    "SITE_STORAGE_FLUSH",
    "SITE_STORAGE_PUT",
    "STORAGE_SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultyStorageBackend",
    "FiredFault",
    "corrupt_value",
    "is_torn",
    "sample_service_plan",
]
