"""The live fault injector: plan + seed → deterministic fault firings.

Determinism contract: given the same :class:`FaultPlan`, the same seed,
and the same sequence of :meth:`FaultInjector.fire` visits (which the
simulator guarantees — everything runs sequentially off seeded DRBGs),
the injector fires the same faults in the same order.  The :attr:`fired`
log is the replay witness: the chaos harness compares two runs' logs
entry-by-entry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import HmacDrbg
from repro.faults.plan import DEFAULT_ACTIONS, ACTION_DROP, FaultPlan


@dataclass(frozen=True)
class FiredFault:
    """One fault that actually fired, in firing order."""

    index: int
    site: str
    action: str
    context: tuple[tuple[str, str], ...]

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "site": self.site,
            "action": self.action,
            "context": dict(self.context),
        }


def _freeze_context(context: dict) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((key, str(value)) for key, value in context.items()))


class FaultInjector:
    """Decides, per fault-site visit, whether the environment misbehaves.

    Scheduled specs take precedence over background rates; a spec fires
    exactly once (on its ``at_hit``-th matching visit).  Background rates
    draw from the injector's private DRBG, and a draw happens only when
    the visited site has a nonzero rate — so adding pressure on one site
    never perturbs the random stream another site sees.
    """

    def __init__(self, plan: FaultPlan, seed: bytes = b"fault-injector") -> None:
        self.plan = plan
        self._rng = HmacDrbg(seed, personalization="fault-injector")
        self._hits: dict[int, int] = {}
        self._spent: set[int] = set()
        self.fired: list[FiredFault] = []

    def fire(self, site: str, **context) -> str | None:
        """Visit a fault site; returns the action to inject, or ``None``.

        The caller supplies whatever context it has (``client_id``,
        ``round_id``, ``phase``, ``kind``); specs filter on it and the
        fired log records it.
        """
        action = None
        for index, spec in enumerate(self.plan.specs):
            if spec.site != site or index in self._spent:
                continue
            if not spec.matches(context):
                continue
            count = self._hits.get(index, 0) + 1
            self._hits[index] = count
            if count >= spec.at_hit:
                self._spent.add(index)
                action = spec.resolved_action()
                break
        if action is None:
            rate = float(self.plan.rates.get(site, 0.0))
            if rate > 0.0 and self._rng.uniform() < rate:
                action = DEFAULT_ACTIONS.get(site, ACTION_DROP)
        if action is not None:
            self.fired.append(
                FiredFault(
                    index=len(self.fired),
                    site=site,
                    action=action,
                    context=_freeze_context(context),
                )
            )
        return action

    def fired_log(self) -> tuple[tuple[str, str, tuple[tuple[str, str], ...]], ...]:
        """A hashable summary of everything fired, for replay comparison."""
        return tuple((f.site, f.action, f.context) for f in self.fired)
