"""Deterministic storage misbehavior: the FaultyStorageBackend wrapper.

The service's durability story rests on its storage backend honoring an
acknowledged write.  Real disks and databases break that promise in a
handful of canonical ways, each of which this wrapper reproduces on
schedule at the ``storage.*`` fault sites:

* **io-error** — the operation raises and nothing was written.  This is
  the transient failure the retry/backoff layer exists for.
* **torn-write** — a recognizable garbage record lands in storage *and*
  the operation raises: the caller retries (and usually succeeds), but
  the torn record stays behind for recovery code to step over.
* **corrupt** — the write is acknowledged but what hit storage is not
  what was written (bit rot, a buggy firmware cache).  Detectable only
  by integrity machinery above the backend — the audit log's hash chain.
* **lost-after-ack** — the write is acknowledged and simply never
  happens (a volatile write cache that lost power).  The caller moves on
  believing the record durable; recovery must reconcile the gap.

The wrapper composes with every concrete backend (memory, disk, sqlite)
because it only speaks the :class:`~repro.service.storage.StorageBackend`
interface.  Reads and deletes pass through unfaulted: the chaos model is
an adversarial *write path*, and keeping reads reliable is what makes
same-seed schedules replay deterministically.

Site mapping: every mutation visits its generic site (``storage.put``,
``storage.append``, ``storage.flush``); writes into well-known service
namespaces additionally visit a specific site first (``queue.admit`` for
``queue/*`` spaces, ``journal.append`` / ``audit.append`` for the round
journal and audit logs), so a plan can aim a scheduled pathology at
exactly one subsystem without background noise on the others.
"""

from __future__ import annotations

from typing import Any

from repro.errors import StorageFaultError
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ACTION_CORRUPT,
    ACTION_IO_ERROR,
    ACTION_LOST_AFTER_ACK,
    ACTION_TORN_WRITE,
    SITE_AUDIT_APPEND,
    SITE_JOURNAL_APPEND,
    SITE_QUEUE_ADMIT,
    SITE_STORAGE_APPEND,
    SITE_STORAGE_FLUSH,
    SITE_STORAGE_PUT,
)

TORN_MARKER = "__torn__"
CORRUPT_MARKER = "__corrupt__"

#: Log names that get their own specific fault site.
_SPECIFIC_LOG_SITES = {
    "round-journal": SITE_JOURNAL_APPEND,
    "audit": SITE_AUDIT_APPEND,
}


def corrupt_value(value: Any) -> Any:
    """What a silently-corrupting write leaves behind.

    Dict records keep their shape but gain a marker field and lose the
    integrity of one value (an audit entry's digest is flipped when
    present, which is exactly the corruption the hash chain must catch);
    everything else is wrapped so the original bytes are gone.
    """
    if isinstance(value, dict):
        doctored = dict(value)
        doctored[CORRUPT_MARKER] = True
        if isinstance(doctored.get("digest"), str):
            doctored["digest"] = doctored["digest"][::-1]
        return doctored
    return {CORRUPT_MARKER: True, "was": repr(value)}


def is_torn(entry: Any) -> bool:
    """True for the garbage record a torn write leaves behind."""
    return isinstance(entry, dict) and entry.get(TORN_MARKER) is True


class FaultyStorageBackend:
    """Wrap any backend; misbehave on writes per the injector's schedule.

    Duck-typed rather than subclassing
    :class:`repro.service.storage.StorageBackend` — the faults package
    must stay importable from the bottom of the stack (the enclave layer
    uses its sites), so it cannot pull the service package in at import
    time.
    """

    def __init__(self, inner, injector: FaultInjector) -> None:
        self.inner = inner
        self.injector = injector
        self.kind = inner.kind

    # ------------------------------------------------------------- plumbing

    def _fire(self, generic: str, specific: str | None, **context) -> str | None:
        # The specific site wins so a scheduled spec on e.g. the audit log
        # cannot be shadowed by a background rate on the generic site.
        if specific is not None:
            action = self.injector.fire(specific, **context)
            if action is not None:
                return action
        return self.injector.fire(generic, **context)

    # ------------------------------------------------------------ mutations

    def put(self, space: str, key: str, value: Any) -> None:
        specific = SITE_QUEUE_ADMIT if space.startswith("queue/") else None
        action = self._fire(
            SITE_STORAGE_PUT, specific, kind=space, key=str(key)
        )
        if action == ACTION_IO_ERROR:
            raise StorageFaultError(
                f"injected I/O error: put {space}/{key}"
            )
        if action == ACTION_TORN_WRITE:
            self.inner.put(space, key, {TORN_MARKER: True})
            raise StorageFaultError(
                f"injected torn write: put {space}/{key}"
            )
        if action == ACTION_LOST_AFTER_ACK:
            return  # acknowledged; never durable
        if action == ACTION_CORRUPT:
            self.inner.put(space, key, corrupt_value(value))
            return  # acknowledged; silently wrong
        self.inner.put(space, key, value)

    def append(self, log: str, entry: dict) -> int:
        action = self._fire(
            SITE_STORAGE_APPEND, _SPECIFIC_LOG_SITES.get(log), kind=log
        )
        if action == ACTION_IO_ERROR:
            raise StorageFaultError(f"injected I/O error: append {log}")
        if action == ACTION_TORN_WRITE:
            self.inner.append(log, {TORN_MARKER: True})
            raise StorageFaultError(f"injected torn write: append {log}")
        if action == ACTION_LOST_AFTER_ACK:
            # The sequence number the writer believes it got.
            return len(self.inner.read_log(log))
        if action == ACTION_CORRUPT:
            return self.inner.append(log, corrupt_value(dict(entry)))
        return self.inner.append(log, entry)

    def flush(self) -> None:
        if self._fire(SITE_STORAGE_FLUSH, None, kind="flush") == ACTION_IO_ERROR:
            raise StorageFaultError("injected I/O error: flush")
        self.inner.flush()

    # ----------------------------------------------------- reliable reads

    def get(self, space: str, key: str, default: Any = None) -> Any:
        return self.inner.get(space, key, default)

    def keys(self, space: str) -> list[str]:
        return self.inner.keys(space)

    def delete(self, space: str, key: str) -> bool:
        return self.inner.delete(space, key)

    def read_log(self, log: str) -> list[dict]:
        return self.inner.read_log(log)

    def items(self, space: str) -> list[tuple[str, Any]]:
        return self.inner.items(space)

    def close(self) -> None:
        self.inner.close()
