"""Fault sites, fault specs, and schedulable fault plans.

A **site** names a place in the stack where the environment can misbehave;
an **action** names what happens there.  A :class:`FaultSpec` pins a fault
to a site (optionally filtered by client, round, phase, or message kind)
and fires exactly once, on the ``at_hit``-th matching visit — that is how
"kill the blinder between open and provision" or "crash client 3 after
signing but before submitting" become replayable schedule entries.  A
:class:`FaultPlan` combines scheduled specs with per-site background
probabilities for soak-style chaos runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.crypto.drbg import HmacDrbg

# Fault sites ---------------------------------------------------------------
SITE_REQUEST = "transport.request"
"""The request leg of a :meth:`Network.call`, after the adversary chain."""

SITE_RESPONSE = "transport.response"
"""The response leg — the handler already ran when this fires."""

SITE_ECALL = "enclave.ecall"
"""Entry into any enclave on a faulted platform; the untrusted OS kills it."""

SITE_EPC_PRESSURE = "enclave.epc"
"""EPC thrash: the ecall proceeds but pays a paging penalty."""

SITE_SEAL_LOSS = "client.seal-loss"
"""Host storage loses a sealed round checkpoint during client restart."""

SITE_CLIENT_PROVISION = "client.provision"
"""Client process dies while handling a provision-mask command."""

SITE_CLIENT_PRE_SIGN = "client.pre-sign"
"""Client process dies after receiving a contribute command, before signing."""

SITE_CLIENT_POST_SIGN = "client.post-sign"
"""Client process dies after the Glimmer signed, before the submission."""

SITE_BLINDER = "blinder.lifecycle"
"""The blinding service crashes at a phase boundary and must fail over."""

SITE_PHASE_STALL = "engine.phase"
"""A phase opens late (models scheduler stalls; exercises phase deadlines)."""

SITE_STORAGE_PUT = "storage.put"
"""A key/value write to the service's storage backend misbehaves."""

SITE_STORAGE_APPEND = "storage.append"
"""An append to one of the backend's append-only logs misbehaves."""

SITE_STORAGE_FLUSH = "storage.flush"
"""A backend flush/commit fails (dirty state may or may not be durable)."""

SITE_QUEUE_ADMIT = "queue.admit"
"""A write into a tenant's durable submission-queue space misbehaves."""

SITE_JOURNAL_APPEND = "journal.append"
"""A round-journal append misbehaves (the crash-recovery record itself)."""

SITE_AUDIT_APPEND = "audit.append"
"""An audit-log append misbehaves (chain breaks are detectable by design)."""

SITE_SERVICE_KILL = "service.kill"
"""The whole service process dies at a lifecycle stage boundary.

The ``phase`` filter of a spec selects the stage (``post-submit``,
``post-take``, ``post-journal-open``, ``post-assign``, ``post-drive``,
``post-finalize-journal``, ``post-apply``); the service raises
:class:`~repro.errors.ServiceKilledError` there and the harness restarts
it from persisted state."""

# Fault actions -------------------------------------------------------------
ACTION_DROP = "drop"
ACTION_KILL = "kill"
ACTION_CRASH = "crash"
ACTION_LOSE = "lose"
ACTION_PRESSURE = "pressure"
ACTION_STALL = "stall"
ACTION_IO_ERROR = "io-error"
ACTION_TORN_WRITE = "torn-write"
ACTION_CORRUPT = "corrupt"
ACTION_LOST_AFTER_ACK = "lost-after-ack"

DEFAULT_ACTIONS: Mapping[str, str] = {
    SITE_REQUEST: ACTION_DROP,
    SITE_RESPONSE: ACTION_DROP,
    SITE_ECALL: ACTION_KILL,
    SITE_EPC_PRESSURE: ACTION_PRESSURE,
    SITE_SEAL_LOSS: ACTION_LOSE,
    SITE_CLIENT_PROVISION: ACTION_CRASH,
    SITE_CLIENT_PRE_SIGN: ACTION_CRASH,
    SITE_CLIENT_POST_SIGN: ACTION_CRASH,
    SITE_BLINDER: ACTION_CRASH,
    SITE_PHASE_STALL: ACTION_STALL,
    SITE_STORAGE_PUT: ACTION_IO_ERROR,
    SITE_STORAGE_APPEND: ACTION_IO_ERROR,
    SITE_STORAGE_FLUSH: ACTION_IO_ERROR,
    SITE_QUEUE_ADMIT: ACTION_IO_ERROR,
    SITE_JOURNAL_APPEND: ACTION_IO_ERROR,
    SITE_AUDIT_APPEND: ACTION_IO_ERROR,
    SITE_SERVICE_KILL: ACTION_KILL,
}

PROBABILISTIC_SITES: tuple[str, ...] = (
    SITE_REQUEST,
    SITE_RESPONSE,
    SITE_ECALL,
    SITE_CLIENT_PRE_SIGN,
    SITE_CLIENT_POST_SIGN,
    SITE_SEAL_LOSS,
)
"""Sites that make sense as background rates in sampled plans.

``SITE_BLINDER`` and ``SITE_CLIENT_PROVISION`` are deliberately excluded:
they are scheduled as discrete specs instead, because a per-visit rate on
them degenerates into "everything crashes always" at interesting rates.
"""

_SCHEDULABLE_CLIENT_SITES = (
    SITE_CLIENT_PROVISION,
    SITE_CLIENT_PRE_SIGN,
    SITE_CLIENT_POST_SIGN,
)

_PHASES = ("provision", "collect", "finalize")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire ``action`` at ``site``, once.

    Filters narrow which visits count: ``target`` matches the acting
    client's id, ``round_id`` the round, ``phase`` the engine phase, and
    ``kind`` the message kind.  A ``None`` filter matches anything.  The
    spec fires on the ``at_hit``-th matching visit and never again.
    """

    site: str
    action: str | None = None
    target: str | None = None
    round_id: int | None = None
    phase: str | None = None
    kind: str | None = None
    at_hit: int = 1

    def matches(self, context: Mapping[str, object]) -> bool:
        if self.target is not None and context.get("client_id") != self.target:
            return False
        if self.round_id is not None and context.get("round_id") != self.round_id:
            return False
        if self.phase is not None and context.get("phase") != self.phase:
            return False
        if self.kind is not None and context.get("kind") != self.kind:
            return False
        return True

    def resolved_action(self) -> str:
        return self.action or DEFAULT_ACTIONS.get(self.site, ACTION_DROP)


@dataclass(frozen=True)
class FaultPlan:
    """What can go wrong in one run: scheduled specs + background rates.

    ``rates`` maps a site to a per-visit probability of its default
    action.  Plans are plain data — pair one with a seed inside a
    :class:`~repro.faults.injector.FaultInjector` to get a replayable
    fault schedule.
    """

    specs: tuple[FaultSpec, ...] = ()
    rates: Mapping[str, float] = field(default_factory=dict)
    label: str = ""

    @classmethod
    def sample(
        cls,
        rng: HmacDrbg,
        fault_rate: float,
        clients: Sequence[str] = (),
        rounds: Sequence[int] = (),
        sites: Sequence[str] | None = None,
        label: str = "",
    ) -> "FaultPlan":
        """Draw a random-but-reproducible plan at roughly ``fault_rate``.

        Each probabilistic site independently gets either no pressure or a
        rate near ``fault_rate``, so sampled schedules differ in *where*
        failures land, not just how many.  With ``clients`` given, the
        plan may also schedule one targeted client crash (provision /
        pre-sign / post-sign) and one blinder crash at a random phase
        boundary — the adversarial timings the tentpole cares about.
        """
        candidate_sites = tuple(sites) if sites is not None else PROBABILISTIC_SITES
        rates: dict[str, float] = {}
        for site in candidate_sites:
            if rng.uniform() < 0.5:
                rates[site] = fault_rate * (0.5 + rng.uniform())
        specs: list[FaultSpec] = []
        if clients and rng.uniform() < min(1.0, 6.0 * fault_rate):
            spec_round = rng.choice(list(rounds)) if rounds else None
            specs.append(
                FaultSpec(
                    site=rng.choice(list(_SCHEDULABLE_CLIENT_SITES)),
                    target=rng.choice(list(clients)),
                    round_id=spec_round,
                )
            )
        if rng.uniform() < min(1.0, 4.0 * fault_rate):
            specs.append(
                FaultSpec(site=SITE_BLINDER, phase=rng.choice(list(_PHASES)))
            )
        return cls(specs=tuple(specs), rates=rates, label=label)
