"""Sampled fault schedules for the service layer (storage + kill points).

The round-level :meth:`FaultPlan.sample` stresses the *protocol* —
transport drops, enclave kills, client crashes.  This module samples the
complementary plan for the *hosting* layer: what the service's disk,
database, and process lifecycle do to it.  A service plan mixes

* background **io-error rates** on the generic storage sites (every
  write may transiently fail, so the retry/backoff and circuit-breaker
  paths get continuous exercise),
* a few **scheduled write pathologies** — a torn space write, a
  journal append lost after its ack, a corrupted or dropped audit entry
  — each aimed at one subsystem via its specific site, and
* at most one **hard kill** per schedule, at a sampled service lifecycle
  stage (:data:`KILL_STAGES`) on a sampled visit, which is how
  "kill the process between the finalize record and the queue update"
  becomes a replayable schedule entry.

Like every plan, a service plan is plain data: pair it with a seed in a
:class:`~repro.faults.injector.FaultInjector` and the whole chaos run —
including where the process dies and what the disk lies about — replays
bit-for-bit.
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto.drbg import HmacDrbg
from repro.faults.plan import (
    ACTION_CORRUPT,
    ACTION_LOST_AFTER_ACK,
    ACTION_TORN_WRITE,
    FaultPlan,
    FaultSpec,
    SITE_AUDIT_APPEND,
    SITE_JOURNAL_APPEND,
    SITE_QUEUE_ADMIT,
    SITE_SERVICE_KILL,
    SITE_STORAGE_APPEND,
    SITE_STORAGE_PUT,
)

#: Generic storage sites that take background io-error pressure.
STORAGE_SITES: tuple[str, ...] = (
    SITE_STORAGE_PUT,
    SITE_STORAGE_APPEND,
)

#: Service lifecycle stages where a kill spec may fire.  Each one is a
#: distinct persisted-state shape for recovery to untangle:
#:
#: * ``post-submit`` — submission acked, nothing else happened yet;
#: * ``post-take`` — batch drawn, round id not yet allocated;
#: * ``post-journal-open`` — round journaled, queue not yet assigned;
#: * ``post-assign`` — journaled and assigned, protocol never ran;
#: * ``post-drive`` — protocol finished, finalize record not yet written;
#: * ``post-finalize-journal`` — finalized in the journal, queue still
#:   says assigned (the settle-without-replay gap);
#: * ``post-apply`` — everything durable, only the audit trail pending.
KILL_STAGES: tuple[str, ...] = (
    "post-submit",
    "post-take",
    "post-journal-open",
    "post-assign",
    "post-drive",
    "post-finalize-journal",
    "post-apply",
)

#: What a sampled schedule may do to the audit log.  ``corrupt`` is only
#: ever aimed here: the hash chain is the one subsystem built to *detect*
#: silent corruption, so that is where the pathology must land.
_AUDIT_ACTIONS = (ACTION_CORRUPT, ACTION_LOST_AFTER_ACK, ACTION_TORN_WRITE)


def sample_service_plan(
    rng: HmacDrbg,
    fault_rate: float,
    *,
    kill_stages: Sequence[str] = KILL_STAGES,
    label: str = "",
) -> FaultPlan:
    """Draw one random-but-reproducible service-layer fault schedule.

    ``fault_rate`` scales both the background io-error pressure and the
    odds that each scheduled pathology appears, so low-rate schedules are
    mostly-quiet single-incident runs while high-rate ones stack a kill
    on top of lying storage.
    """
    rates: dict[str, float] = {}
    for site in STORAGE_SITES:
        if rng.uniform() < 0.5:
            rates[site] = fault_rate * (0.5 + rng.uniform())
    specs: list[FaultSpec] = []
    if rng.uniform() < 0.7:
        specs.append(
            FaultSpec(
                site=SITE_SERVICE_KILL,
                phase=rng.choice(list(kill_stages)),
                at_hit=1 + rng.randint(6),
            )
        )
    if rng.uniform() < min(1.0, 5.0 * fault_rate):
        specs.append(
            FaultSpec(
                site=SITE_JOURNAL_APPEND,
                action=ACTION_LOST_AFTER_ACK,
                at_hit=1 + rng.randint(3),
            )
        )
    if rng.uniform() < min(1.0, 5.0 * fault_rate):
        specs.append(
            FaultSpec(
                site=SITE_AUDIT_APPEND,
                action=rng.choice(list(_AUDIT_ACTIONS)),
                at_hit=1 + rng.randint(10),
            )
        )
    if rng.uniform() < min(1.0, 4.0 * fault_rate):
        specs.append(
            FaultSpec(
                site=SITE_QUEUE_ADMIT,
                action=ACTION_LOST_AFTER_ACK,
                at_hit=1 + rng.randint(5),
            )
        )
    if rng.uniform() < min(1.0, 4.0 * fault_rate):
        specs.append(
            FaultSpec(
                site=SITE_STORAGE_PUT,
                action=ACTION_TORN_WRITE,
                at_hit=1 + rng.randint(8),
            )
        )
    return FaultPlan(specs=tuple(specs), rates=rates, label=label)
