"""Sealed storage: encrypt data so only a designated enclave can recover it.

SGX derives sealing keys with EGETKEY from a fused, per-CPU root secret plus
the requesting enclave's identity.  Two policies exist and both are modeled:

* ``mrenclave`` — keyed to the exact measurement; a patched or different
  enclave (even from the same vendor) cannot unseal.  The paper uses this
  for the service's signing key: "sealed ... to the Glimmer code, so that it
  is only available to instances of Glimmer enclaves."
* ``mrsigner`` — keyed to the vendor; newer versions from the same vendor
  can unseal (upgrade path).

Sealed blobs authenticate their policy metadata, so tampering with the
header is detected rather than yielding a wrong-key decryption.
"""

from __future__ import annotations

from repro.crypto.cipher import AuthenticatedCipher, SealedBox
from repro.crypto.drbg import HmacDrbg
from repro.crypto.kdf import hkdf
from repro.errors import SealingError
from repro.sgx.enclave import EnclaveIdentity

_POLICIES = ("mrenclave", "mrsigner")
_HEADER_SIZE = 1 + 32  # policy byte + identity hash


class SealingManager:
    """Per-platform sealing: derives keys from the CPU root sealing secret."""

    def __init__(self, root_secret: bytes, rng: HmacDrbg) -> None:
        self._root_secret = root_secret
        self._rng = rng

    def _policy_identity(self, identity: EnclaveIdentity, policy: str) -> bytes:
        if policy == "mrenclave":
            return identity.mrenclave
        if policy == "mrsigner":
            return identity.mrsigner
        raise SealingError(f"unknown sealing policy {policy!r}")

    def _key_for(self, policy: str, policy_identity: bytes) -> bytes:
        return hkdf(
            self._root_secret,
            f"sgx-seal-key:{policy}",
            salt=policy_identity,
        )

    def seal(self, identity: EnclaveIdentity, plaintext: bytes, policy: str) -> bytes:
        """Seal ``plaintext`` under ``identity`` with the given policy."""
        if policy not in _POLICIES:
            raise SealingError(f"unknown sealing policy {policy!r}")
        policy_identity = self._policy_identity(identity, policy)
        cipher = AuthenticatedCipher(self._key_for(policy, policy_identity))
        nonce = self._rng.generate(16)
        header = bytes([_POLICIES.index(policy)]) + policy_identity
        box = cipher.encrypt(nonce, plaintext, associated_data=header)
        return header + box.to_bytes()

    def unseal(self, identity: EnclaveIdentity, blob: bytes) -> bytes:
        """Unseal a blob; fails unless ``identity`` matches the sealing policy."""
        if len(blob) < _HEADER_SIZE:
            raise SealingError("sealed blob too short")
        policy_index = blob[0]
        if policy_index >= len(_POLICIES):
            raise SealingError("sealed blob has unknown policy")
        policy = _POLICIES[policy_index]
        sealed_identity = blob[1:_HEADER_SIZE]
        expected_identity = self._policy_identity(identity, policy)
        if sealed_identity != expected_identity:
            raise SealingError(
                f"sealed to a different {policy}; this enclave cannot unseal"
            )
        cipher = AuthenticatedCipher(self._key_for(policy, sealed_identity))
        header = blob[:_HEADER_SIZE]
        try:
            box = SealedBox.from_bytes(blob[_HEADER_SIZE:])
            return cipher.decrypt(box, associated_data=header)
        except Exception as exc:
            raise SealingError("sealed blob failed authentication") from exc
