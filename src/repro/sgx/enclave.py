"""Enclave instances and the ecall/ocall trust boundary.

An :class:`Enclave` is an :class:`~repro.sgx.measurement.EnclaveImage`
loaded on a platform.  Host code interacts with it *only* through
:meth:`Enclave.ecall`; enclave code interacts with the host *only* through
:meth:`EnclaveApi.ocall`.  Every crossing is metered with the platform's
cost model, which is what the enclave-decomposition ablation (experiment
E7) measures.

Enclave programs subclass :class:`EnclaveProgram` and mark entry points with
the :func:`ecall` decorator.  Inside, the program sees an
:class:`EnclaveApi` handle that exposes exactly the services real SGX
offers: sealing, report generation, randomness, monotonic counters, ocalls,
and the immutable image config.  Everything else — the host filesystem,
the network, sensors — must come through an ocall, mirroring the paper's
observation that a Glimmer "must mediate system services via the untrusted
host OS".

Isolation is enforced by convention plus an explicit guard: enclave private
state lives on the program instance, and the host-visible wrapper refuses
attribute access to it unless the platform's threat model enables
``memory_disclosure`` (modeling an enclave-compromising side channel).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.crypto.drbg import HmacDrbg
from repro.errors import EnclaveError
from repro.faults import ACTION_KILL, ACTION_PRESSURE, SITE_ECALL, SITE_EPC_PRESSURE
from repro.sgx.costs import CycleMeter


def ecall(func: Callable) -> Callable:
    """Mark a method of an :class:`EnclaveProgram` as an enclave entry point."""
    func.__sgx_ecall__ = True
    return func


def payload_size(value: Any) -> int:
    """Approximate byte size of a value crossing the enclave boundary."""
    if value is None:
        return 0
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:
        return 64  # unpicklable sentinel; charge a small flat cost


class EnclaveProgram:
    """Base class for code that runs inside a simulated enclave.

    Subclasses receive an :class:`EnclaveApi` and may define ``on_load`` for
    initialization that should run inside the enclave at load time.
    """

    def __init__(self, api: "EnclaveApi") -> None:
        self.api = api

    def on_load(self) -> None:
        """Hook called once after the enclave is initialized."""


@dataclass
class EnclaveIdentity:
    """What attestation reports about an enclave."""

    mrenclave: bytes
    mrsigner: bytes
    version: int
    debug: bool


class EnclaveApi:
    """The in-enclave view of platform services.

    Only enclave program code should hold a reference to this object; it is
    the simulator's stand-in for the SGX instruction set (EGETKEY, EREPORT)
    plus the ocall table the host registered at load time.
    """

    def __init__(
        self,
        platform: "Any",
        identity: EnclaveIdentity,
        config: bytes,
        ocall_handlers: Mapping[str, Callable[..., Any]],
        rng: HmacDrbg,
        meter: CycleMeter,
    ) -> None:
        self._platform = platform
        self._identity = identity
        self._config = config
        self._ocall_handlers = dict(ocall_handlers)
        self._rng = rng
        self._meter = meter

    @property
    def config(self) -> bytes:
        """The image's immutable configuration blob (part of the measurement)."""
        return self._config

    @property
    def identity(self) -> EnclaveIdentity:
        return self._identity

    @property
    def rng(self) -> HmacDrbg:
        """Enclave-private randomness (RDRAND stand-in, deterministic per seed)."""
        return self._rng

    def charge(self, cycles: int | float, bucket: str = "enclave-compute") -> None:
        """Account simulated cycles for in-enclave work."""
        self._meter.charge(cycles, bucket)

    def charge_hash(self, num_bytes: int) -> None:
        self.charge(self._platform.cost_model.hash_cycles_per_byte * num_bytes, "enclave-crypto")

    def charge_signature(self) -> None:
        self.charge(self._platform.cost_model.signature_cycles, "enclave-crypto")

    def charge_aead(self, num_bytes: int) -> None:
        self.charge(self._platform.cost_model.aead_cycles_per_byte * num_bytes, "enclave-crypto")

    def charge_dh(self) -> None:
        self.charge(self._platform.cost_model.dh_cycles, "enclave-crypto")

    def ocall(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Call out to the untrusted host.

        The result is *untrusted by construction*: a malicious host can
        return anything.  Glimmer code must validate what comes back.
        """
        handler = self._ocall_handlers.get(name)
        if handler is None:
            raise EnclaveError(f"no ocall handler registered for {name!r}")
        cost = self._platform.cost_model
        self._meter.charge(cost.ocall_cycles, "transitions")
        self._meter.charge(
            cost.copy_cost(sum(payload_size(a) for a in args)), "boundary-copies"
        )
        result = handler(*args, **kwargs)
        self._meter.charge(cost.copy_cost(payload_size(result)), "boundary-copies")
        return result

    def seal(self, plaintext: bytes, policy: str = "mrenclave") -> bytes:
        """Seal data to this enclave (policy: ``mrenclave`` or ``mrsigner``)."""
        self.charge(self._platform.cost_model.seal_cycles, "enclave-crypto")
        return self._platform.sealing.seal(self._identity, plaintext, policy)

    def unseal(self, blob: bytes) -> bytes:
        """Unseal data previously sealed to this enclave's identity."""
        self.charge(self._platform.cost_model.seal_cycles, "enclave-crypto")
        return self._platform.sealing.unseal(self._identity, blob)

    def create_report(self, report_data: bytes) -> "Any":
        """EREPORT: produce a locally verifiable report binding ``report_data``."""
        self.charge_hash(len(report_data) + 96)
        return self._platform.create_report(self._identity, report_data)

    def verify_local_report(self, report: "Any") -> bool:
        """Local attestation: check a sibling enclave's report on this platform."""
        self.charge_hash(128)
        return self._platform.verify_report(report)

    def monotonic_counter(self, name: str) -> "Any":
        """A rollback-protection counter scoped to this enclave's measurement."""
        return self._platform.counters.counter_for(self._identity.mrenclave, name)


class Enclave:
    """A loaded enclave: the host's handle.

    All interaction goes through :meth:`ecall`.  Reading the program's
    private state directly raises unless the platform's threat model grants
    ``memory_disclosure`` — the simulator's stand-in for a microarchitectural
    breach of SGX.
    """

    def __init__(
        self,
        platform: "Any",
        image: "Any",
        program: EnclaveProgram,
        api: EnclaveApi,
        meter: CycleMeter,
    ) -> None:
        self._platform = platform
        self.image = image
        self._program = program
        self._api = api
        self.meter = meter
        self._entry_points = {
            name: getattr(program, name)
            for name in dir(type(program))
            if getattr(getattr(type(program), name, None), "__sgx_ecall__", False)
        }
        self._destroyed = False

    @property
    def identity(self) -> EnclaveIdentity:
        return self._api.identity

    @property
    def mrenclave(self) -> bytes:
        return self.image.mrenclave

    @property
    def alive(self) -> bool:
        return not self._destroyed

    def entry_points(self) -> list[str]:
        return sorted(self._entry_points)

    def ecall(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Enter the enclave at a named entry point and return its result.

        Charges transition and boundary-copy cycles, plus EPC paging if the
        image's declared working set exceeds the platform's free EPC.
        """
        if self._destroyed:
            raise EnclaveError("enclave has been destroyed")
        entry = self._entry_points.get(name)
        if entry is None:
            raise EnclaveError(f"no such ecall: {name!r}")
        cost = self._platform.cost_model
        injector = getattr(self._platform, "fault_injector", None)
        if injector is not None:
            # The untrusted OS can deschedule-and-kill at the boundary: the
            # entry point never runs, enclave memory is gone, sealed state
            # and monotonic counters (platform-held) survive.
            if injector.fire(SITE_ECALL, ecall=name) == ACTION_KILL:
                self.destroy()
                raise EnclaveError(
                    f"enclave killed by the OS entering ecall {name!r} (injected fault)"
                )
            if injector.fire(SITE_EPC_PRESSURE, ecall=name) == ACTION_PRESSURE:
                self.meter.charge(
                    cost.paging_cost(self.image.memory_bytes), "epc-paging"
                )
        self.meter.charge(cost.ecall_cycles, "transitions")
        self.meter.charge(
            cost.copy_cost(sum(payload_size(a) for a in args)), "boundary-copies"
        )
        overflow = self._platform.epc_overflow_bytes()
        if overflow > 0:
            # Charge paging proportional to this enclave's share of pressure.
            share = min(self.image.memory_bytes, overflow)
            self.meter.charge(cost.paging_cost(share), "epc-paging")
        result = entry(*args, **kwargs)
        self.meter.charge(cost.copy_cost(payload_size(result)), "boundary-copies")
        return result

    def create_report(self, report_data: bytes) -> Any:
        """Host-initiated report creation (wraps an ecall into EREPORT)."""
        return self._api.create_report(report_data)

    def peek_private_state(self) -> dict:
        """Host attempt to read enclave memory.

        Models a memory-disclosure attack; allowed only when the platform's
        threat model says the hardware is compromised.
        """
        if not self._platform.threat_model.memory_disclosure:
            raise EnclaveError(
                "enclave memory is isolated; host cannot read it "
                "(enable ThreatModel.memory_disclosure to model a breach)"
            )
        state = dict(vars(self._program))
        state.pop("api", None)
        return state

    def destroy(self) -> None:
        """Tear down the enclave and release its EPC reservation."""
        if not self._destroyed:
            self._destroyed = True
            self._platform.release_enclave(self)
