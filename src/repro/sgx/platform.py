"""The SGX-capable machine: EPC, launch control, keys, quoting enclave.

A :class:`SgxPlatform` is one physical CPU package.  Manufacturing
(construction) fuses a root sealing secret and an attestation key; genuine
platforms are provisioned with an :class:`~repro.sgx.attestation.AttestationService`
so their quotes verify remotely.  Loading an enclave checks the vendor
signature (launch control), reserves EPC, instantiates the program inside
the boundary, and returns the host-side :class:`~repro.sgx.enclave.Enclave`
handle.

The :class:`ThreatModel` lists the ways experiments may *break* the SGX
contract; all default to off (the hardware keeps its promises).
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.crypto.drbg import HmacDrbg
from repro.crypto.schnorr import SchnorrKeyPair
from repro.errors import EnclaveError
from repro.sgx.attestation import (
    AttestationService,
    QuotingEnclave,
    Report,
    make_report,
)
from repro.sgx.costs import CostModel, CycleMeter, DEFAULT_COST_MODEL
from repro.sgx.counters import CounterStore
from repro.sgx.enclave import Enclave, EnclaveApi, EnclaveIdentity, EnclaveProgram
from repro.sgx.measurement import EnclaveImage
from repro.sgx.sealing import SealingManager

DEFAULT_EPC_BYTES = 96 * (1 << 20)  # 96 MiB usable EPC, SGX1-era


@dataclass
class ThreatModel:
    """Which SGX guarantees the experiment chooses to void.

    memory_disclosure:
        Host can read enclave memory (models a side-channel breach).
    skip_launch_control:
        Platform loads images with invalid vendor signatures.
    """

    memory_disclosure: bool = False
    skip_launch_control: bool = False


class SgxPlatform:
    """One SGX machine.  Create, optionally provision, then load enclaves.

    Parameters
    ----------
    seed:
        Determinism root for all platform key material and randomness.
    attestation_service:
        If given, the platform is provisioned (genuine).  A platform built
        without one acts as a *rogue* machine: it can emit quotes, but no
        verifier will accept them.
    """

    def __init__(
        self,
        seed: bytes,
        attestation_service: AttestationService | None = None,
        epc_bytes: int = DEFAULT_EPC_BYTES,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        threat_model: ThreatModel | None = None,
    ) -> None:
        self._rng = HmacDrbg(seed, personalization="sgx-platform")
        self.platform_id = self._rng.generate(16)
        self.fault_injector = None
        """When set (see :mod:`repro.faults`), enclaves loaded on this
        platform consult it at every ecall — the hook by which the chaos
        suite models an OS that kills enclaves at arbitrary boundaries."""
        self.epc_bytes = epc_bytes
        self.cost_model = cost_model
        self.threat_model = threat_model or ThreatModel()
        self.meter = CycleMeter()
        self._root_seal_secret = self._rng.generate(32)
        self._report_key = self._rng.generate(32)
        self._attestation_key = SchnorrKeyPair.generate(self._rng.fork("attestation-key"))
        self.sealing = SealingManager(self._root_seal_secret, self._rng.fork("sealing"))
        self.counters = CounterStore()
        self.quoting_enclave = QuotingEnclave(
            self.platform_id, self._report_key, self._attestation_key
        )
        self._loaded: list[Enclave] = []
        if attestation_service is not None:
            attestation_service.provision_platform(
                self.platform_id, self._attestation_key.public_key
            )

    # ------------------------------------------------------------------ EPC

    def epc_used_bytes(self) -> int:
        return sum(enclave.image.memory_bytes for enclave in self._loaded)

    def epc_overflow_bytes(self) -> int:
        """How far the resident enclave working sets exceed the EPC."""
        return max(0, self.epc_used_bytes() - self.epc_bytes)

    def loaded_enclaves(self) -> list[Enclave]:
        return list(self._loaded)

    def release_enclave(self, enclave: Enclave) -> None:
        if enclave in self._loaded:
            self._loaded.remove(enclave)

    # ----------------------------------------------------------------- load

    def load_enclave(
        self,
        image: EnclaveImage,
        ocall_handlers: Mapping[str, Callable[..., Any]] | None = None,
    ) -> Enclave:
        """Launch-check, measure, and instantiate an enclave image.

        The program class is constructed *inside* the boundary with an
        :class:`EnclaveApi`; its ``on_load`` hook runs before the handle is
        returned (charged as an implicit first entry).
        """
        if not self.threat_model.skip_launch_control:
            image.verify_vendor_signature()
        if image.program_class is None or not issubclass(
            image.program_class, EnclaveProgram
        ):
            raise EnclaveError("image does not carry a loadable EnclaveProgram")
        identity = EnclaveIdentity(
            mrenclave=image.mrenclave,
            mrsigner=image.mrsigner,
            version=image.version,
            debug=image.debug,
        )
        meter = CycleMeter()
        enclave_rng = HmacDrbg(
            self._rng.generate(32) + image.mrenclave, personalization="enclave-rng"
        )
        api = EnclaveApi(
            platform=self,
            identity=identity,
            config=image.config,
            ocall_handlers=ocall_handlers or {},
            rng=enclave_rng,
            meter=meter,
        )
        program = image.program_class(api)
        enclave = Enclave(self, image, program, api, meter)
        self._loaded.append(enclave)
        meter.charge(self.cost_model.ecall_cycles, "transitions")  # init entry
        program.on_load()
        return enclave

    # ----------------------------------------------------------- attestation

    def create_report(self, identity: EnclaveIdentity, report_data: bytes) -> Report:
        """EREPORT for an enclave running on this platform."""
        return make_report(self._report_key, self.platform_id, identity, report_data)

    def verify_report(self, report: Report) -> bool:
        """Local attestation: was this report produced on this platform?

        Models the EREPORT/EGETKEY flow by which one enclave checks a
        sibling enclave's report; cross-platform reports fail.
        """
        if report.platform_id != self.platform_id:
            return False
        reference = make_report(
            self._report_key,
            self.platform_id,
            EnclaveIdentity(
                mrenclave=report.mrenclave,
                mrsigner=report.mrsigner,
                version=report.version,
                debug=report.debug,
            ),
            report.report_data,
        )
        return hmac.compare_digest(reference.mac, report.mac)

    def quote_enclave(self, enclave: Enclave, report_data: bytes):
        """Convenience: report + quote in one step, with cycle accounting."""
        report = enclave.create_report(report_data)
        enclave.meter.charge(self.cost_model.attestation_quote_cycles, "attestation")
        return self.quoting_enclave.quote(report)
