"""Local reports, the quoting enclave, and an IAS-style attestation service.

Remote attestation is the mechanism that lets both the user and the service
trust a Glimmer (§3): the enclave produces a *report* binding 64 bytes of
caller data (typically a hash of a DH handshake value) to its measurement;
the platform's *quoting enclave* converts the report into a *quote* signed
with a platform attestation key; and a remote verifier checks the quote
against the attestation service that provisioned the platform.

The simulator models the trust topology faithfully:

* only platforms provisioned with the :class:`AttestationService` hold
  attestation keys the service recognizes — a rogue (software-emulated)
  platform can produce structurally valid quotes that nonetheless fail
  verification;
* quotes name the enclave's MRENCLAVE/MRSIGNER/version/debug flag, so a
  tampered Glimmer attests to a *different* measurement and is rejected
  against the published hash;
* platforms can be revoked (modeling EPID group revocation after a
  compromise).
"""

from __future__ import annotations

from dataclasses import dataclass

import hmac as _hmac

from repro.crypto.drbg import HmacDrbg
from repro.crypto.hashing import hash_items
from repro.crypto.kdf import hkdf
from repro.crypto.schnorr import SchnorrKeyPair, SchnorrPublicKey, SchnorrSignature
from repro.errors import AttestationError
from repro.sgx.enclave import EnclaveIdentity

REPORT_DATA_SIZE = 64


@dataclass(frozen=True)
class Report:
    """A local attestation report (EREPORT output).

    MACed with a platform-local report key; verifiable only on the same
    platform (that is what the quoting enclave does).
    """

    mrenclave: bytes
    mrsigner: bytes
    version: int
    debug: bool
    report_data: bytes
    platform_id: bytes
    mac: bytes

    def body_digest(self) -> bytes:
        return hash_items(
            "sgx-report-body",
            [
                self.mrenclave,
                self.mrsigner,
                self.version.to_bytes(4, "big"),
                b"\x01" if self.debug else b"\x00",
                self.report_data,
                self.platform_id,
            ],
        )


def make_report(
    report_key: bytes,
    platform_id: bytes,
    identity: EnclaveIdentity,
    report_data: bytes,
) -> Report:
    """Create a MACed report.  ``report_data`` is padded/truncated to 64 bytes."""
    data = report_data[:REPORT_DATA_SIZE].ljust(REPORT_DATA_SIZE, b"\x00")
    unmacd = Report(
        mrenclave=identity.mrenclave,
        mrsigner=identity.mrsigner,
        version=identity.version,
        debug=identity.debug,
        report_data=data,
        platform_id=platform_id,
        mac=b"",
    )
    mac = _hmac.new(report_key, unmacd.body_digest(), digestmod="sha256").digest()
    return Report(
        mrenclave=unmacd.mrenclave,
        mrsigner=unmacd.mrsigner,
        version=unmacd.version,
        debug=unmacd.debug,
        report_data=unmacd.report_data,
        platform_id=unmacd.platform_id,
        mac=mac,
    )


@dataclass(frozen=True)
class Quote:
    """A remotely verifiable quote: report body + platform signature."""

    mrenclave: bytes
    mrsigner: bytes
    version: int
    debug: bool
    report_data: bytes
    platform_id: bytes
    signature: SchnorrSignature

    def signed_digest(self) -> bytes:
        return hash_items(
            "sgx-quote-body",
            [
                self.mrenclave,
                self.mrsigner,
                self.version.to_bytes(4, "big"),
                b"\x01" if self.debug else b"\x00",
                self.report_data,
                self.platform_id,
            ],
        )


class QuotingEnclave:
    """The per-platform quoting enclave: turns reports into quotes."""

    def __init__(self, platform_id: bytes, report_key: bytes, attestation_key: SchnorrKeyPair) -> None:
        self._platform_id = platform_id
        self._report_key = report_key
        self._attestation_key = attestation_key

    def quote(self, report: Report) -> Quote:
        """Verify the local report MAC, then sign the body into a quote."""
        if report.platform_id != self._platform_id:
            raise AttestationError("report was produced on a different platform")
        body = Report(
            mrenclave=report.mrenclave,
            mrsigner=report.mrsigner,
            version=report.version,
            debug=report.debug,
            report_data=report.report_data,
            platform_id=report.platform_id,
            mac=b"",
        )
        expected = _hmac.new(self._report_key, body.body_digest(), digestmod="sha256").digest()
        if not _hmac.compare_digest(expected, report.mac):
            raise AttestationError("report MAC invalid; not produced on this platform")
        quote = Quote(
            mrenclave=report.mrenclave,
            mrsigner=report.mrsigner,
            version=report.version,
            debug=report.debug,
            report_data=report.report_data,
            platform_id=report.platform_id,
            signature=SchnorrSignature(0, 0),
        )
        signature = self._attestation_key.sign(quote.signed_digest())
        return Quote(
            mrenclave=quote.mrenclave,
            mrsigner=quote.mrsigner,
            version=quote.version,
            debug=quote.debug,
            report_data=quote.report_data,
            platform_id=quote.platform_id,
            signature=signature,
        )


@dataclass(frozen=True)
class QuotePolicy:
    """What a verifier demands of a quote.

    ``expected_mrenclave`` is the published, vetted Glimmer hash (§3).  Set
    ``allow_debug`` only in tests: debug enclaves are inspectable and must
    never hold production keys.
    """

    expected_mrenclave: bytes | None = None
    expected_mrsigner: bytes | None = None
    minimum_version: int = 1
    allow_debug: bool = False
    policy_epoch: int = 0
    """Monotonic freshness counter.  A verifier bumps the epoch when its
    trust inputs change (new published measurement, revocation sweep,
    TCB recovery); cached verifications and session tickets minted under
    an older epoch are then stale and must re-attest in full."""


@dataclass(frozen=True)
class AttestationResult:
    """Successful verification outcome."""

    mrenclave: bytes
    mrsigner: bytes
    version: int
    report_data: bytes
    platform_id: bytes


class AttestationService:
    """IAS-style verifier: knows which platforms are genuine, supports revocation."""

    def __init__(self, seed: bytes = b"attestation-service") -> None:
        self._rng = HmacDrbg(seed, personalization="attestation-service")
        self._platforms: dict[bytes, SchnorrPublicKey] = {}
        self._revoked: set[bytes] = set()

    def provision_platform(self, platform_id: bytes, attestation_public: SchnorrPublicKey) -> None:
        """Register a genuine platform's attestation key (manufacturing step)."""
        if platform_id in self._platforms:
            raise AttestationError("platform already provisioned")
        self._platforms[platform_id] = attestation_public

    def revoke_platform(self, platform_id: bytes) -> None:
        """Revoke a platform (e.g. its attestation key leaked)."""
        self._revoked.add(platform_id)

    def is_provisioned(self, platform_id: bytes) -> bool:
        return platform_id in self._platforms

    def is_revoked(self, platform_id: bytes) -> bool:
        """Whether a platform has been revoked (session layers re-check
        this on every resumption — a ticket must not outlive a
        revocation)."""
        return platform_id in self._revoked

    def verify(self, quote: Quote, policy: QuotePolicy | None = None) -> AttestationResult:
        """Verify a quote against provisioning, revocation, and ``policy``.

        Raises :class:`AttestationError` with a reason on any failure.
        """
        policy = policy or QuotePolicy()
        public = self._platforms.get(quote.platform_id)
        if public is None:
            raise AttestationError("quote from an unknown (unprovisioned) platform")
        if quote.platform_id in self._revoked:
            raise AttestationError("quote from a revoked platform")
        try:
            public.verify(quote.signed_digest(), quote.signature)
        except Exception as exc:
            raise AttestationError("quote signature invalid") from exc
        return self._check_policy(quote, policy)

    def screen(self, quote: Quote, policy: QuotePolicy | None = None) -> AttestationResult:
        """:meth:`verify` minus the platform-signature check.

        For quotes the verifier *itself* observed being minted — the scale
        layer's worker pool runs the client handshake and the blinder
        delivery inside one trust domain, so checking the Schnorr signature
        the same process just produced proves nothing.  Everything a remote
        signature would vouch for is still enforced: the platform must be
        provisioned and unrevoked, and the quote body must satisfy the
        policy (measurement, signer, debug flag, version).  Never use this
        on a quote that crossed an untrusted boundary.
        """
        policy = policy or QuotePolicy()
        if quote.platform_id not in self._platforms:
            raise AttestationError("quote from an unknown (unprovisioned) platform")
        if quote.platform_id in self._revoked:
            raise AttestationError("quote from a revoked platform")
        return self._check_policy(quote, policy)

    def _check_policy(self, quote: Quote, policy: QuotePolicy) -> AttestationResult:
        if quote.debug and not policy.allow_debug:
            raise AttestationError("debug enclaves are not trusted")
        if policy.expected_mrenclave is not None and quote.mrenclave != policy.expected_mrenclave:
            raise AttestationError("measurement does not match the published Glimmer hash")
        if policy.expected_mrsigner is not None and quote.mrsigner != policy.expected_mrsigner:
            raise AttestationError("enclave signer not trusted")
        if quote.version < policy.minimum_version:
            raise AttestationError(
                f"enclave version {quote.version} below minimum {policy.minimum_version}"
            )
        return AttestationResult(
            mrenclave=quote.mrenclave,
            mrsigner=quote.mrsigner,
            version=quote.version,
            report_data=quote.report_data,
            platform_id=quote.platform_id,
        )


def report_data_for(payload: bytes) -> bytes:
    """Standard way to bind arbitrary payloads into the 64-byte report data."""
    return hkdf(payload, "report-data", length=REPORT_DATA_SIZE)
