"""Attack toolkit against the SGX contract.

Experiments must *demonstrate* (not assume) that the Glimmer's guarantees
rest on attestation and isolation, so this module packages the standard
attacks as reusable helpers:

* :func:`forge_quote` — a quote signed by a key the attestation service
  never provisioned (software SGX emulator, or a stolen-but-unregistered
  key).  Structurally valid; must fail verification.
* :func:`tamper_quote_measurement` — take a genuine quote and rewrite its
  MRENCLAVE to the published Glimmer hash.  The signature no longer covers
  the body; must fail verification.
* :func:`replay_quote_with_new_data` — reuse a genuine quote but swap the
  report data (e.g. bind a different DH key).  Must fail verification.

All helpers return `Quote` objects a verifier can be fed directly.
"""

from __future__ import annotations

from repro.crypto.drbg import HmacDrbg
from repro.crypto.schnorr import SchnorrKeyPair
from repro.sgx.attestation import Quote


def forge_quote(
    mrenclave: bytes,
    mrsigner: bytes,
    report_data: bytes,
    seed: bytes = b"rogue-platform",
    version: int = 1,
    debug: bool = False,
) -> Quote:
    """Produce a quote signed by an unprovisioned attestation key.

    This is what a malicious client *without* genuine SGX can do at best:
    fabricate a structurally perfect quote naming the vetted measurement.
    """
    rogue_key = SchnorrKeyPair.generate(HmacDrbg(seed, personalization="rogue"))
    rogue_platform_id = HmacDrbg(seed, personalization="rogue-id").generate(16)
    body = Quote(
        mrenclave=mrenclave,
        mrsigner=mrsigner,
        version=version,
        debug=debug,
        report_data=report_data[:64].ljust(64, b"\x00"),
        platform_id=rogue_platform_id,
        signature=None,  # type: ignore[arg-type]
    )
    signature = rogue_key.sign(body.signed_digest())
    return Quote(
        mrenclave=body.mrenclave,
        mrsigner=body.mrsigner,
        version=body.version,
        debug=body.debug,
        report_data=body.report_data,
        platform_id=body.platform_id,
        signature=signature,
    )


def tamper_quote_measurement(genuine: Quote, claimed_mrenclave: bytes) -> Quote:
    """Rewrite a genuine quote's measurement without re-signing."""
    return Quote(
        mrenclave=claimed_mrenclave,
        mrsigner=genuine.mrsigner,
        version=genuine.version,
        debug=genuine.debug,
        report_data=genuine.report_data,
        platform_id=genuine.platform_id,
        signature=genuine.signature,
    )


def replay_quote_with_new_data(genuine: Quote, new_report_data: bytes) -> Quote:
    """Reuse a genuine quote's signature over different report data."""
    return Quote(
        mrenclave=genuine.mrenclave,
        mrsigner=genuine.mrsigner,
        version=genuine.version,
        debug=genuine.debug,
        report_data=new_report_data[:64].ljust(64, b"\x00"),
        platform_id=genuine.platform_id,
        signature=genuine.signature,
    )
