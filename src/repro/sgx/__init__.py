"""A deterministic functional simulator of Intel SGX.

The paper realizes Glimmers on SGX enclaves (§3), relying on four hardware
guarantees: *isolation* (enclave memory is invisible to the host),
*measurement* (an enclave's identity is a hash of its code and data),
*remote attestation* (a platform can prove to a remote party what enclave it
runs), and *sealed storage* (data encrypted so only a designated enclave can
recover it).  This package models exactly that contract:

* :mod:`repro.sgx.measurement` — enclave images and MRENCLAVE/MRSIGNER.
* :mod:`repro.sgx.platform` — an SGX-capable machine: EPC, launch control,
  root sealing keys, provisioning with the attestation service.
* :mod:`repro.sgx.enclave` — loaded enclave instances; the ecall/ocall
  boundary with a calibrated cycle cost model.
* :mod:`repro.sgx.attestation` — local reports, the quoting enclave, and an
  IAS-style attestation verification service.
* :mod:`repro.sgx.sessions` — incremental attestation: quote-verification
  caching and MACed resumption tickets, so rejoining fleet devices skip
  the full quote-verify + DH leg until the policy epoch moves.
* :mod:`repro.sgx.sealing` — sealing keys and sealed blobs.
* :mod:`repro.sgx.counters` — monotonic counters for rollback protection.
* :mod:`repro.sgx.threats` — the knobs experiments use to *break* the
  contract (tampered images, rogue platforms, memory disclosure) so the
  Glimmer security arguments can be exercised, not just asserted.

Absolute cycle numbers come from the cost model in :mod:`repro.sgx.costs`;
only relative comparisons are meaningful.
"""

from repro.sgx.attestation import AttestationService, Quote, QuotePolicy, Report
from repro.sgx.costs import CostModel, CycleMeter, DEFAULT_COST_MODEL
from repro.sgx.enclave import Enclave, EnclaveApi, EnclaveProgram, ecall
from repro.sgx.measurement import EnclaveImage, VendorKey
from repro.sgx.platform import SgxPlatform, ThreatModel
from repro.sgx.sessions import SessionBroker, SessionTicket

__all__ = [
    "AttestationService",
    "Quote",
    "QuotePolicy",
    "Report",
    "SessionBroker",
    "SessionTicket",
    "CostModel",
    "CycleMeter",
    "DEFAULT_COST_MODEL",
    "Enclave",
    "EnclaveApi",
    "EnclaveProgram",
    "ecall",
    "EnclaveImage",
    "VendorKey",
    "SgxPlatform",
    "ThreatModel",
]
