"""Enclave images, vendor signing, and measurement (MRENCLAVE / MRSIGNER).

An :class:`EnclaveImage` is what a vendor ships: code identity, immutable
configuration, a version, and the vendor's signature.  Its *measurement*
(MRENCLAVE in SGX terms) is a hash over all identity-bearing content, so any
tampering — a patched predicate, a different config, a bumped version —
yields a different measurement and therefore fails attestation against a
published Glimmer hash (§3: "Once it has been vetted, the hash of the
Glimmer is published").

MRSIGNER is the hash of the vendor's public key, used by sealing policies
that allow upgrades across versions from the same vendor.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

from repro.crypto.drbg import HmacDrbg
from repro.crypto.hashing import hash_items
from repro.crypto.schnorr import SchnorrKeyPair, SchnorrPublicKey, SchnorrSignature
from repro.errors import ConfigurationError, EnclaveError


def _image_payload(
    name: str, version: int, code: bytes, config: bytes,
    memory_bytes: int, debug: bool,
) -> bytes:
    return hash_items(
        "enclave-image",
        [
            name.encode("utf-8"),
            version.to_bytes(4, "big"),
            code,
            config,
            memory_bytes.to_bytes(8, "big"),
            b"\x01" if debug else b"\x00",
        ],
    )


def code_identity_of(program_class: type) -> bytes:
    """Canonical byte identity of an enclave program's code.

    Uses the class source when available (so editing the code changes the
    measurement, which is the property tamper experiments need) and falls
    back to the qualified name for dynamically generated classes.
    """
    try:
        source = inspect.getsource(program_class)
    except (OSError, TypeError):
        source = program_class.__qualname__
    return source.encode("utf-8")


@dataclass(frozen=True)
class VendorKey:
    """A vendor's signing identity (ISV key in SGX terms)."""

    keypair: SchnorrKeyPair

    @classmethod
    def generate(cls, rng: HmacDrbg) -> "VendorKey":
        return cls(keypair=SchnorrKeyPair.generate(rng))

    @property
    def public_key(self) -> SchnorrPublicKey:
        return self.keypair.public_key

    def mrsigner(self) -> bytes:
        return hash_items("mrsigner", [self.public_key.fingerprint()])


@dataclass(frozen=True)
class EnclaveImage:
    """A signed, measurable enclave binary.

    Build with :meth:`build` (which signs) rather than the constructor, and
    instantiate on a platform with
    :meth:`repro.sgx.platform.SgxPlatform.load_enclave`.
    """

    name: str
    version: int
    code: bytes
    config: bytes
    memory_bytes: int
    debug: bool
    program_class: type | None
    vendor_public: SchnorrPublicKey
    vendor_signature: SchnorrSignature
    mrenclave: bytes = field(init=False)
    mrsigner: bytes = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "mrenclave", self._compute_mrenclave())
        object.__setattr__(
            self,
            "mrsigner",
            hash_items("mrsigner", [self.vendor_public.fingerprint()]),
        )

    def _signed_payload(self) -> bytes:
        return _image_payload(
            self.name, self.version, self.code, self.config,
            self.memory_bytes, self.debug,
        )

    def _compute_mrenclave(self) -> bytes:
        return hash_items("mrenclave", [self._signed_payload()])

    @classmethod
    def build(
        cls,
        program_class: type,
        vendor: VendorKey,
        name: str | None = None,
        version: int = 1,
        config: bytes = b"",
        memory_bytes: int = 1 << 20,
        debug: bool = False,
        code: bytes | None = None,
    ) -> "EnclaveImage":
        """Measure and vendor-sign a program class into a loadable image."""
        if version < 1:
            raise ConfigurationError("version must be >= 1")
        if memory_bytes <= 0:
            raise ConfigurationError("memory_bytes must be positive")
        resolved_code = code if code is not None else code_identity_of(program_class)
        resolved_name = name or program_class.__name__
        payload = _image_payload(
            resolved_name, version, resolved_code, config, memory_bytes, debug
        )
        return cls(
            name=resolved_name,
            version=version,
            code=resolved_code,
            config=config,
            memory_bytes=memory_bytes,
            debug=debug,
            program_class=program_class,
            vendor_public=vendor.public_key,
            vendor_signature=vendor.keypair.sign(payload),
        )

    def verify_vendor_signature(self) -> None:
        """Launch-control check: the image must carry a valid vendor signature."""
        try:
            self.vendor_public.verify(self._signed_payload(), self.vendor_signature)
        except Exception as exc:
            raise EnclaveError("vendor signature invalid") from exc

    def rebuilt_with(self, vendor: VendorKey, **overrides) -> "EnclaveImage":
        """Produce a modified image (tamper experiments use this helper)."""
        if self.program_class is None:
            raise ConfigurationError("image has no program class to rebuild")
        params = {
            "name": self.name,
            "version": self.version,
            "config": self.config,
            "memory_bytes": self.memory_bytes,
            "debug": self.debug,
            "code": self.code,
        }
        params.update(overrides)
        return EnclaveImage.build(self.program_class, vendor, **params)
