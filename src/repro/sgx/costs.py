"""Cycle cost model for the SGX simulator.

The simulator charges simulated CPU cycles for enclave transitions, data
copies across the boundary, EPC paging, and crypto inside the enclave.  The
default constants are calibrated to the ballpark figures reported in the
SGX systems literature (SCONE, Eleos, HotCalls):

* an ``ecall``/``ocall`` round trip costs roughly 8,000-14,000 cycles;
* copying data across the boundary costs on the order of a cycle per byte;
* an EPC page fault (enclave working set beyond the EPC) costs tens of
  thousands of cycles.

Experiments report *relative* numbers (single vs. split enclaves, predicate
ladders), which is all a reproduction without the authors' hardware can
honestly claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostModel:
    """Tunable cycle costs.  All values are simulated cycles."""

    ecall_cycles: int = 8_600
    ocall_cycles: int = 8_200
    copy_cycles_per_byte: float = 1.0
    epc_page_fault_cycles: int = 40_000
    epc_page_bytes: int = 4_096
    hash_cycles_per_byte: float = 12.0
    signature_cycles: int = 550_000
    signature_verify_cycles: int = 620_000
    aead_cycles_per_byte: float = 8.0
    dh_cycles: int = 480_000
    attestation_quote_cycles: int = 1_300_000
    seal_cycles: int = 120_000

    def copy_cost(self, num_bytes: int) -> int:
        return int(num_bytes * self.copy_cycles_per_byte)

    def paging_cost(self, overflow_bytes: int) -> int:
        """Cost of faulting in pages for a working set exceeding the EPC."""
        if overflow_bytes <= 0:
            return 0
        pages = (overflow_bytes + self.epc_page_bytes - 1) // self.epc_page_bytes
        return pages * self.epc_page_fault_cycles


DEFAULT_COST_MODEL = CostModel()


@dataclass
class CycleMeter:
    """Accumulates simulated cycles, with named buckets for reporting."""

    total: int = 0
    buckets: dict = field(default_factory=dict)

    def charge(self, cycles: int | float, bucket: str = "compute") -> None:
        amount = int(cycles)
        if amount < 0:
            raise ValueError("cannot charge negative cycles")
        self.total += amount
        self.buckets[bucket] = self.buckets.get(bucket, 0) + amount

    def merge(self, other: "CycleMeter") -> None:
        self.total += other.total
        for bucket, amount in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + amount

    def reset(self) -> None:
        self.total = 0
        self.buckets.clear()

    def snapshot(self) -> dict:
        return {"total": self.total, **self.buckets}
