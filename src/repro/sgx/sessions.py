"""Incremental attestation sessions: quote caching and resumption tickets.

Full remote attestation is the most expensive leg of bringing a device
online — a quote-verify (Schnorr) plus a DH handshake per join.  At IoT
fleet scale, where flaky links make disconnect-and-rejoin churn the
*common* case, paying that full price on every rejoin is absurd: nothing
about the platform or the enclave changed while the radio faded.

:class:`SessionBroker` makes re-attestation incremental:

* **Quote caching** — successful verifications are cached keyed by
  ``(platform_id, MRENCLAVE, policy_epoch)``.  Re-verifying the *same*
  quote body under the *same* policy epoch is answered from cache; any
  change to the quote digest, the measurement, or the epoch forces a
  full verify.  A stale quote replayed after a policy bump therefore
  never hits cache — the epoch in the key has moved on.
* **Resumption tickets** — :meth:`establish` mints a MACed
  :class:`SessionTicket` naming the platform, its measurement, and the
  epoch it attested under.  A rejoining client presents the ticket to
  :meth:`resume` and skips both the quote-verify and the DH leg:
  :meth:`resume_key` derives the resumed channel's traffic key from the
  broker's ticket secret, so both ends agree on keys without a fresh
  handshake.
* **Forced re-attestation** — :meth:`bump_policy_epoch` advances the
  verifier's trust epoch (new published measurement, revocation sweep);
  every outstanding ticket and cache entry is instantly stale, because
  both are keyed by epoch.  Resumption also re-checks revocation and the
  current measurement policy on every call: a ticket never outlives a
  revocation, and a measurement-policy change rejects tickets minted for
  the old hash even within an epoch.

The broker is deliberately *count-transparent* (``counters()``): the
fleet chaos harness asserts that full re-attestations grow sublinearly
in rejoin count, which is the whole point of the layer.
"""

from __future__ import annotations

import hmac as _hmac
from dataclasses import dataclass, replace

from repro.crypto.kdf import hkdf
from repro.errors import AttestationError
from repro.sgx.attestation import (
    AttestationResult,
    AttestationService,
    Quote,
    QuotePolicy,
)

__all__ = ["SessionTicket", "SessionBroker"]

_TICKET_ID_BYTES = 16


@dataclass(frozen=True)
class SessionTicket:
    """A resumption ticket: proof of a prior full attestation.

    The MAC binds the ticket to the broker that minted it; the embedded
    ``policy_epoch`` pins the trust state it attested under.  Tickets
    are bearer tokens *within the simulation* — confidentiality of the
    ticket on the wire is the secure channel's job, exactly as with TLS
    session tickets.
    """

    ticket_id: bytes
    platform_id: bytes
    mrenclave: bytes
    policy_epoch: int
    mac: bytes

    def body(self) -> bytes:
        return b"|".join(
            (
                b"attestation-session-ticket",
                self.ticket_id,
                self.platform_id,
                self.mrenclave,
                self.policy_epoch.to_bytes(8, "big"),
            )
        )


class SessionBroker:
    """Verifier-side session state: quote cache + ticket registry."""

    def __init__(
        self,
        verifier: AttestationService,
        policy: QuotePolicy | None = None,
        *,
        seed: bytes = b"attestation-sessions",
    ) -> None:
        self.verifier = verifier
        self.policy = policy or QuotePolicy()
        self._mac_key = hkdf(seed, "session-ticket-mac", length=32)
        self._next_ticket = 0
        # (platform_id, mrenclave, policy_epoch) -> (quote digest, result)
        self._cache: dict[
            tuple[bytes, bytes, int], tuple[bytes, AttestationResult]
        ] = {}
        self._results: dict[bytes, AttestationResult] = {}
        self.full_verifications = 0
        self.cache_hits = 0
        self.resumed = 0
        self.resume_rejected = 0
        self.epoch_bumps = 0

    # ------------------------------------------------------------- lifecycle

    def bump_policy_epoch(self) -> int:
        """Advance the trust epoch; all tickets and cache entries go stale.

        Nothing is explicitly purged: cache entries and tickets are
        keyed/pinned by epoch, so stale state is unreachable by
        construction rather than by cleanup — there is no window where a
        missed purge would honor stale trust.
        """
        self.policy = replace(
            self.policy, policy_epoch=self.policy.policy_epoch + 1
        )
        self.epoch_bumps += 1
        return self.policy.policy_epoch

    def counters(self) -> dict[str, int]:
        return {
            "full_verifications": self.full_verifications,
            "cache_hits": self.cache_hits,
            "resumed": self.resumed,
            "resume_rejected": self.resume_rejected,
            "epoch_bumps": self.epoch_bumps,
        }

    # ----------------------------------------------------------- attestation

    def verify(self, quote: Quote) -> AttestationResult:
        """Verify a quote, answering identical re-verifications from cache.

        Cache hits require the *same* quote digest under the *same*
        ``(platform, MRENCLAVE, policy_epoch)`` key: a different quote
        body (fresh report data, new enclave version) or a bumped epoch
        always pays the full verification.
        """
        key = (quote.platform_id, quote.mrenclave, self.policy.policy_epoch)
        digest = quote.signed_digest()
        cached = self._cache.get(key)
        if cached is not None and _hmac.compare_digest(cached[0], digest):
            # Still re-check revocation: a cached verification must not
            # outlive the platform's standing.
            if self.verifier.is_revoked(quote.platform_id):
                self._cache.pop(key, None)
                raise AttestationError("quote from a revoked platform")
            self.cache_hits += 1
            return cached[1]
        result = self.verifier.verify(quote, self.policy)
        self.full_verifications += 1
        self._cache[key] = (digest, result)
        return result

    def establish(self, quote: Quote) -> tuple[AttestationResult, SessionTicket]:
        """Verify (cached or full) and mint a resumption ticket."""
        result = self.verify(quote)
        self._next_ticket += 1
        ticket_id = b"ticket-" + self._next_ticket.to_bytes(
            _TICKET_ID_BYTES - 7, "big"
        )
        ticket = SessionTicket(
            ticket_id=ticket_id,
            platform_id=quote.platform_id,
            mrenclave=quote.mrenclave,
            policy_epoch=self.policy.policy_epoch,
            mac=b"",
        )
        ticket = replace(
            ticket,
            mac=_hmac.new(self._mac_key, ticket.body(), "sha256").digest(),
        )
        self._results[ticket_id] = result
        return result, ticket

    def resume(self, ticket: SessionTicket) -> AttestationResult:
        """Admit a rejoining client without a full quote-verify.

        The cheap checks still run on *every* resumption: ticket MAC
        (the broker minted it), policy epoch (no bump since), current
        measurement policy (the hash the ticket names is still the
        published one), and revocation (the platform is still in good
        standing).  Any failure raises :class:`AttestationError` — the
        client falls back to a full attestation.
        """
        expected = _hmac.new(self._mac_key, ticket.body(), "sha256").digest()
        if not _hmac.compare_digest(expected, ticket.mac):
            self.resume_rejected += 1
            raise AttestationError("session ticket MAC invalid")
        if ticket.policy_epoch != self.policy.policy_epoch:
            self.resume_rejected += 1
            raise AttestationError(
                f"session ticket is from policy epoch {ticket.policy_epoch}; "
                f"current epoch is {self.policy.policy_epoch} — re-attest"
            )
        if (
            self.policy.expected_mrenclave is not None
            and ticket.mrenclave != self.policy.expected_mrenclave
        ):
            self.resume_rejected += 1
            raise AttestationError(
                "session ticket names a measurement the policy no longer "
                "trusts — re-attest"
            )
        if self.verifier.is_revoked(ticket.platform_id):
            self.resume_rejected += 1
            raise AttestationError("session ticket from a revoked platform")
        if not self.verifier.is_provisioned(ticket.platform_id):
            self.resume_rejected += 1
            raise AttestationError("session ticket from an unknown platform")
        result = self._results.get(ticket.ticket_id)
        if result is None:
            self.resume_rejected += 1
            raise AttestationError("session ticket is not registered here")
        self.resumed += 1
        return result

    def resume_key(self, ticket: SessionTicket) -> bytes:
        """Traffic key for a resumed channel — no DH leg required.

        Derived from the broker's ticket secret and the ticket identity,
        so only the broker and the ticket holder (who received the key at
        establishment) can compute it.  Callers feed it straight to
        :class:`repro.network.channel.SecureChannel`.
        """
        return hkdf(
            self._mac_key + ticket.body(), "session-resume-key", length=32
        )
