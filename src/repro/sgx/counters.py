"""Monotonic counters for rollback protection.

SGX offers platform-service monotonic counters so an enclave can detect a
malicious host replaying stale sealed state (e.g. an old blinding value, or
an already-spent signing quota).  Counters are scoped to the creating
enclave's measurement: another enclave cannot advance or read them.
"""

from __future__ import annotations

from repro.errors import EnclaveError


class MonotonicCounter:
    """A counter that only moves forward."""

    def __init__(self, owner_mrenclave: bytes, name: str) -> None:
        self._owner = owner_mrenclave
        self.name = name
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def increment(self) -> int:
        """Advance by one and return the new value."""
        self._value += 1
        return self._value

    def assert_at_least(self, expected: int) -> None:
        """Rollback check: raise if the counter is behind ``expected``."""
        if self._value < expected:
            raise EnclaveError(
                f"rollback detected on counter {self.name!r}: "
                f"value {self._value} < expected {expected}"
            )


class CounterStore:
    """Per-platform registry of counters, keyed by (measurement, name)."""

    def __init__(self) -> None:
        self._counters: dict[tuple[bytes, str], MonotonicCounter] = {}

    def counter_for(self, mrenclave: bytes, name: str) -> MonotonicCounter:
        key = (mrenclave, name)
        counter = self._counters.get(key)
        if counter is None:
            counter = MonotonicCounter(mrenclave, name)
            self._counters[key] = counter
        return counter

    def __len__(self) -> int:
        return len(self._counters)
