"""The Glimmer of Trust: the paper's primary contribution.

A *Glimmer* (Figure 2) is a logical trusted third party interposed on the
trust boundary between a client and a service.  It performs "very limited
but essential trusted functionality: validation of private data as
specified by the service, followed by submission to the service", and must
guarantee two properties:

* **Input Confidentiality** — raw inputs are discarded after processing and
  outputs leak a bounded amount about private data (via blinding or
  aggregation);
* **Input Integrity** — only validated contributions are endorsed.

This package realizes the SGX design of Figure 3 on the simulator:

* :mod:`repro.core.validation` / :mod:`repro.core.predicates` — the
  Validation component and the predicate ladder of §2;
* :mod:`repro.core.blinding` — the Blinding component (§3's sum-zero
  scheme, via :mod:`repro.crypto.masking`);
* :mod:`repro.core.signing` — the Signing component and the signed
  contribution format;
* :mod:`repro.core.glimmer` — the enclave program wiring the three
  components together behind a single ecall;
* :mod:`repro.core.provisioning` — vetting registry, attested key
  provisioning, blinding-mask distribution;
* :mod:`repro.core.service` — the cloud service: quote/signature
  verification, deduplication, aggregation;
* :mod:`repro.core.client` — honest and malicious client devices;
* :mod:`repro.core.confidential` — §4.1 validation confidentiality
  (encrypted predicates) and :mod:`repro.core.auditor` (the 1-bit runtime
  auditor);
* :mod:`repro.core.remote` — §4.2 Glimmer-as-a-service for TEE-less
  clients.
"""

from repro.core.blinding import BlindingComponent
from repro.core.client import ClientDevice, MaliciousClient
from repro.core.glimmer import GlimmerProgram, ProcessRequest, build_glimmer_image
from repro.core.predicates import (
    KeystrokeCorroborationPredicate,
    NormBoundPredicate,
    RangeCheckPredicate,
    RateLimitPredicate,
)
from repro.core.provisioning import ServiceProvisioner, VettingRegistry
from repro.core.service import CloudService
from repro.core.signing import SignedContribution, SigningComponent
from repro.core.validation import PredicateRegistry, PrivateContext, ValidationOutcome

__all__ = [
    "BlindingComponent",
    "ClientDevice",
    "MaliciousClient",
    "GlimmerProgram",
    "ProcessRequest",
    "build_glimmer_image",
    "KeystrokeCorroborationPredicate",
    "NormBoundPredicate",
    "RangeCheckPredicate",
    "RateLimitPredicate",
    "ServiceProvisioner",
    "VettingRegistry",
    "CloudService",
    "SignedContribution",
    "SigningComponent",
    "PredicateRegistry",
    "PrivateContext",
    "ValidationOutcome",
]
