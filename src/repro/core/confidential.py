"""§4.1 Validation Confidentiality: encrypted predicates + 1-bit output.

The bot-detection scenario inverts the usual secrecy: now the *service*
wants its validation predicate (proprietary detector weights) hidden from
the client, while the *user* wants a bound on what the opaque predicate can
exfiltrate.  The resolution:

* the detector ships **encrypted** to the Glimmer over an attested DH
  handshake ("Glimmers can provide validation confidentiality by accepting
  encrypted code and data from the web service and decrypting and running
  that code inside the enclave");
* the Glimmer emits only a :class:`~repro.core.auditor.VerdictMessage` —
  one bit, signature, challenge response — and the host-side
  :class:`~repro.core.auditor.RuntimeAuditor` enforces that format.

:class:`ExfiltratingGlimmerProgram` is the in-repo adversary: a malicious
encrypted predicate that tries to leak the user's private browsing profile
through its outputs.  The auditor clamps it to one bit per message
(experiment E9) and rejects outright any attempt to stuff data into the
response or signature fields.
"""

from __future__ import annotations

import struct

from repro.core.auditor import VerdictMessage, expected_response
from repro.core.encoding import decode_public_key
from repro.core.glimmer import KeyDelivery, handshake_digest
from repro.core.provisioning import VettingRegistry, _verify_bound_quote
from repro.crypto.cipher import AuthenticatedCipher, SealedBox
from repro.crypto.dh import DHKeyPair
from repro.crypto.drbg import HmacDrbg
from repro.crypto.group_ops import DHSessionCache
from repro.crypto.hashing import hash_bytes, hash_items
from repro.crypto.schnorr import SchnorrKeyPair, SchnorrPublicKey, SchnorrSignature
from repro.errors import AuthenticationError, CryptoError, ProtocolError
from repro.sgx.enclave import EnclaveProgram, ecall
from repro.sgx.measurement import EnclaveImage, VendorKey
from repro.workloads.botnet import DetectorWeights, SessionSignals


# ----------------------------------------------------------- detector codec

def encode_detector(detector: DetectorWeights, reporting_secret: int) -> bytes:
    """Serialize the secret detector + reporting key for encrypted delivery."""
    weights = detector.weights
    return b"".join(
        [
            len(weights).to_bytes(2, "big"),
            struct.pack(f">{len(weights)}d", *weights),
            struct.pack(">d", detector.bias),
            struct.pack(">d", detector.threshold),
            reporting_secret.to_bytes(256, "big"),
        ]
    )


def decode_detector(blob: bytes) -> tuple[DetectorWeights, int]:
    if len(blob) < 2:
        raise CryptoError("detector blob too short")
    count = int.from_bytes(blob[:2], "big")
    expected = 2 + 8 * count + 16 + 256
    if len(blob) != expected:
        raise CryptoError("detector blob has wrong length")
    offset = 2
    weights = struct.unpack(f">{count}d", blob[offset : offset + 8 * count])
    offset += 8 * count
    bias, threshold = struct.unpack(">2d", blob[offset : offset + 16])
    offset += 16
    secret = int.from_bytes(blob[offset:], "big")
    return DetectorWeights(weights=weights, bias=bias, threshold=threshold), secret


def verdict_digest(session_id: str, challenge: bytes, verdict_bit: int) -> bytes:
    """What the reporting key signs."""
    return hash_items(
        "bot-verdict", [session_id.encode("utf-8"), challenge, bytes([verdict_bit])]
    )


# -------------------------------------------------------- the Glimmer side

class ConfidentialGlimmerProgram(EnclaveProgram):
    """A Glimmer whose validation predicate arrives encrypted at runtime.

    The measured config holds only the service's handshake-verification
    key; the detector itself is dynamic — which is exactly why the runtime
    auditor, not code vetting, bounds this Glimmer's output.
    """

    def on_load(self) -> None:
        self._service_identity = decode_public_key(self.api.config)
        self._sessions: dict[bytes, DHKeyPair] = {}
        # (peer DH public, context) -> established key; a repeated peer
        # public means the provisioner is resuming a cached session (see
        # GlimmerProgram._open_delivery for the protocol).
        self._session_keys: dict[tuple[int, str], bytes] = {}
        self._detector: DetectorWeights | None = None
        self._reporting: SchnorrKeyPair | None = None

    @ecall
    def begin_handshake(self, session_id: bytes) -> int:
        if session_id in self._sessions:
            raise ProtocolError("session id already in use")
        self.api.charge_dh()
        keypair = DHKeyPair.generate(self._service_identity.group, self.api.rng)
        self._sessions[session_id] = keypair
        return keypair.public

    @ecall
    def install_detector(self, delivery: KeyDelivery) -> None:
        """Decrypt and install the service's secret detector."""
        keypair = self._sessions.pop(delivery.session_id, None)
        if keypair is None:
            raise ProtocolError("no handshake in progress for this session")
        digest = handshake_digest(
            "detector-provisioning",
            delivery.session_id,
            keypair.public,
            delivery.peer_dh_public,
        )
        try:
            self._service_identity.verify(digest, delivery.handshake_signature)
        except AuthenticationError as exc:
            raise AuthenticationError("service handshake signature invalid") from exc
        cache_key = (delivery.peer_dh_public, "detector-provisioning")
        base_key = self._session_keys.get(cache_key)
        if base_key is not None:
            key = DHSessionCache.resume_key(
                base_key, delivery.session_id, "detector-provisioning"
            )
        else:
            self.api.charge_dh()
            key = keypair.derive_key(
                delivery.peer_dh_public, "detector-provisioning"
            )
            if len(self._session_keys) >= 128:
                self._session_keys.pop(next(iter(self._session_keys)))
            self._session_keys[cache_key] = key
        cipher = AuthenticatedCipher(key)
        self.api.charge_aead(len(delivery.encrypted_payload))
        plaintext = cipher.decrypt(
            SealedBox.from_bytes(delivery.encrypted_payload),
            associated_data=delivery.session_id,
        )
        detector, reporting_secret = decode_detector(plaintext)
        self._detector = detector
        self._reporting = SchnorrKeyPair.from_secret(
            reporting_secret, self._service_identity.group
        )

    @ecall
    def has_detector(self) -> bool:
        return self._detector is not None

    def _verdict_for(self, signals: SessionSignals) -> int:
        """Hook subclassed by the exfiltration adversary."""
        assert self._detector is not None
        return 1 if self._detector.is_human(signals) else 0

    @ecall
    def evaluate_session(self, session_id: str, challenge: bytes) -> VerdictMessage:
        """Score the session's signals; emit the public 1-bit message.

        The raw signals (browsing history, cookies, interests) are fetched
        via ocall, used, and dropped — only the bit leaves.
        """
        if self._detector is None or self._reporting is None:
            raise ProtocolError("detector not provisioned")
        signals = self.api.ocall("collect_session_signals", session_id)
        if not isinstance(signals, SessionSignals):
            raise ProtocolError("host returned malformed session signals")
        self.api.charge(600, "validation")
        verdict = self._verdict_for(signals)
        self.api.charge_signature()
        signature = self._reporting.sign(verdict_digest(session_id, challenge, verdict))
        return VerdictMessage(
            session_id=session_id,
            challenge=challenge,
            verdict_bit=verdict,
            challenge_response=expected_response(challenge, verdict),
            signature_bytes=signature.to_bytes(),
        )


class ExfiltratingGlimmerProgram(ConfidentialGlimmerProgram):
    """A malicious encrypted predicate that leaks private data bit by bit.

    Instead of the detector verdict, each evaluated session emits one bit
    of ``H(interest_profile)`` — the strongest attack the 1-bit format
    permits.  The auditor cannot tell the bits apart (that is the residual
    covert channel the paper concedes) but it *counts* them, so total
    leakage is capped at one bit per audited message.
    """

    def on_load(self) -> None:
        super().on_load()
        self._exfil_position = 0

    def _verdict_for(self, signals: SessionSignals) -> int:
        secret = hash_bytes("exfil-target", signals.interest_profile.encode("utf-8"))
        bit = (secret[self._exfil_position // 8] >> (self._exfil_position % 8)) & 1
        self._exfil_position += 1
        return bit


class MalformedOutputGlimmerProgram(ConfidentialGlimmerProgram):
    """Tries to widen the channel by stuffing secrets into the response field.

    The auditor must reject every message this program emits.
    """

    def _verdict_for(self, signals: SessionSignals) -> int:
        return 1

    @ecall
    def evaluate_session(self, session_id: str, challenge: bytes) -> VerdictMessage:
        if self._detector is None or self._reporting is None:
            raise ProtocolError("detector not provisioned")
        signals = self.api.ocall("collect_session_signals", session_id)
        secret = hash_bytes("stuffed", repr(signals.browsing_history).encode())
        signature = self._reporting.sign(verdict_digest(session_id, challenge, 1))
        return VerdictMessage(
            session_id=session_id,
            challenge=challenge,
            verdict_bit=1,
            challenge_response=secret,  # 256 smuggled bits — must be caught
            signature_bytes=signature.to_bytes(),
        )


# --------------------------------------------------------- the service side

class BotDetectionService:
    """The web service: ships the secret detector, challenges, verifies verdicts."""

    def __init__(
        self,
        identity: SchnorrKeyPair,
        detector: DetectorWeights,
        attestation,
        registry: VettingRegistry,
        glimmer_name: str,
        rng: HmacDrbg,
    ) -> None:
        self.identity = identity
        self.detector = detector
        self.attestation = attestation
        self.registry = registry
        self.glimmer_name = glimmer_name
        self.rng = rng
        self.reporting_keypair = SchnorrKeyPair.generate(
            rng.fork("reporting-key"), identity.group
        )
        self._outstanding: dict[str, bytes] = {}
        self.session_cache: DHSessionCache | None = None
        """Opt-in cross-round handshake resumption (changes this
        provisioner's DRBG stream when enabled — see
        :class:`repro.core.provisioning._ProvisionerBase`)."""

    def provision_detector(
        self, session_id: bytes, glimmer_dh_public: int, quote
    ) -> KeyDelivery:
        """Attest the Glimmer, then ship detector + reporting key encrypted."""
        expected = self.registry.approved_measurement(self.glimmer_name)
        _verify_bound_quote(self.attestation, quote, expected, glimmer_dh_public)
        cached = (
            self.session_cache.lookup(quote.platform_id, "detector-provisioning")
            if self.session_cache is not None
            else None
        )
        if cached is not None:
            own_public, base_key = cached
            key = DHSessionCache.resume_key(
                base_key, session_id, "detector-provisioning"
            )
        else:
            keypair = DHKeyPair.generate(self.identity.group, self.rng)
            own_public = keypair.public
            key = keypair.derive_key(glimmer_dh_public, "detector-provisioning")
            if self.session_cache is not None:
                self.session_cache.store(
                    quote.platform_id, "detector-provisioning", own_public, key
                )
        digest = handshake_digest(
            "detector-provisioning", session_id, glimmer_dh_public, own_public
        )
        signature = self.identity.sign(digest)
        cipher = AuthenticatedCipher(key)
        payload = encode_detector(self.detector, self.reporting_keypair.secret)
        nonce = self.rng.generate(16)
        box = cipher.encrypt(nonce, payload, associated_data=session_id)
        return KeyDelivery(
            session_id=session_id,
            peer_dh_public=own_public,
            handshake_signature=signature,
            encrypted_payload=box.to_bytes(),
        )

    def new_challenge(self, session_id: str) -> bytes:
        challenge = self.rng.generate(32)
        self._outstanding[session_id] = challenge
        return challenge

    def challenge_for(self, session_id: str) -> bytes:
        challenge = self._outstanding.get(session_id)
        if challenge is None:
            raise ProtocolError(f"no outstanding challenge for {session_id!r}")
        return challenge

    def verify_verdict(self, message: VerdictMessage) -> bool:
        """Check signature + challenge; returns the verdict (True = human).

        Raises on forgery or stale challenge; consumes the challenge so a
        verdict cannot be replayed.
        """
        challenge = self._outstanding.pop(message.session_id, None)
        if challenge is None or challenge != message.challenge:
            raise ProtocolError("verdict does not answer an outstanding challenge")
        if message.challenge_response != expected_response(
            message.challenge, message.verdict_bit
        ):
            raise AuthenticationError("challenge response invalid")
        signature = SchnorrSignature.from_bytes(message.signature_bytes)
        self.reporting_keypair.public_key.verify(
            verdict_digest(message.session_id, message.challenge, message.verdict_bit),
            signature,
        )
        return message.verdict_bit == 1


def build_confidential_image(
    vendor: VendorKey,
    service_identity: SchnorrPublicKey,
    program_class: type = ConfidentialGlimmerProgram,
    name: str = "bot-glimmer",
    version: int = 1,
) -> EnclaveImage:
    """Measure and sign a confidential-validation Glimmer image."""
    from repro.core.encoding import encode_public_key

    return EnclaveImage.build(
        program_class,
        vendor,
        name=name,
        version=version,
        config=encode_public_key(service_identity),
    )


def raw_signal_leakage_bits(signals: SessionSignals) -> int:
    """How many sensitive bits the no-Glimmer baseline uploads.

    Counts the private context a raw-signal detector would ship to the
    service: browsing history entries, cookie identifiers, and the interest
    profile — the fields §4.1 names as the privacy problem.
    """
    history_bits = sum(8 * len(site) for site in signals.browsing_history)
    cookie_bits = sum(4 * len(cookie) for cookie in signals.cookie_ids)  # hex chars
    interest_bits = 8 * len(signals.interest_profile)
    return history_bits + cookie_bits + interest_bits
