"""Canonical byte encodings for everything the Glimmer signs or transmits.

Signatures are only as strong as the unambiguity of what they cover, so all
signed structures funnel through these helpers: length-framed field lists
hashed under domain tags.  Public keys also serialize here so that they can
ride inside measured enclave configs.
"""

from __future__ import annotations

import struct
from typing import Sequence

from repro.crypto.dh import DHGroup, OAKLEY_GROUP_1, TEST_GROUP
from repro.crypto.schnorr import SchnorrPublicKey
from repro.errors import ConfigurationError
from repro.perf import kernels

_GROUPS = {group.name: group for group in (OAKLEY_GROUP_1, TEST_GROUP)}


def encode_float_vector(values: Sequence[float]) -> bytes:
    """IEEE-754 doubles, big-endian, length-prefixed."""
    return len(values).to_bytes(4, "big") + struct.pack(f">{len(values)}d", *values)


def decode_float_vector(blob: bytes) -> list[float]:
    if len(blob) < 4:
        raise ConfigurationError("float vector blob too short")
    count = int.from_bytes(blob[:4], "big")
    expected = 4 + 8 * count
    if len(blob) != expected:
        raise ConfigurationError("float vector blob has wrong length")
    return list(struct.unpack(f">{count}d", blob[4:]))


def encode_ring_vector(values: Sequence[int]) -> bytes:
    """Unsigned 64-bit ring elements, big-endian, length-prefixed."""
    words = kernels.as_ring(values)  # reduces out-of-range values mod 2^64
    return len(words).to_bytes(4, "big") + kernels.be_words_to_bytes(words)


def decode_ring_vector(blob: bytes) -> list[int]:
    if len(blob) < 4:
        raise ConfigurationError("ring vector blob too short")
    count = int.from_bytes(blob[:4], "big")
    expected = 4 + 8 * count
    if len(blob) != expected:
        raise ConfigurationError("ring vector blob has wrong length")
    return list(kernels.bytes_to_be_words(blob[4:]))


def encode_public_key(key: SchnorrPublicKey) -> bytes:
    name = key.group.name.encode("utf-8")
    element = key.element.to_bytes(256, "big")
    return len(name).to_bytes(2, "big") + name + element


def decode_public_key(blob: bytes) -> SchnorrPublicKey:
    if len(blob) < 2:
        raise ConfigurationError("public key blob too short")
    name_len = int.from_bytes(blob[:2], "big")
    if len(blob) != 2 + name_len + 256:
        raise ConfigurationError("public key blob has wrong length")
    name = blob[2 : 2 + name_len].decode("utf-8")
    group = _GROUPS.get(name)
    if group is None:
        raise ConfigurationError(f"unknown group {name!r}")
    element = int.from_bytes(blob[2 + name_len :], "big")
    return SchnorrPublicKey(group=group, element=element)


def group_by_name(name: str) -> DHGroup:
    group = _GROUPS.get(name)
    if group is None:
        raise ConfigurationError(f"unknown group {name!r}")
    return group
