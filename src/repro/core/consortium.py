"""The consortium Glimmer: §2's non-TEE realization, built and priced.

"Having an actual third party performing the role of the Glimmer is,
arguably, the realization of this architecture.  For example, the
Electronic Frontier Foundation (EFF), or a consortium of privacy advocacy
organizations could, in ensemble, perform validation and blinding, perhaps
using multi-party computation, or simpler threshold cryptography on inputs.
However, the deployment cost for such a solution would be high."

This module implements that ensemble so experiment E13 can measure the
deployment cost the paper asserts:

* each :class:`ConsortiumMember` independently validates the raw
  contribution (so the trust shift is explicit: members *see* user data,
  unlike the SGX Glimmer) and holds an additive share of every client's
  blinding mask — no single member knows a full mask, so privacy against
  the *service* needs only one honest member;
* a contribution is endorsed when a **quorum** of members signs the same
  contribution digest; the service reconstructs the blinded vector by
  ring-summing the members' shares, so *every* member must respond for the
  sum to be correct — the availability cost E13 measures under member
  failures;
* masks are sum-zero *across clients per member*, so cross-client sums
  cancel exactly as in §3.

The same :class:`~repro.core.service.CloudService`-grade checks apply on
the service side (:class:`ConsortiumService`): quorum, digest agreement,
per-member signatures, replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.validation import PrivateContext, default_registry
from repro.crypto.drbg import HmacDrbg
from repro.crypto.fixedpoint import FixedPointCodec
from repro.crypto.hashing import hash_items
from repro.crypto.masking import SumZeroMasks, apply_mask
from repro.crypto.schnorr import SchnorrKeyPair, SchnorrPublicKey
from repro.errors import ConfigurationError, ProtocolError, ValidationError


def share_digest(
    round_id: int, client_index: int, member_name: str, values_digest: bytes, share: list[int]
) -> bytes:
    """What a member signs: binds round, client, member, raw digest, and share."""
    return hash_items(
        "consortium-share",
        [
            round_id.to_bytes(8, "big"),
            client_index.to_bytes(4, "big"),
            member_name.encode("utf-8"),
            values_digest,
            b"".join(int(v).to_bytes(8, "big") for v in share),
        ],
    )


def values_digest(values) -> bytes:
    """Digest of the raw contribution all members must agree they validated."""
    return hash_items(
        "consortium-values",
        [b"".join(round(float(v) * (1 << 24)).to_bytes(8, "big", signed=True) for v in values)],
    )


@dataclass(frozen=True)
class MemberEndorsement:
    """One member's output for one contribution."""

    member_name: str
    round_id: int
    client_index: int
    values_digest: bytes
    share: tuple[int, ...]
    signature: object


class ConsortiumMember:
    """One advocacy organization in the ensemble.

    Sees raw contributions and private context (the design's trust cost),
    validates with its own predicate instance, and holds additive mask
    shares per round.
    """

    def __init__(
        self,
        name: str,
        predicate_spec: str,
        rng: HmacDrbg,
        codec: FixedPointCodec | None = None,
        include_plaintext: bool = False,
    ) -> None:
        self.name = name
        self.codec = codec or FixedPointCodec()
        self.identity = SchnorrKeyPair.generate(rng.fork("identity"))
        self._rng = rng
        self._predicate = default_registry().build(predicate_spec)
        self._include_plaintext = include_plaintext
        """Exactly one member per consortium carries the encoded plaintext in
        its share; the rest contribute pure mask shares."""
        self._round_masks: dict[int, SumZeroMasks] = {}
        self.validations_run = 0
        self.available = True
        """Toggled off by E13's failure injection."""

    def open_round(self, round_id: int, num_clients: int, length: int) -> None:
        if round_id in self._round_masks:
            raise ProtocolError(f"{self.name}: round {round_id} already open")
        self._round_masks[round_id] = SumZeroMasks.sample(
            num_clients, length, self._rng.fork(f"round-{round_id}"),
            modulus_bits=self.codec.modulus_bits,
        )

    def endorse(
        self,
        round_id: int,
        client_index: int,
        values,
        context: PrivateContext,
    ) -> MemberEndorsement:
        """Validate the raw contribution; return a signed blinded share.

        Raises :class:`ValidationError` on a failed predicate and
        :class:`ProtocolError` if this member is unavailable or the round
        is unknown.
        """
        if not self.available:
            raise ProtocolError(f"{self.name} is unavailable")
        masks = self._round_masks.get(round_id)
        if masks is None:
            raise ProtocolError(f"{self.name}: round {round_id} not open")
        self.validations_run += 1
        outcome = self._predicate.evaluate(list(values), context)
        if not outcome.passed:
            raise ValidationError(f"{self.name}: {outcome.reason}")
        mask = list(masks.mask_for(client_index))
        if self._include_plaintext:
            share = apply_mask(self.codec.encode(list(values)), mask)
        else:
            share = mask
        digest = values_digest(values)
        signature = self.identity.sign(
            share_digest(round_id, client_index, self.name, digest, share)
        )
        return MemberEndorsement(
            member_name=self.name,
            round_id=round_id,
            client_index=client_index,
            values_digest=digest,
            share=tuple(share),
            signature=signature,
        )

    def reveal_dropout_share(self, round_id: int, client_index: int) -> tuple[int, ...]:
        """§3-style repair: disclose a non-submitting client's mask share."""
        masks = self._round_masks.get(round_id)
        if masks is None:
            raise ProtocolError(f"{self.name}: round {round_id} not open")
        return masks.mask_for(client_index)


def build_consortium(
    num_members: int,
    predicate_spec: str,
    rng: HmacDrbg,
    codec: FixedPointCodec | None = None,
) -> list[ConsortiumMember]:
    """A consortium with exactly one plaintext-carrying member."""
    if num_members < 2:
        raise ConfigurationError("a consortium needs at least two members")
    codec = codec or FixedPointCodec()
    return [
        ConsortiumMember(
            name=f"member-{index}",
            predicate_spec=predicate_spec,
            rng=rng.fork(f"member-{index}"),
            codec=codec,
            include_plaintext=(index == 0),
        )
        for index in range(num_members)
    ]


@dataclass
class _ConsortiumRound:
    round_id: int
    num_clients: int
    quorum: int
    member_names: tuple[str, ...]
    accepted: dict = field(default_factory=dict)  # client_index -> summed share
    seen_digests: dict = field(default_factory=dict)
    rejected: dict = field(default_factory=dict)

    def reject(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1


class ConsortiumService:
    """The cloud service for the consortium deployment.

    Admits a contribution only with a quorum of member signatures agreeing
    on one raw-contribution digest, and with shares from *all* members
    (otherwise masks would not cancel).  Aggregates by ring-summing across
    clients.
    """

    def __init__(
        self,
        member_keys: dict[str, SchnorrPublicKey],
        quorum: int,
        codec: FixedPointCodec | None = None,
    ) -> None:
        if not 2 <= quorum <= len(member_keys):
            raise ConfigurationError("quorum must be in [2, num_members]")
        self._member_keys = dict(member_keys)
        self.quorum = quorum
        self._codec = codec or FixedPointCodec()
        self._rounds: dict[int, _ConsortiumRound] = {}

    def open_round(self, round_id: int, num_clients: int) -> None:
        if round_id in self._rounds:
            raise ProtocolError(f"round {round_id} already open")
        self._rounds[round_id] = _ConsortiumRound(
            round_id=round_id,
            num_clients=num_clients,
            quorum=self.quorum,
            member_names=tuple(sorted(self._member_keys)),
        )

    def round_state(self, round_id: int) -> _ConsortiumRound:
        state = self._rounds.get(round_id)
        if state is None:
            raise ProtocolError(f"round {round_id} not open")
        return state

    def submit(
        self, round_id: int, client_index: int, endorsements: list[MemberEndorsement]
    ) -> bool:
        """Admit one client's endorsement bundle; returns True on acceptance."""
        state = self.round_state(round_id)
        if client_index in state.accepted:
            state.reject("duplicate-client")
            return False
        by_member = {e.member_name: e for e in endorsements}
        if set(by_member) != set(state.member_names):
            state.reject("missing-member-shares")
            return False
        digests = {e.values_digest for e in endorsements}
        if len(digests) != 1:
            state.reject("digest-disagreement")
            return False
        valid_signatures = 0
        for endorsement in endorsements:
            key = self._member_keys.get(endorsement.member_name)
            if key is None:
                continue
            if endorsement.round_id != round_id or endorsement.client_index != client_index:
                state.reject("mismatched-endorsement")
                return False
            digest = share_digest(
                round_id,
                client_index,
                endorsement.member_name,
                endorsement.values_digest,
                list(endorsement.share),
            )
            if key.is_valid(digest, endorsement.signature):
                valid_signatures += 1
        if valid_signatures < self.quorum:
            state.reject("quorum-not-met")
            return False
        total = self._codec.sum_vectors([list(e.share) for e in endorsements])
        state.accepted[client_index] = total
        return True

    def finalize_round(
        self, round_id: int, dropout_shares: list[list[int]] = ()
    ) -> np.ndarray:
        """Ring-sum the accepted blinded vectors (plus dropout repairs), decode."""
        state = self.round_state(round_id)
        if not state.accepted:
            raise ProtocolError("no accepted contributions")
        total = self._codec.sum_vectors(list(state.accepted.values()))
        for share in dropout_shares:
            total = apply_mask(total, list(share), self._codec.modulus_bits)
        return self._codec.decode(total) / len(state.accepted)
