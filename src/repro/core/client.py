"""Client devices: honest, and the rogues' gallery of Figure 1d.

A :class:`ClientDevice` owns an SGX platform, loads the vetted Glimmer
image, serves the Glimmer's ocalls for private data from its local stores,
and drives the attested provisioning handshakes.  Its
:meth:`contribute` method is the end-to-end client path of Figure 3:
train → hand to Glimmer → relay whatever the Glimmer endorsed.

:class:`MaliciousClient` extends it with every cheat the paper discusses:

* ``poison_*`` — feed manipulated values to the Glimmer (caught or not by
  the predicate, per the E6 ladder);
* ``forge_evidence`` — answer the Glimmer's private-data ocall with
  fabricated context (robotic keystroke traces, fake sentences);
* ``bypass_glimmer`` — submit a self-signed contribution without any
  enclave (fails the service's signature check);
* ``tamper_after_signing`` — alter a genuinely signed payload in transit
  (breaks the signature).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.glimmer import ProcessRequest
from repro.core.provisioning import BlinderProvisioner, ServiceProvisioner
from repro.core.signing import SignedContribution
from repro.core.validation import PrivateContext
from repro.crypto.drbg import HmacDrbg
from repro.crypto.schnorr import SchnorrKeyPair
from repro.errors import CryptoError, EnclaveError, ReproError
from repro.faults import ACTION_LOSE, SITE_SEAL_LOSS
from repro.sgx.attestation import AttestationService, report_data_for
from repro.sgx.enclave import Enclave
from repro.sgx.measurement import EnclaveImage
from repro.sgx.platform import SgxPlatform


@dataclass
class LocalDataStore:
    """Everything private on the device the Glimmer may request via ocall."""

    sentences: list = field(default_factory=list)
    keystroke_trace: object | None = None
    geo_context: object | None = None
    shopping_context: object | None = None
    session_signals: object | None = None
    video_stream: object | None = None
    extra: dict = field(default_factory=dict)

    def context_for(self, fields: Sequence[str]) -> PrivateContext:
        context = PrivateContext(extra=dict(self.extra))
        for name in fields:
            if hasattr(context, name):
                setattr(context, name, getattr(self, name))
        return context


class ClientDevice:
    """An honest client: device, platform, Glimmer, and local data."""

    def __init__(
        self,
        client_id: str,
        glimmer_image: EnclaveImage,
        attestation_service: AttestationService,
        seed: bytes,
        data: LocalDataStore | None = None,
    ) -> None:
        self.client_id = client_id
        self.rng = HmacDrbg(seed, personalization=f"client:{client_id}")
        self.data = data or LocalDataStore()
        self.image = glimmer_image
        self.platform = SgxPlatform(
            seed + b":platform", attestation_service=attestation_service
        )
        self.glimmer: Enclave = self.platform.load_enclave(
            glimmer_image,
            ocall_handlers={"collect_private_data": self._serve_private_data},
        )
        self._session_counter = 0
        self._party_index_for_round: dict[int, int] = {}
        self._sealed_signing_key: bytes | None = None
        self._checkpoints: dict[int, bytes] = {}

    # ----------------------------------------------------------- ocall side

    def _serve_private_data(self, fields: Sequence[str]) -> PrivateContext:
        """The host's answer to the Glimmer's private-data request."""
        return self.data.context_for(fields)

    # --------------------------------------------------------- provisioning

    def _attested_handshake(self) -> tuple[bytes, int, object]:
        """Run begin_handshake and quote the binding (session, dh_pub, quote)."""
        self._session_counter += 1
        session_id = (
            self.client_id.encode("utf-8")
            + self._session_counter.to_bytes(4, "big")
        )
        dh_public = self.glimmer.ecall("begin_handshake", session_id)
        quote = self.platform.quote_enclave(
            self.glimmer, report_data_for(dh_public.to_bytes(256, "big"))
        )
        return session_id, dh_public, quote

    def handshake_request(self) -> tuple[bytes, int, object]:
        """Start an attested handshake; the tuple is what goes on the wire.

        Provisioning over a transport sends this to a provisioner endpoint
        and feeds the returned :class:`KeyDelivery` to :meth:`install_mask`
        (or ``install_signing_key``).  Direct-call provisioning keeps using
        :meth:`provision_signing_key` / :meth:`provision_mask`.
        """
        return self._attested_handshake()

    def install_mask(
        self, round_id: int, party_index: int, delivery, commitment=None
    ) -> None:
        """Install a delivered blinding mask for ``round_id``.

        When ``commitment`` (the slot's engine-vouched
        :class:`~repro.crypto.commitments.MaskCommitmentRecord`) is given,
        the Glimmer verifies the delivered mask opens it before
        installing — see ``install_blinding_mask``.
        """
        self.glimmer.ecall(
            "install_blinding_mask", round_id, party_index, delivery, commitment
        )
        self._party_index_for_round[round_id] = party_index

    def party_index_for(self, round_id: int) -> int | None:
        """The slot this client holds a mask for in ``round_id``, if any."""
        return self._party_index_for_round.get(round_id)

    def provision_signing_key(self, provisioner: ServiceProvisioner) -> bytes:
        """Obtain the service signing key; returns the sealed backup blob.

        The blob is also kept on the (untrusted) device so a restarted
        Glimmer can reload its key via ``restore_signing_key`` — sealing
        means keeping it here leaks nothing.
        """
        session_id, dh_public, quote = self._attested_handshake()
        delivery = provisioner.provision_signing_key(session_id, dh_public, quote)
        try:
            sealed = self.glimmer.ecall("install_signing_key", delivery)
        except CryptoError:
            self._evict_resumed_session(
                provisioner, quote, "signing-key-provisioning"
            )
            session_id, dh_public, quote = self._attested_handshake()
            delivery = provisioner.provision_signing_key(
                session_id, dh_public, quote
            )
            sealed = self.glimmer.ecall("install_signing_key", delivery)
        self._sealed_signing_key = sealed
        return sealed

    def _evict_resumed_session(self, provisioner, quote, context: str) -> None:
        """Heal a resumed delivery the enclave could not open.

        A restarted Glimmer loses its session-key cache, so a provisioner
        resuming the old session produces a delivery that fails
        authenticated decryption.  Evicting the cache entry makes the
        retry run the full handshake; without a cache the failure is
        genuine and re-raised.
        """
        cache = getattr(provisioner, "session_cache", None)
        if cache is None:
            raise
        cache.evict(quote.platform_id, context)

    def provision_mask(
        self, provisioner: BlinderProvisioner, round_id: int, party_index: int
    ) -> None:
        """Obtain this round's blinding mask from the blinding service."""
        session_id, dh_public, quote = self._attested_handshake()
        delivery = provisioner.provision_mask(
            session_id, dh_public, quote, round_id, party_index
        )
        try:
            record = provisioner.round_commitments(round_id).record_for(party_index)
        except CryptoError:
            record = None
        try:
            self.install_mask(round_id, party_index, delivery, record)
        except CryptoError:
            self._evict_resumed_session(
                provisioner, quote, "blinding-mask-provisioning"
            )
            session_id, dh_public, quote = self._attested_handshake()
            delivery = provisioner.provision_mask(
                session_id, dh_public, quote, round_id, party_index
            )
            self.install_mask(round_id, party_index, delivery, record)

    # --------------------------------------------------------- contribution

    def contribute(
        self,
        round_id: int,
        values: Sequence[float],
        features: Sequence[tuple[str, str]],
        blind: bool = True,
        claims: dict | None = None,
        context_fields: Sequence[str] = (),
    ) -> SignedContribution:
        """The honest path: hand values to the Glimmer, relay its endorsement.

        Raises :class:`ValidationError` if the Glimmer rejects — an honest
        client simply does not submit in that case.
        """
        request = ProcessRequest(
            round_id=round_id,
            values=tuple(float(v) for v in values),
            features=tuple(features),
            blind=blind,
            party_index=self._party_index_for_round.get(round_id, 0),
            claims=dict(claims or {}),
            context_fields=tuple(context_fields),
        )
        return self.glimmer.ecall("process_contribution", request)

    # ------------------------------------------------------- crash / recovery

    @property
    def crashed(self) -> bool:
        return not self.glimmer.alive

    def attach_checkpoint_store(self, store) -> None:
        """Swap the sealed-checkpoint holder for a persistent mapping.

        Same seam as the blinder's ``attach_sealed_store``: ``store`` is
        any ``MutableMapping[int, bytes]``, existing blobs migrate in,
        and :meth:`restart` recovers from whatever the store holds —
        including checkpoints a previous process sealed.
        """
        for round_id, blob in self._checkpoints.items():
            store[round_id] = blob
        self._checkpoints = store

    def checkpoint_round(self, round_id: int) -> bytes:
        """Seal the round's enclave state and keep the blob device-side."""
        blob = self.glimmer.ecall("checkpoint_round", round_id)
        self._checkpoints[round_id] = blob
        return blob

    def discard_checkpoint(self, round_id: int) -> None:
        """Drop a checkpoint once its round no longer needs recovery."""
        self._checkpoints.pop(round_id, None)

    def close_round(self, round_id: int) -> None:
        """The round is over: purge Glimmer mask state and the checkpoint.

        Best-effort — a crashed client simply has nothing to purge, and
        a purge failure must never fail the round that already closed.
        The host-side party-index map survives (it holds no secrets and
        stays inspectable after the round); only enclave mask state and
        the sealed checkpoint are reclaimed.
        """
        if self.glimmer.alive:
            try:
                self.glimmer.ecall("close_round", round_id)
            except ReproError:
                pass
        self.discard_checkpoint(round_id)

    def crash(self) -> None:
        """The untrusted OS kills the client process: enclave memory is gone.

        Everything platform-held (sealing root, monotonic counters) and
        everything host-held (sealed blobs, session counter) survives —
        exactly the SGX failure model the sealed-checkpoint design targets.
        """
        if self.glimmer.alive:
            self.glimmer.destroy()

    def restart(self) -> list[int]:
        """Reload the Glimmer and recover sealed state; returns restored rounds.

        The signing key reloads from its sealed backup; each round
        checkpoint is offered to ``restore_round``, which refuses stale
        (rolled-back) blobs — those rounds stay unrecovered, their slots
        get repaired by mask reveal instead of risking a double-submit.
        A faulted host may also have lost checkpoint blobs entirely
        (``SITE_SEAL_LOSS``); that degrades to the same repair path.
        """
        if self.glimmer.alive:
            self.glimmer.destroy()
        self.glimmer = self.platform.load_enclave(
            self.image,
            ocall_handlers={"collect_private_data": self._serve_private_data},
        )
        if self._sealed_signing_key is not None:
            self.glimmer.ecall("restore_signing_key", self._sealed_signing_key)
        injector = getattr(self.platform, "fault_injector", None)
        restored: list[int] = []
        for round_id in sorted(self._checkpoints):
            if injector is not None and (
                injector.fire(
                    SITE_SEAL_LOSS, client_id=self.client_id, round_id=round_id
                )
                == ACTION_LOSE
            ):
                del self._checkpoints[round_id]
                continue
            try:
                self.glimmer.ecall("restore_round", self._checkpoints[round_id])
            except EnclaveError:
                # Stale checkpoint (rollback refused) or unsealable blob;
                # recovery for this round is repair-by-reveal, not restore.
                continue
            restored.append(round_id)
        return restored


class MaliciousClient(ClientDevice):
    """A client that cheats at every layer it controls."""

    def poison_values(
        self,
        round_id: int,
        poisoned: Sequence[float],
        features: Sequence[tuple[str, str]],
        blind: bool = True,
        claims: dict | None = None,
    ) -> SignedContribution:
        """Feed manipulated values through the Glimmer (Figure 1d's attempt).

        Whether this raises :class:`ValidationError` is the whole game:
        the predicate decides.
        """
        return self.contribute(
            round_id, poisoned, features, blind=blind, claims=claims
        )

    def forge_evidence(self, **overrides) -> None:
        """Replace the private data the device serves to the Glimmer."""
        for name, value in overrides.items():
            if name == "extra":
                self.data.extra.update(value)
            else:
                setattr(self.data, name, value)

    def bypass_glimmer(
        self,
        round_id: int,
        values: Sequence[float],
        blinded_shape: bool = True,
    ) -> SignedContribution:
        """Fabricate a contribution signed with a key the attacker made up.

        Without genuine attestation the attacker cannot obtain the real
        signing key, so a self-generated key is the best available forgery.
        """
        forged_key = SchnorrKeyPair.generate(self.rng.fork("forged-key"))
        nonce = self.rng.generate(16)
        if blinded_shape:
            ring = tuple(
                int(round(float(v) * (1 << 16))) % (1 << 64) for v in values
            )
            plain = None
        else:
            ring = None
            plain = tuple(float(v) for v in values)
        from repro.core.signing import contribution_digest

        digest = contribution_digest(round_id, nonce, blinded_shape, ring, plain, 1.0)
        return SignedContribution(
            round_id=round_id,
            nonce=nonce,
            blinded=blinded_shape,
            ring_payload=ring,
            plain_payload=plain,
            confidence=1.0,
            signature=forged_key.sign(digest),
        )

    def tamper_after_signing(
        self, genuine: SignedContribution, boost: float = 538.0
    ) -> SignedContribution:
        """Rewrite a genuinely signed payload without re-signing."""
        if genuine.ring_payload is not None:
            mutated = list(genuine.ring_payload)
            mutated[0] = (mutated[0] + int(boost) * (1 << 16)) % (1 << 64)
            return SignedContribution(
                round_id=genuine.round_id,
                nonce=genuine.nonce,
                blinded=genuine.blinded,
                ring_payload=tuple(mutated),
                plain_payload=None,
                confidence=genuine.confidence,
                signature=genuine.signature,
            )
        mutated_plain = list(genuine.plain_payload or ())
        if mutated_plain:
            mutated_plain[0] = boost
        return SignedContribution(
            round_id=genuine.round_id,
            nonce=genuine.nonce,
            blinded=genuine.blinded,
            ring_payload=None,
            plain_payload=tuple(mutated_plain),
            confidence=genuine.confidence,
            signature=genuine.signature,
        )

    def replay(self, genuine: SignedContribution) -> SignedContribution:
        """Submit a copy of an already-submitted contribution."""
        return genuine
