"""Trust establishment: vetting, attested key and mask provisioning.

§3's trust story has three legs, all implemented here:

1. **Vetting** — "Once it has been vetted, the hash of the Glimmer is
   published, and the user can use SGX to attest that their client is
   running the approved Glimmer."  :class:`VettingRegistry` is the
   published list of approved measurements (think: the EFF's signed list).
2. **Service-side provisioning** — the service verifies a quote that binds
   the Glimmer's DH handshake value to an approved measurement, then ships
   its signing key encrypted under the agreed key, signing its own
   handshake half so the Glimmer knows it talks to the real service
   (mutual authentication, as §4.1 spells out).
3. **Blinding-mask provisioning** — the blinding service does the same
   dance per aggregation round, delivering each client's sum-zero mask.

Both provisioners refuse unattested, mis-measured, debug, or mis-bound
Glimmers — the checks experiment E12 exercises one by one.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

from repro.core.glimmer import KeyDelivery, handshake_digest
from repro.crypto.cipher import AuthenticatedCipher, SealedBox
from repro.crypto.commitments import (
    MaskCommitmentSet,
    MaskOpening,
    commit_masks,
    encode_mask_payload,
    recommit_masks,
)
from repro.crypto.dh import DHKeyPair
from repro.crypto.drbg import HmacDrbg
from repro.crypto.group_ops import DHSessionCache
from repro.crypto.kdf import hkdf
from repro.crypto.masking import BlindingService, SumZeroMasks
from repro.crypto.schnorr import SchnorrKeyPair
from repro.errors import AttestationError, ConfigurationError, CryptoError
from repro.sgx.attestation import AttestationService, Quote, QuotePolicy, report_data_for


class VettingRegistry:
    """The published list of vetted Glimmer measurements."""

    def __init__(self) -> None:
        self._approved: dict[str, bytes] = {}

    def publish(self, name: str, mrenclave: bytes) -> None:
        """Publish a vetted Glimmer hash (idempotent for the same hash)."""
        existing = self._approved.get(name)
        if existing is not None and existing != mrenclave:
            raise ConfigurationError(
                f"{name!r} already published with a different measurement"
            )
        self._approved[name] = mrenclave

    def approved_measurement(self, name: str) -> bytes:
        measurement = self._approved.get(name)
        if measurement is None:
            raise ConfigurationError(f"no vetted Glimmer named {name!r}")
        return measurement

    def is_approved(self, mrenclave: bytes) -> bool:
        return mrenclave in self._approved.values()


def _verify_bound_quote(
    attestation: AttestationService,
    quote: Quote,
    expected_mrenclave: bytes,
    glimmer_dh_public: int,
) -> None:
    """Verify a quote and that it binds the given handshake value."""
    result = attestation.verify(
        quote, QuotePolicy(expected_mrenclave=expected_mrenclave)
    )
    expected_binding = report_data_for(glimmer_dh_public.to_bytes(256, "big"))
    if result.report_data != expected_binding:
        raise AttestationError(
            "quote does not bind the presented DH handshake value"
        )


@dataclass
class _ProvisionerBase:
    """Shared quote-check + encrypted-delivery machinery.

    ``session_cache`` (opt-in, default off) resumes repeat handshakes:
    after one full DH leg with an attested platform, later deliveries to
    the same ``(platform, context)`` ratchet the cached shared key with
    the fresh session id instead of re-running keygen + membership check
    + shared-secret exponentiation.  The quote is still verified and the
    handshake digest — which binds the *current* session's values — is
    still signed on every delivery.  Resumption skips this provisioner's
    per-leg DRBG keypair draws, so enabling it changes the provisioner's
    random stream: serial parity suites and the bit-exact parallel round
    path both require it off (see
    :func:`repro.scale.rounds.parallel_eligible`).
    """

    identity: SchnorrKeyPair
    attestation: AttestationService
    registry: VettingRegistry
    glimmer_name: str
    rng: HmacDrbg
    session_cache: DHSessionCache | None = None

    def _deliver(
        self,
        session_id: bytes,
        glimmer_dh_public: int,
        quote: Quote,
        payload: bytes,
        context: str,
    ) -> KeyDelivery:
        expected = self.registry.approved_measurement(self.glimmer_name)
        _verify_bound_quote(self.attestation, quote, expected, glimmer_dh_public)
        cached = (
            self.session_cache.lookup(quote.platform_id, context)
            if self.session_cache is not None
            else None
        )
        if cached is not None:
            # Resumed leg: same long-lived DH public as the establishing
            # handshake (which is how the Glimmer recognizes the session),
            # per-round key ratcheted from the cached shared key.  If the
            # enclave lost its side (restart), decryption fails there; the
            # caller evicts this peer and retries the full path.
            own_public, base_key = cached
            key = DHSessionCache.resume_key(base_key, session_id, context)
        else:
            keypair = DHKeyPair.generate(self.identity.group, self.rng)
            own_public = keypair.public
            key = keypair.derive_key(glimmer_dh_public, context)
            if self.session_cache is not None:
                self.session_cache.store(
                    quote.platform_id, context, own_public, key
                )
        digest = handshake_digest(context, session_id, glimmer_dh_public, own_public)
        signature = self.identity.sign(digest)
        cipher = AuthenticatedCipher(key)
        nonce = self.rng.generate(16)
        box = cipher.encrypt(nonce, payload, associated_data=session_id)
        return KeyDelivery(
            session_id=session_id,
            peer_dh_public=own_public,
            handshake_signature=signature,
            encrypted_payload=box.to_bytes(),
        )


class ServiceProvisioner(_ProvisionerBase):
    """The service side of signing-key provisioning.

    ``identity`` doubles as the service's handshake-signing identity; the
    *contribution signing key* delivered to Glimmers is separate
    (``signing_keypair``), so compromising one does not compromise the
    other.
    """

    def __init__(
        self,
        identity: SchnorrKeyPair,
        signing_keypair: SchnorrKeyPair,
        attestation: AttestationService,
        registry: VettingRegistry,
        glimmer_name: str,
        rng: HmacDrbg,
    ) -> None:
        super().__init__(identity, attestation, registry, glimmer_name, rng)
        self.signing_keypair = signing_keypair

    def provision_signing_key(
        self, session_id: bytes, glimmer_dh_public: int, quote: Quote
    ) -> KeyDelivery:
        """Verify the attested handshake and ship the signing key secret."""
        secret_bytes = self.signing_keypair.secret.to_bytes(256, "big")
        return self._deliver(
            session_id,
            glimmer_dh_public,
            quote,
            secret_bytes,
            "signing-key-provisioning",
        )


class BlinderProvisioner(_ProvisionerBase):
    """The blinding service side of per-round mask provisioning.

    Wraps a :class:`repro.crypto.masking.BlindingService`; the paper notes
    this party "could, itself, be implemented as a separate enclave on one
    of the clients, or as a distinct trusted service".

    Either way it can crash.  Each round's mask family is sealed (here: an
    authenticated cipher under a key derived from the provisioner's
    identity secret — the moral equivalent of enclave sealing for this
    simulated party) the moment the round opens, so a restarted blinder
    can still provision remaining parties and, critically, still reveal
    dropout masks for §3 repair.  Without that persistence a mid-round
    blinder crash would force aborting every open round.
    """

    def __init__(
        self,
        identity: SchnorrKeyPair,
        blinding: BlindingService,
        attestation: AttestationService,
        registry: VettingRegistry,
        glimmer_name: str,
        rng: HmacDrbg,
    ) -> None:
        super().__init__(identity, attestation, registry, glimmer_name, rng)
        self.blinding: BlindingService | None = blinding
        self._codec = blinding.codec
        self._seal_key = hkdf(
            identity.secret.to_bytes(256, "big"), "blinder-round-sealing"
        )
        self._sealed_rounds: dict[int, bytes] = {}
        self._commitments: dict[int, MaskCommitmentSet] = {}
        self._openings: dict[int, tuple[MaskOpening, ...]] = {}
        self.restarts = 0

    def _require_blinding(self) -> BlindingService:
        if self.blinding is None:
            raise CryptoError("blinding service is down (crashed, not restarted)")
        return self.blinding

    def _seal_round(
        self, round_id: int, masks: SumZeroMasks, openings: tuple[MaskOpening, ...]
    ) -> bytes:
        opening_rows = tuple(
            (opening.salt, opening.randomizer) for opening in openings
        )
        blob = pickle.dumps(
            (masks.masks, masks.modulus_bits, opening_rows),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        cipher = AuthenticatedCipher(self._seal_key)
        nonce = self.rng.generate(16)
        box = cipher.encrypt(
            nonce, blob, associated_data=round_id.to_bytes(8, "big")
        )
        return box.to_bytes()

    def _unseal_round(
        self, round_id: int, sealed: bytes
    ) -> tuple[SumZeroMasks, tuple[MaskOpening, ...]]:
        cipher = AuthenticatedCipher(self._seal_key)
        blob = cipher.decrypt(
            SealedBox.from_bytes(sealed), associated_data=round_id.to_bytes(8, "big")
        )
        mask_rows, modulus_bits, opening_rows = pickle.loads(blob)
        masks = SumZeroMasks(masks=mask_rows, modulus_bits=modulus_bits)
        openings = tuple(
            MaskOpening(mask=tuple(mask), salt=salt, randomizer=randomizer)
            for mask, (salt, randomizer) in zip(mask_rows, opening_rows)
        )
        return masks, openings

    def open_round(
        self, round_id: int, num_parties: int, length: int, subgroup_size: int = 0
    ) -> MaskCommitmentSet:
        """Sample the round's masks, commit to them, seal, publish the set.

        The returned :class:`MaskCommitmentSet` is the verifiability
        contract: the engine validates it when the round opens, forwards
        per-slot records to clients during provisioning, and checks the
        homomorphic sum-zero property over it at finalize.

        ``subgroup_size > 0`` samples the hierarchical per-subgroup
        construction instead of the flat family: every subgroup sums to
        zero, so the published commitments still satisfy the same
        homomorphic sum-zero audit, while later mask lookups (delivery,
        §3 dropout repair) re-expand only the O(g) subgroup they touch.
        Commitments are per slot either way, so everything downstream of
        this call — sealing, delivery, reveal verification — is
        construction-agnostic.
        """
        blinding = self._require_blinding()
        if subgroup_size > 0:
            masks = blinding.open_round_grouped(
                round_id, num_parties, length, subgroup_size
            )
        else:
            masks = blinding.open_round(round_id, num_parties, length)
        commitments, openings = commit_masks(
            self.identity.group,
            round_id,
            masks.masks,
            masks.modulus_bits,
            self.rng.fork(f"mask-commitments-{round_id}"),
        )
        self._commitments[round_id] = commitments
        self._openings[round_id] = openings
        self._sealed_rounds[round_id] = self._seal_round(round_id, masks, openings)
        return commitments

    def attach_sealed_store(self, store) -> None:
        """Swap the sealed-round holder for a persistent mapping.

        ``store`` is any ``MutableMapping[int, bytes]`` (in practice a
        :class:`repro.service.storage.SealedBlobMap`); blobs already
        sealed in memory are migrated into it, and blobs already in the
        store — a previous process's rounds — become recoverable by
        :meth:`restart`.  The blobs are ciphertext under the identity-
        derived seal key either way, so moving them to external storage
        widens availability, never the trust boundary.
        """
        for round_id, blob in self._sealed_rounds.items():
            store[round_id] = blob
        self._sealed_rounds = store

    def has_round(self, round_id: int) -> bool:
        return self.blinding is not None and self.blinding.has_round(round_id)

    def round_commitments(self, round_id: int) -> MaskCommitmentSet:
        """The published commitment set for an open (or recovered) round."""
        commitments = self._commitments.get(round_id)
        if commitments is None:
            raise CryptoError(f"no mask commitments for round {round_id}")
        return commitments

    def mask_opening(self, round_id: int, party_index: int) -> MaskOpening:
        """One slot's full opening (mask, salt, randomizer)."""
        openings = self._openings.get(round_id)
        if openings is None:
            raise CryptoError(f"no mask openings for round {round_id}")
        if not 0 <= party_index < len(openings):
            raise CryptoError(
                f"round {round_id} has no party {party_index}"
            )
        return openings[party_index]

    def crash(self) -> None:
        """The blinding service process dies; in-memory mask state is gone."""
        self.blinding = None
        self._commitments.clear()
        self._openings.clear()
        self.restarts += 1

    def restart(self) -> list[int]:
        """Stand the service back up and recover all sealed rounds.

        Commitments are rebuilt *deterministically* from the sealed
        openings, so the recovered service republishes byte-identical
        commitment sets — the engine's copies from round open stay valid.
        """
        self.blinding = BlindingService(
            self.rng.fork(f"blinder-restart-{self.restarts}"), self._codec
        )
        recovered: list[int] = []
        for round_id in sorted(self._sealed_rounds):
            masks, openings = self._unseal_round(
                round_id, self._sealed_rounds[round_id]
            )
            self.blinding.restore_round(round_id, masks)
            self._openings[round_id] = openings
            self._commitments[round_id] = recommit_masks(
                self.identity.group,
                round_id,
                masks.masks,
                masks.modulus_bits,
                openings,
            )
            recovered.append(round_id)
        return recovered

    def provision_mask(
        self,
        session_id: bytes,
        glimmer_dh_public: int,
        quote: Quote,
        round_id: int,
        party_index: int,
    ) -> KeyDelivery:
        """Verify the attested handshake and ship the party's mask opening."""
        self._require_blinding().mask_for(round_id, party_index)
        opening = self.mask_opening(round_id, party_index)
        return self._deliver(
            session_id,
            glimmer_dh_public,
            quote,
            encode_mask_payload(opening),
            "blinding-mask-provisioning",
        )

    def reveal_dropout_mask(self, round_id: int, party_index: int) -> MaskOpening:
        """§3 dropout repair: disclose a non-submitting party's full opening.

        Returns the opening, not just the mask, so the engine can verify
        the revealed value against the round commitments before trusting
        it for repair — a lying blinder cannot corrupt the aggregate by
        mis-revealing.
        """
        self._require_blinding().mask_for_dropout(round_id, party_index)
        return self.mask_opening(round_id, party_index)
