"""The Blinding component inside the Glimmer.

§3's construction: a trusted blinding service distributes per-client mask
vectors summing to zero; the Glimmer's Blinding component "computes the
blinded user contribution y_i = x_i + p_i", which is safe to reveal because
the mask is secret, yet sums of all clients' blinded vectors equal the sum
of the true contributions.

Masks arrive encrypted (to a key only the attested Glimmer holds) and are
single-use: re-using a mask across rounds would let the service difference
two contributions, so the component destroys each mask after use.
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto.fixedpoint import FixedPointCodec
from repro.crypto.masking import apply_mask
from repro.errors import CryptoError


class BlindingComponent:
    """Applies sum-zero masks to fixed-point-encoded contributions.

    Masks are keyed by ``(round_id, party_index)``: an on-device Glimmer
    holds a single party's mask per round, while a shared remote Glimmer
    (§4.2) may hold one per client it serves.
    """

    def __init__(self, codec: FixedPointCodec | None = None) -> None:
        self.codec = codec or FixedPointCodec()
        self._masks: dict[tuple[int, int], tuple[int, ...]] = {}

    def install_mask(
        self, round_id: int, party_index: int, mask: Sequence[int]
    ) -> None:
        """Store a decrypted mask for one (round, party); rejects double install."""
        key = (round_id, party_index)
        if key in self._masks:
            raise CryptoError(
                f"mask for round {round_id} party {party_index} already installed"
            )
        self._masks[key] = tuple(int(v) for v in mask)

    def has_mask(self, round_id: int, party_index: int = 0) -> bool:
        return (round_id, party_index) in self._masks

    def masks_for_round(self, round_id: int) -> dict[int, tuple[int, ...]]:
        """Snapshot the unconsumed masks of one round (for sealed checkpoints)."""
        return {
            party: mask
            for (rid, party), mask in self._masks.items()
            if rid == round_id
        }

    def restore_masks(
        self, round_id: int, masks: dict[int, Sequence[int]]
    ) -> None:
        """Reinstall checkpointed masks after an enclave restart.

        Only fills empty slots: a mask that is already installed (or was
        consumed since the checkpoint) is left alone, preserving the
        single-use rule.
        """
        for party_index, mask in masks.items():
            key = (round_id, int(party_index))
            if key not in self._masks:
                self._masks[key] = tuple(int(v) for v in mask)

    def blind(
        self, round_id: int, party_index: int, values: Sequence[float]
    ) -> list[int]:
        """Encode and mask a contribution; consumes the party's round mask."""
        mask = self._masks.pop((round_id, party_index), None)
        if mask is None:
            raise CryptoError(
                f"no blinding mask installed for round {round_id} party {party_index}"
            )
        encoded = self.codec.encode(values)
        if len(mask) != len(encoded):
            raise CryptoError(
                f"mask length {len(mask)} does not match contribution length {len(encoded)}"
            )
        return apply_mask(encoded, mask, self.codec.modulus_bits)
