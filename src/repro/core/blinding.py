"""The Blinding component inside the Glimmer.

§3's construction: a trusted blinding service distributes per-client mask
vectors summing to zero; the Glimmer's Blinding component "computes the
blinded user contribution y_i = x_i + p_i", which is safe to reveal because
the mask is secret, yet sums of all clients' blinded vectors equal the sum
of the true contributions.

Masks arrive encrypted (to a key only the attested Glimmer holds) and are
single-use: re-using a mask across rounds would let the service difference
two contributions, so the component destroys each mask after use, refuses
to install a mask it has seen before (a lying blinding service replaying
last round's family is detected right here), and purges all state for a
round when the engine closes it — a long-lived Glimmer's mask table stays
bounded by its *open* rounds, not its lifetime.
"""

from __future__ import annotations

from typing import Sequence

from repro.crypto.fixedpoint import FixedPointCodec
from repro.crypto.hashing import hash_items
from repro.crypto.masking import apply_mask
from repro.errors import CryptoError, MaskVerificationError
from repro.perf import kernels

#: How many past mask digests the reuse check remembers (FIFO-capped so a
#: device Glimmer that lives for years keeps O(1) memory, while still
#: catching the realistic attack: a blinder replaying a *recent* family).
MASK_DIGEST_HISTORY = 1024


class BlindingComponent:
    """Applies sum-zero masks to fixed-point-encoded contributions.

    Masks are keyed by ``(round_id, party_index)``: an on-device Glimmer
    holds a single party's mask per round, while a shared remote Glimmer
    (§4.2) may hold one per client it serves.
    """

    def __init__(self, codec: FixedPointCodec | None = None) -> None:
        self.codec = codec or FixedPointCodec()
        self._masks: dict[tuple[int, int], tuple[int, ...]] = {}
        self._seen_digests: dict[bytes, tuple[int, int]] = {}

    def _mask_digest(self, mask: Sequence[int]) -> bytes:
        return hash_items(
            "blinding-mask-reuse", [kernels.be_words_to_bytes(mask)]
        )

    def install_mask(
        self, round_id: int, party_index: int, mask: Sequence[int]
    ) -> None:
        """Store a decrypted mask for one (round, party).

        Rejects double install for a slot, and rejects — with
        :class:`~repro.errors.MaskVerificationError` — any mask whose
        value this component has seen before under a *different* (round,
        party): mask reuse lets the blinding service difference two of
        this client's contributions.
        """
        key = (round_id, party_index)
        if key in self._masks:
            raise CryptoError(
                f"mask for round {round_id} party {party_index} already installed"
            )
        if any(int(v) for v in mask):
            # The all-zero mask is exempt: a single-party round's sum-zero
            # family is forced to it, so it legitimately recurs — and it
            # blinds nothing, so reusing it differences nothing new.
            digest = self._mask_digest(mask)
            prior = self._seen_digests.get(digest)
            if prior is not None and prior != key:
                raise MaskVerificationError(
                    f"mask for round {round_id} party {party_index} was already "
                    f"used in round {prior[0]} (blinding service reused a mask)"
                )
            if prior is None:
                if len(self._seen_digests) >= MASK_DIGEST_HISTORY:
                    oldest = next(iter(self._seen_digests))
                    del self._seen_digests[oldest]
                self._seen_digests[digest] = key
        self._masks[key] = tuple(int(v) for v in mask)

    def has_mask(self, round_id: int, party_index: int = 0) -> bool:
        return (round_id, party_index) in self._masks

    def masks_for_round(self, round_id: int) -> dict[int, tuple[int, ...]]:
        """Snapshot the unconsumed masks of one round (for sealed checkpoints)."""
        return {
            party: mask
            for (rid, party), mask in self._masks.items()
            if rid == round_id
        }

    def restore_masks(
        self, round_id: int, masks: dict[int, Sequence[int]]
    ) -> None:
        """Reinstall checkpointed masks after an enclave restart.

        Only fills empty slots: a mask that is already installed (or was
        consumed since the checkpoint) is left alone, preserving the
        single-use rule.  Restored masks bypass the reuse check — they are
        this component's own prior installs coming back from sealed
        storage, not fresh deliveries.
        """
        for party_index, mask in masks.items():
            key = (round_id, int(party_index))
            if key not in self._masks:
                self._masks[key] = tuple(int(v) for v in mask)

    def purge_round(self, round_id: int) -> int:
        """Destroy every mask held for a finalized/aborted round.

        Returns how many masks were dropped.  Without this, a long-lived
        Glimmer that provisions but never consumes (dropout rounds,
        aborted rounds) grows ``_masks`` without bound.
        """
        stale = [key for key in self._masks if key[0] == round_id]
        for key in stale:
            del self._masks[key]
        return len(stale)

    def open_round_count(self) -> int:
        """How many (round, party) masks are currently held (test hook)."""
        return len(self._masks)

    def blind(
        self, round_id: int, party_index: int, values: Sequence[float]
    ) -> list[int]:
        """Encode and mask a contribution; consumes the party's round mask."""
        mask = self._masks.pop((round_id, party_index), None)
        if mask is None:
            raise CryptoError(
                f"no blinding mask installed for round {round_id} party {party_index}"
            )
        encoded = self.codec.encode(values)
        if len(mask) != len(encoded):
            raise CryptoError(
                f"mask length {len(mask)} does not match contribution length {len(encoded)}"
            )
        return apply_mask(encoded, mask, self.codec.modulus_bits)
