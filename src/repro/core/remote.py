"""§4.2 Glimmer-as-a-service: Glimmers for clients without trusted hardware.

"Given the increasing trend towards Internet of things (IoT) devices, there
are likely to be some devices that will make user contributions that must
be trustworthy, but do not have a processor with trusted computing
capabilities.  In this case, we envision that a neutral third party may
supply the capability to run a Glimmer."

The cast:

* :class:`RemoteGlimmerHost` — the third party (a set-top box, the user's
  university, the EFF) owning an SGX platform that hosts a vetted Glimmer
  and relays opaque ciphertexts for clients;
* :class:`IoTClient` — a device with no TEE.  "The main criterion is that
  the client device needs to establish that it is sending its private data
  to a genuine Glimmer" — it verifies the host's quote (verification needs
  no TEE), binds the Glimmer's DH value via the quote's report data, then
  ships its contribution *and* private validation data encrypted end to end
  into the enclave.  The host sees only ciphertext.

Latency accounting runs over :mod:`repro.network`, so experiment E10 can
price the three host placements the paper lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.glimmer import (
    ProcessRequest,
    _encode_remote_payload,
    decode_remote_response,
)
from repro.core.provisioning import VettingRegistry
from repro.core.signing import SignedContribution
from repro.core.validation import PrivateContext
from repro.crypto.cipher import AuthenticatedCipher, SealedBox
from repro.crypto.dh import DHGroup, DHKeyPair, OAKLEY_GROUP_1
from repro.crypto.drbg import HmacDrbg
from repro.errors import AttestationError, CryptoError
from repro.network.transport import Network
from repro.sgx.attestation import AttestationService, QuotePolicy, report_data_for
from repro.sgx.measurement import EnclaveImage
from repro.sgx.platform import SgxPlatform


@dataclass(frozen=True)
class AttestedOffer:
    """The host's answer to an attestation request: DH value + binding quote."""

    session_id: bytes
    dh_public: int
    quote: object


class RemoteGlimmerHost:
    """A TEE-equipped third party hosting a Glimmer for others.

    The host is *not* trusted with data: every client payload it relays is
    encrypted to a key only the enclave holds.  Its honesty matters only
    for availability.
    """

    def __init__(
        self,
        host_name: str,
        glimmer_image: EnclaveImage,
        attestation_service: AttestationService,
        network: Network,
        seed: bytes,
    ) -> None:
        self.host_name = host_name
        self.platform = SgxPlatform(seed, attestation_service=attestation_service)
        self.glimmer = self.platform.load_enclave(glimmer_image)
        self.network = network
        network.register(
            host_name,
            {
                "attest-glimmer": self._handle_attest,
                "remote-contribution": self._handle_contribution,
                "provisioning-handshake": self._handle_provisioning_handshake,
                "install-signing-key": self._handle_install_key,
                "install-blinding-mask": self._handle_install_mask,
            },
        )
        self._session_counter = 0

    # ------------------------------------------------------ request handlers

    def _fresh_session_id(self, prefix: str) -> bytes:
        self._session_counter += 1
        return f"{self.host_name}:{prefix}:{self._session_counter}".encode("utf-8")

    def _attested_offer(self, prefix: str) -> AttestedOffer:
        session_id = self._fresh_session_id(prefix)
        dh_public = self.glimmer.ecall("begin_handshake", session_id)
        quote = self.platform.quote_enclave(
            self.glimmer, report_data_for(dh_public.to_bytes(256, "big"))
        )
        return AttestedOffer(session_id=session_id, dh_public=dh_public, quote=quote)

    def _handle_attest(self, message) -> AttestedOffer:
        return self._attested_offer("client")

    def _handle_provisioning_handshake(self, message) -> AttestedOffer:
        return self._attested_offer("provisioning")

    def _handle_install_key(self, message):
        return self.glimmer.ecall("install_signing_key", message.payload)

    def _handle_install_mask(self, message):
        round_id, party_index, delivery, *rest = message.payload
        commitment = rest[0] if rest else None
        return self.glimmer.ecall(
            "install_blinding_mask", round_id, party_index, delivery, commitment
        )

    def _handle_contribution(self, message) -> bytes:
        session_id, client_dh_public, ciphertext = message.payload
        return self.glimmer.ecall(
            "process_remote", session_id, client_dh_public, ciphertext
        )

    # ----------------------------------------------- operator-side plumbing

    def provision_signing_key(self, provisioner) -> bytes:
        """The host operator provisions the service signing key once."""
        offer = self._attested_offer("operator")
        delivery = provisioner.provision_signing_key(
            offer.session_id, offer.dh_public, offer.quote
        )
        return self.glimmer.ecall("install_signing_key", delivery)

    def provision_mask(self, provisioner, round_id: int, party_index: int) -> None:
        offer = self._attested_offer("operator")
        delivery = provisioner.provision_mask(
            offer.session_id, offer.dh_public, offer.quote, round_id, party_index
        )
        try:
            record = provisioner.round_commitments(round_id).record_for(party_index)
        except CryptoError:
            record = None
        self.glimmer.ecall(
            "install_blinding_mask", round_id, party_index, delivery, record
        )


class IoTClient:
    """A TEE-less device contributing through a remote Glimmer."""

    def __init__(
        self,
        client_id: str,
        network: Network,
        attestation_service: AttestationService,
        registry: VettingRegistry,
        glimmer_name: str,
        seed: bytes,
        group: DHGroup = OAKLEY_GROUP_1,
    ) -> None:
        self.client_id = client_id
        self.network = network
        self.attestation = attestation_service
        self.registry = registry
        self.glimmer_name = glimmer_name
        self.group = group
        """Must match the Glimmer's handshake group (its service-identity group)."""
        self.rng = HmacDrbg(seed, personalization=f"iot:{client_id}")
        network.register(client_id, {})

    def contribute_via(
        self,
        host_name: str,
        round_id: int,
        values: Sequence[float],
        features: Sequence[tuple[str, str]],
        context: PrivateContext,
        blind: bool = True,
        party_index: int = 0,
        claims: dict | None = None,
    ) -> SignedContribution:
        """Attest the remote Glimmer, then contribute through it.

        Raises :class:`AttestationError` if the host cannot present a quote
        for the vetted measurement binding its handshake value — the check
        that stops a malicious host from substituting its own software for
        the Glimmer.
        """
        offer: AttestedOffer = self.network.call(
            self.client_id, host_name, "attest-glimmer", None
        )
        expected = self.registry.approved_measurement(self.glimmer_name)
        result = self.attestation.verify(
            offer.quote, QuotePolicy(expected_mrenclave=expected)
        )
        binding = report_data_for(offer.dh_public.to_bytes(256, "big"))
        if result.report_data != binding:
            raise AttestationError(
                "host's quote does not bind the offered handshake value"
            )
        keypair = DHKeyPair.generate(self.group, self.rng)
        key = keypair.derive_key(offer.dh_public, "glimmer-as-a-service")
        cipher = AuthenticatedCipher(key)
        request = ProcessRequest(
            round_id=round_id,
            values=tuple(float(v) for v in values),
            features=tuple(features),
            blind=blind,
            party_index=party_index,
            claims=dict(claims or {}),
        )
        payload = _encode_remote_payload(request, context)
        nonce = self.rng.generate(16)
        box = cipher.encrypt(nonce, payload, associated_data=offer.session_id)
        encrypted_response = self.network.call(
            self.client_id,
            host_name,
            "remote-contribution",
            (offer.session_id, keypair.public, box.to_bytes()),
        )
        response = cipher.decrypt(
            SealedBox.from_bytes(encrypted_response),
            associated_data=offer.session_id + b":response",
        )
        return decode_remote_response(response)
