"""The cloud service: verifies Glimmer endorsements and aggregates.

The service trusts nothing a client relays except what the Glimmer's
signature covers.  Per contribution it checks:

* signature validity under the contribution-signing public key (whose
  secret half only attested Glimmers hold);
* round consistency (the signed round id must match the open round);
* nonce freshness (a replayed signed contribution is dropped);
* payload kind (a round is either blinded or plaintext, fixed at opening).

For blinded rounds the service computes only the ring sum — it never sees
an individual contribution — and repairs dropouts with masks disclosed by
the blinding service (§3).  The aggregate divides by the number of
*contributions actually included*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.signing import SignedContribution
from repro.crypto import group_ops
from repro.crypto.fixedpoint import FixedPointCodec
from repro.crypto.schnorr import SchnorrPublicKey
from repro.errors import ConfigurationError, ProtocolError
from repro.perf import kernels


@dataclass(frozen=True)
class _StreamedAccept:
    """The nonce-bearing stub a streaming round keeps per acceptance.

    The engine's abort accounting and finalize-time reconciliation only
    need ``len(state.accepted)`` and each entry's ``nonce``; retaining
    whole :class:`SignedContribution` objects would defeat the point of
    releasing payloads at admission.
    """

    nonce: bytes


@dataclass
class RoundState:
    """Accounting for one aggregation round.

    ``ring_rows`` mirrors ``accepted`` index-for-index on blinded rounds:
    each admitted ring payload is converted to a ``np.uint64`` vector once
    at submission, so finalize is a single column-wise sum over a
    contiguous matrix instead of per-element Python arithmetic.
    """

    round_id: int
    blinded: bool
    expected_parties: int
    accepted: list[SignedContribution] = field(default_factory=list)
    ring_rows: list[np.ndarray] = field(default_factory=list)
    seen_nonces: set = field(default_factory=set)
    rejected: dict[str, int] = field(default_factory=dict)

    def reject(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1


class StreamingRoundState:
    """A blinded round that folds submissions instead of retaining them.

    Opened when the round carries a :class:`~repro.scale.subgroup.
    SubgroupPlan`: each admitted ring payload is folded into its
    subgroup's running partial (:class:`~repro.scale.streaming.
    StreamingSubgroupAccumulator`) the moment it passes admission, and
    the raw vector is released — parent memory is O(n/g · k + nonces),
    not O(n·k).  The price is auditability of individual rows: the
    service cannot replay what it no longer holds, so finalize returns
    an empty ``accepted`` audit trail (the engine's recomputation audit
    passes through, legacy-style) and quarantine eviction reports
    failure rather than un-folding — which is why the engine only
    routes adversary-free rounds here (see :func:`repro.scale.
    hierarchy.hierarchical_eligible`).
    """

    blinded = True

    def __init__(
        self, round_id: int, expected_parties: int, plan, modulus_bits: int
    ) -> None:
        from repro.scale.streaming import StreamingSubgroupAccumulator

        self.round_id = round_id
        self.expected_parties = expected_parties
        self.plan = plan
        self.accumulator = StreamingSubgroupAccumulator(plan, modulus_bits)
        self.seen_nonces: set = set()
        self.rejected: dict[str, int] = {}
        self._accepted_nonces: list[bytes] = []

    @property
    def accepted(self) -> tuple:
        """Nonce stubs for engine accounting (see :class:`_StreamedAccept`)."""
        return tuple(_StreamedAccept(n) for n in self._accepted_nonces)

    def reject(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    def accept(self, contribution: SignedContribution, slot: int | None) -> None:
        self._accepted_nonces.append(contribution.nonce)
        self.accumulator.fold(contribution.ring_payload, slot)


@dataclass(frozen=True)
class RoundResult:
    """The service's output for a round.

    ``accepted`` carries the signed contributions that entered the
    aggregate, so the engine can audit the service's arithmetic: recompute
    the ring sum, re-verify every signature, and cross-check nonces
    against its own collection record.  A tampering aggregator that
    corrupts, omits, or duplicates contributions cannot produce a result
    that passes that audit.
    """

    round_id: int
    aggregate: np.ndarray
    num_contributions: int
    num_dropouts_repaired: int
    rejected: dict
    accepted: tuple = ()


class CloudService:
    """Verifies signed contributions and aggregates per round."""

    #: Endpoints check this *on the class* (never through wrapper
    #: ``__getattr__`` passthrough) before forwarding the wire message's
    #: ``slot`` into :meth:`submit` — Byzantine wrappers that shadow
    #: ``submit`` with the legacy two-argument signature keep working.
    accepts_submit_slot = True

    def __init__(
        self,
        signing_public: SchnorrPublicKey,
        codec: FixedPointCodec | None = None,
    ) -> None:
        self._signing_public = signing_public
        # The service verifies against this one long-lived key for every
        # contribution; pre-building its fixed-base window table makes the
        # very first verification fast instead of waiting for the
        # auto-build use-count threshold.
        group_ops.register_base(
            signing_public.group.prime, signing_public.element
        )
        self._codec = codec or FixedPointCodec()
        self._rounds: dict[int, RoundState] = {}
        self.aggregation_reducer = None
        """Optional ``callable(matrix, modulus_bits) -> row`` replacing the
        flat :func:`repro.perf.kernels.ring_sum_rows` at finalize.  The
        scale layer installs a sharded reducer here; any replacement must
        be bit-exact against the flat sum (ring addition is associative,
        so any partition-and-merge strategy is)."""

    @property
    def codec(self) -> FixedPointCodec:
        return self._codec

    def open_round(
        self,
        round_id: int,
        expected_parties: int,
        blinded: bool = True,
        subgroup_size: int = 0,
    ) -> None:
        """Open a round; ``subgroup_size > 0`` selects the streaming path.

        A streaming round plans its subgroups up front (the plan is a
        pure function of the round id, so blinder and engine compute the
        identical grouping) and folds each admitted payload immediately
        instead of retaining it — see :class:`StreamingRoundState` for
        the trade.  ``subgroup_size == 0`` keeps today's flat round.
        """
        if round_id in self._rounds:
            raise ProtocolError(f"round {round_id} already open")
        if expected_parties < 1:
            raise ProtocolError("expected_parties must be >= 1")
        if subgroup_size > 0 and blinded:
            from repro.scale.subgroup import plan_subgroups

            plan = plan_subgroups(round_id, expected_parties, subgroup_size)
            self._rounds[round_id] = StreamingRoundState(
                round_id, expected_parties, plan, self._codec.modulus_bits
            )
            return
        self._rounds[round_id] = RoundState(
            round_id=round_id, blinded=blinded, expected_parties=expected_parties
        )

    def round_state(self, round_id: int) -> RoundState:
        state = self._rounds.get(round_id)
        if state is None:
            raise ProtocolError(f"round {round_id} not open")
        return state

    # ------------------------------------------------------------ admission

    def submit(
        self,
        round_id: int,
        contribution: SignedContribution,
        slot: int | None = None,
    ) -> bool:
        """Admit one contribution; returns True if accepted.

        Rejections are counted by reason in the round state — the paper's
        Input Integrity property shows up as "everything unsigned, forged,
        replayed, or tampered lands in ``rejected``".  ``slot`` is the
        sender-claimed mask slot; streaming rounds use it to attribute
        the fold to a subgroup (the total is exact either way — fold
        order and attribution never change an associative ring sum).
        """
        return self._admit(round_id, contribution, check_signature=True, slot=slot)

    def submit_verified(
        self,
        round_id: int,
        contribution: SignedContribution,
        slot: int | None = None,
    ) -> bool:
        """Admit a contribution whose signature the caller already verified.

        The scale layer's worker pool checks each Glimmer signature in the
        worker process; re-checking it here would serialize the exact
        exponentiations the pool just parallelized.  Every other admission
        rule — round consistency, payload kind, nonce freshness, payload
        well-formedness — is enforced identically to :meth:`submit`, and
        rejections land in the same ledger.  Callers must have run
        ``signing_public.is_valid(contribution.signed_bytes(), ...)``
        themselves; handing this method an unverified contribution forfeits
        Input Integrity.
        """
        return self._admit(
            round_id, contribution, check_signature=False, slot=slot
        )

    def _admit(
        self,
        round_id: int,
        contribution: SignedContribution,
        check_signature: bool,
        slot: int | None = None,
    ) -> bool:
        state = self.round_state(round_id)
        if not isinstance(contribution, SignedContribution):
            state.reject("not-a-signed-contribution")
            return False
        if contribution.round_id != round_id:
            state.reject("wrong-round")
            return False
        if contribution.blinded != state.blinded:
            state.reject("wrong-payload-kind")
            return False
        if contribution.nonce in state.seen_nonces:
            state.reject("replayed-nonce")
            return False
        try:
            digest = contribution.signed_bytes()
        except Exception:
            state.reject("malformed-payload")
            return False
        if check_signature and not self._signing_public.is_valid(
            digest, contribution.signature
        ):
            state.reject("invalid-signature")
            return False
        state.seen_nonces.add(contribution.nonce)
        if isinstance(state, StreamingRoundState):
            # Fold-and-release: the payload enters its subgroup's partial
            # sum now; no reference to the raw vector survives this call.
            state.accept(contribution, slot)
            return True
        state.accepted.append(contribution)
        if state.blinded and contribution.ring_payload is not None:
            state.ring_rows.append(
                kernels.as_ring(contribution.ring_payload, self._codec.modulus_bits)
            )
        return True

    def evict_nonce(self, round_id: int, nonce: bytes) -> bool:
        """Remove an already-accepted contribution (quarantine eviction).

        The nonce stays in ``seen_nonces`` so the evicted contribution
        cannot be resubmitted; the rejection ledger records the eviction.
        Returns True if a contribution was actually removed.
        """
        state = self.round_state(round_id)
        if isinstance(state, StreamingRoundState):
            # A folded payload cannot be un-summed.  Reporting failure is
            # the fail-safe contract the engine already honors ("if the
            # service cannot evict, the accept stands"); rounds that can
            # need eviction never route to the streaming path.
            return False
        for index, contribution in enumerate(state.accepted):
            if contribution.nonce == nonce:
                del state.accepted[index]
                if index < len(state.ring_rows):
                    del state.ring_rows[index]
                state.reject("evicted-by-quarantine")
                return True
        return False

    # ---------------------------------------------------------- aggregation

    def finalize_blinded_round(
        self,
        round_id: int,
        dropout_masks: Sequence[Sequence[int]] = (),
    ) -> RoundResult:
        """Ring-sum the blinded payloads, repair dropouts, decode.

        ``dropout_masks`` are the masks of parties that were provisioned a
        mask but never submitted, disclosed by the blinding service.  Since
        Σp = 0, adding the missing masks restores an exact sum of the
        submitted contributions.
        """
        state = self.round_state(round_id)
        if not state.blinded:
            raise ProtocolError("round is not blinded; use finalize_plain_round")
        if isinstance(state, StreamingRoundState):
            if not state._accepted_nonces:
                raise ProtocolError("no accepted contributions to aggregate")
            return self._finalize_streaming(state, dropout_masks)
        if not state.accepted:
            raise ProtocolError("no accepted contributions to aggregate")
        modulus_bits = self._codec.modulus_bits
        length = len(state.ring_rows[0])
        for row in state.ring_rows:
            if len(row) != length:
                raise ConfigurationError("vector length mismatch")
        reducer = self.aggregation_reducer
        if reducer is not None:
            total = reducer(np.stack(state.ring_rows), modulus_bits)
        else:
            # Chunked accumulate: the rows are only ever needed for their
            # sum, so never stack the full row-major matrix (bit-exact by
            # associativity; see kernels.ring_accumulate).
            total = kernels.ring_accumulate(state.ring_rows, modulus_bits)
        if dropout_masks:
            # Commitment-aware blinders reveal MaskOpening objects; the
            # bare mask words are what repairs the ring sum.  Ring addition
            # commutes, so all repairs collapse into one summed vector and
            # a single apply — bit-identical to applying them one by one.
            repair_rows = []
            for mask in dropout_masks:
                words = getattr(mask, "mask", mask)
                if len(words) != length:
                    raise ConfigurationError(
                        "mask length does not match vector length"
                    )
                repair_rows.append(kernels.as_ring(list(words), modulus_bits))
            if reducer is not None:
                repair = reducer(np.stack(repair_rows), modulus_bits)
            else:
                repair = kernels.ring_accumulate(repair_rows, modulus_bits)
            total = kernels.ring_add(total, repair, modulus_bits)
        decoded = self._codec.decode(total)
        count = len(state.accepted)
        return RoundResult(
            round_id=round_id,
            aggregate=decoded / count,
            num_contributions=count,
            num_dropouts_repaired=len(dropout_masks),
            rejected=dict(state.rejected),
            accepted=tuple(state.accepted),
        )

    def _finalize_streaming(
        self, state: StreamingRoundState, dropout_masks: Sequence[Sequence[int]]
    ) -> RoundResult:
        """Merge the subgroup partials into the round total and decode.

        Repair masks fold like submissions do (ring addition commutes);
        the merge runs through ``aggregation_reducer`` when the scale
        layer installed one, so the subgroup leaves feed the same parent
        tree the flat path's rows would.  ``accepted`` stays empty: the
        folded rows no longer exist to re-audit, which the engine treats
        as a legacy pass-through (exactness is proven by the subgroup
        parity suite instead).
        """
        modulus_bits = self._codec.modulus_bits
        length = state.accumulator.length
        for mask in dropout_masks:
            words = getattr(mask, "mask", mask)
            if length is not None and len(words) != length:
                raise ConfigurationError(
                    "mask length does not match vector length"
                )
            state.accumulator.fold_repair(
                list(words), getattr(mask, "slot", None)
            )
        total = state.accumulator.total(self.aggregation_reducer)
        decoded = self._codec.decode(total)
        count = len(state._accepted_nonces)
        return RoundResult(
            round_id=state.round_id,
            aggregate=decoded / count,
            num_contributions=count,
            num_dropouts_repaired=len(dropout_masks),
            rejected=dict(state.rejected),
            accepted=(),
        )

    def finalize_plain_round(self, round_id: int) -> RoundResult:
        """Average plaintext payloads (the Figure 1b path, via a Glimmer)."""
        state = self.round_state(round_id)
        if state.blinded:
            raise ProtocolError("round is blinded; use finalize_blinded_round")
        if not state.accepted:
            raise ProtocolError("no accepted contributions to aggregate")
        stacked = np.stack(
            [np.asarray(c.plain_payload, dtype=float) for c in state.accepted]
        )
        return RoundResult(
            round_id=round_id,
            aggregate=stacked.mean(axis=0),
            num_contributions=len(state.accepted),
            num_dropouts_repaired=0,
            rejected=dict(state.rejected),
            accepted=tuple(state.accepted),
        )
