"""Concrete validation predicates — the ladder of §2.

The paper sketches an escalation of validators for the keyboard service:

1. *range-checking model parameters* — cheap, stops out-of-range forgery
   (the 538 attack) but "she can still send arbitrary fictitious values
   within that range";
2. *observe actual keyboard behavior (a la NAB [5]) to match keyboard
   events to reported model weights* — costlier, forces the adversary to
   fabricate keyboard activity;
3. *observe CPU branches [17] to identify a plausible execution of the
   model-construction code* — costliest, forces fabrication of a whole
   training execution.

Each predicate here reports its simulated cycle cost, so experiment E6 can
chart Glimmer-side complexity against the adversary's forgery cost and the
detection rate at each rung.  Geo and purchase predicates serve the
photos-for-maps (E11) and recommender examples.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

from repro.core.validation import PrivateContext, ValidationOutcome
from repro.crypto.hashing import hash_items
from repro.errors import ConfigurationError

# Cycle-cost coefficients (same currency as repro.sgx.costs).
_RANGE_CYCLES_PER_PARAM = 4
_NORM_CYCLES_PER_PARAM = 8
_KEYSTROKE_CYCLES_PER_EVENT = 35
_EXEC_TRACE_CYCLES_PER_TOKEN = 240
_GEO_CYCLES_PER_FIX = 20
_PURCHASE_CYCLES_PER_RECORD = 15
_SILHOUETTE_CYCLES_PER_FRAME = 90  # per-frame silhouette extraction is pricey

# Human typing never has near-zero inter-key variance (ms^2).
_MIN_HUMAN_TIMING_VARIANCE = 500.0


class AcceptAllPredicate:
    """The no-Glimmer baseline: endorse everything (Figure 1c's failure)."""

    name = "accept-all"

    def required_context(self) -> tuple[str, ...]:
        return ()

    def evaluate(self, values: Sequence[float], context: PrivateContext) -> ValidationOutcome:
        return ValidationOutcome(
            passed=True, confidence=0.0, reason="no validation performed",
            predicate_name=self.name, cycles=1,
        )


class RangeCheckPredicate:
    """Every parameter must lie in ``[low, high]`` — the paper's first rung.

    Defeats the Figure 1d magnitude attack outright; cannot tell a maxed-out
    legal value from a genuine one.
    """

    name = "range"

    def __init__(self, low: float = 0.0, high: float = 1.0) -> None:
        if low > high:
            raise ConfigurationError("range low must not exceed high")
        self.low = low
        self.high = high

    def required_context(self) -> tuple[str, ...]:
        return ()

    def evaluate(self, values: Sequence[float], context: PrivateContext) -> ValidationOutcome:
        cycles = _RANGE_CYCLES_PER_PARAM * max(1, len(values))
        for i, value in enumerate(values):
            if not self.low <= value <= self.high:
                return ValidationOutcome(
                    passed=False,
                    confidence=1.0,
                    reason=(
                        f"parameter {i} = {value} outside legal range "
                        f"[{self.low}, {self.high}]"
                    ),
                    predicate_name=self.name,
                    cycles=cycles,
                )
        return ValidationOutcome(
            passed=True, confidence=1.0, reason="all parameters in range",
            predicate_name=self.name, cycles=cycles,
        )


class NormBoundPredicate:
    """L2 norm of the contribution must not exceed ``bound``.

    The standard defense against gradient-boosting attacks when per-
    parameter ranges are too loose.
    """

    name = "norm"

    def __init__(self, bound: float = 8.0) -> None:
        if bound <= 0:
            raise ConfigurationError("norm bound must be positive")
        self.bound = bound

    def required_context(self) -> tuple[str, ...]:
        return ()

    def evaluate(self, values: Sequence[float], context: PrivateContext) -> ValidationOutcome:
        cycles = _NORM_CYCLES_PER_PARAM * max(1, len(values))
        norm = math.sqrt(sum(v * v for v in values))
        passed = norm <= self.bound
        return ValidationOutcome(
            passed=passed,
            confidence=1.0,
            reason=f"L2 norm {norm:.3f} vs bound {self.bound}",
            predicate_name=self.name,
            cycles=cycles,
        )


class RateLimitPredicate:
    """At most ``max_per_round`` contributions per aggregation round.

    Uses the enclave's monotonic counter when the Glimmer provides one (in
    ``context.extra['counter']``), making the limit rollback-proof against
    a host that restarts the enclave.
    """

    name = "rate"

    def __init__(self, max_per_round: int = 1) -> None:
        if max_per_round < 1:
            raise ConfigurationError("max_per_round must be >= 1")
        self.max_per_round = max_per_round
        self._fallback_counts: Counter = Counter()

    def required_context(self) -> tuple[str, ...]:
        return ()

    def evaluate(self, values: Sequence[float], context: PrivateContext) -> ValidationOutcome:
        round_id = int(context.extra.get("round_id", 0))
        counter = context.extra.get("counter")
        if counter is not None:
            count = counter.increment()
        else:
            self._fallback_counts[round_id] += 1
            count = self._fallback_counts[round_id]
        passed = count <= self.max_per_round
        return ValidationOutcome(
            passed=passed,
            confidence=1.0,
            reason=f"contribution {count} of {self.max_per_round} allowed this round",
            predicate_name=self.name,
            cycles=60,
        )


class KeystrokeCorroborationPredicate:
    """NAB-style rung 2: reported weights must match observed typing.

    Requires ``context.keystroke_trace`` (a
    :class:`repro.workloads.keyboard.KeystrokeTrace`) and
    ``context.extra['features']`` (the bigram list).  Two checks:

    * the trace's inter-key timing variance must be human-plausible (a
      machine-generated trace is flat);
    * weights recomputed from the *typed* text must match the reported
      vector within ``tolerance``.
    """

    name = "keystrokes"

    def __init__(self, tolerance: float = 0.15) -> None:
        if tolerance < 0:
            raise ConfigurationError("tolerance must be non-negative")
        self.tolerance = tolerance

    def required_context(self) -> tuple[str, ...]:
        return ("keystroke_trace",)

    def evaluate(self, values: Sequence[float], context: PrivateContext) -> ValidationOutcome:
        trace = context.keystroke_trace
        features = context.extra.get("features")
        if trace is None or features is None:
            return ValidationOutcome(
                passed=False, confidence=1.0,
                reason="keystroke trace or feature list unavailable",
                predicate_name=self.name, cycles=10,
            )
        events = getattr(trace, "events", [])
        cycles = _KEYSTROKE_CYCLES_PER_EVENT * max(1, len(events))
        if len(events) < 16:
            return ValidationOutcome(
                passed=False, confidence=1.0,
                reason=f"trace too short ({len(events)} events) to corroborate",
                predicate_name=self.name, cycles=cycles,
            )
        if trace.timing_variance() < _MIN_HUMAN_TIMING_VARIANCE:
            return ValidationOutcome(
                passed=False, confidence=0.95,
                reason="inter-key timing variance is machine-like",
                predicate_name=self.name, cycles=cycles,
            )
        recomputed = _weights_from_sentences(trace.typed_sentences(), features)
        worst = max(
            (abs(r - v) for r, v in zip(recomputed, values)), default=0.0
        )
        if len(recomputed) != len(values):
            return ValidationOutcome(
                passed=False, confidence=1.0,
                reason="reported vector length does not match feature list",
                predicate_name=self.name, cycles=cycles,
            )
        passed = worst <= self.tolerance
        return ValidationOutcome(
            passed=passed,
            confidence=0.9,
            reason=f"max |reported - observed| = {worst:.4f} vs tolerance {self.tolerance}",
            predicate_name=self.name,
            cycles=cycles,
        )


class ExecutionTracePredicate:
    """XTrec-style rung 3: a plausible training execution must back the weights.

    The client supplies its training sentences and a *trace commitment* —
    a hash chain over (sentences, resulting weights) standing in for a CPU
    branch trace [17].  The predicate re-executes training inside the
    Glimmer, recomputes the commitment, and requires both to match.  An
    adversary now has to fabricate an entire consistent execution, the
    costliest rung of the ladder.
    """

    name = "exec-trace"

    def __init__(self, tolerance: float = 0.02) -> None:
        if tolerance < 0:
            raise ConfigurationError("tolerance must be non-negative")
        self.tolerance = tolerance

    def required_context(self) -> tuple[str, ...]:
        return ("sentences",)

    def evaluate(self, values: Sequence[float], context: PrivateContext) -> ValidationOutcome:
        sentences = context.sentences
        features = context.extra.get("features")
        commitment = context.extra.get("trace_commitment")
        if sentences is None or features is None or commitment is None:
            return ValidationOutcome(
                passed=False, confidence=1.0,
                reason="sentences, features, or trace commitment unavailable",
                predicate_name=self.name, cycles=10,
            )
        num_tokens = sum(len(s) for s in sentences)
        cycles = _EXEC_TRACE_CYCLES_PER_TOKEN * max(1, num_tokens)
        recomputed = _weights_from_sentences(sentences, features)
        if len(recomputed) != len(values):
            return ValidationOutcome(
                passed=False, confidence=1.0,
                reason="reported vector length does not match feature list",
                predicate_name=self.name, cycles=cycles,
            )
        worst = max(
            (abs(r - v) for r, v in zip(recomputed, values)), default=0.0
        )
        expected_commitment = trace_commitment(sentences, recomputed)
        if commitment != expected_commitment:
            return ValidationOutcome(
                passed=False, confidence=1.0,
                reason="execution trace commitment does not replay",
                predicate_name=self.name, cycles=cycles,
            )
        passed = worst <= self.tolerance
        return ValidationOutcome(
            passed=passed,
            confidence=0.98,
            reason=f"replayed execution matches within {worst:.4f}",
            predicate_name=self.name,
            cycles=cycles,
        )


class GeoCorroborationPredicate:
    """Photos-for-maps: the user must actually have been where they claim.

    Requires ``context.geo_context`` (track + camera fingerprint) and
    ``context.extra['submission']`` (the photo).  Checks that the claimed
    location is within ``radius`` of the user's track around the photo
    timestamp, and that the photo's camera fingerprint matches the device.
    """

    name = "geo"

    def __init__(self, radius: float = 25.0) -> None:
        if radius <= 0:
            raise ConfigurationError("radius must be positive")
        self.radius = radius

    def required_context(self) -> tuple[str, ...]:
        return ("geo_context",)

    def evaluate(self, values: Sequence[float], context: PrivateContext) -> ValidationOutcome:
        geo = context.geo_context
        submission = context.extra.get("submission")
        if geo is None or submission is None:
            return ValidationOutcome(
                passed=False, confidence=1.0,
                reason="geo context or submission unavailable",
                predicate_name=self.name, cycles=10,
            )
        cycles = _GEO_CYCLES_PER_FIX * max(1, len(geo.track))
        if submission.camera_fingerprint != geo.camera_fingerprint:
            return ValidationOutcome(
                passed=False, confidence=1.0,
                reason="camera fingerprint does not match this device",
                predicate_name=self.name, cycles=cycles,
            )
        fix = geo.position_at(submission.taken_at_ms)
        if fix is None:
            return ValidationOutcome(
                passed=False, confidence=1.0, reason="no GPS track available",
                predicate_name=self.name, cycles=cycles,
            )
        offset = math.hypot(
            fix.x - submission.claimed_x, fix.y - submission.claimed_y
        )
        passed = offset <= self.radius
        return ValidationOutcome(
            passed=passed,
            confidence=0.9,
            reason=f"claimed location {offset:.1f}m from track (radius {self.radius}m)",
            predicate_name=self.name,
            cycles=cycles,
        )


class PurchaseCorroborationPredicate:
    """Recommender: a review must be backed by a purchase that predates it."""

    name = "purchase"

    def required_context(self) -> tuple[str, ...]:
        return ("shopping_context",)

    def evaluate(self, values: Sequence[float], context: PrivateContext) -> ValidationOutcome:
        shopping = context.shopping_context
        review = context.extra.get("review")
        if shopping is None or review is None:
            return ValidationOutcome(
                passed=False, confidence=1.0,
                reason="shopping context or review unavailable",
                predicate_name=self.name, cycles=10,
            )
        cycles = _PURCHASE_CYCLES_PER_RECORD * max(1, len(shopping.purchases))
        purchase_time = shopping.purchase_time(review.product_id)
        if purchase_time is None:
            return ValidationOutcome(
                passed=False, confidence=1.0,
                reason=f"no purchase of {review.product_id} in history",
                predicate_name=self.name, cycles=cycles,
            )
        if review.posted_at_ms < purchase_time:
            return ValidationOutcome(
                passed=False, confidence=1.0,
                reason="review predates the purchase",
                predicate_name=self.name, cycles=cycles,
            )
        return ValidationOutcome(
            passed=True, confidence=0.95, reason="purchase corroborates review",
            predicate_name=self.name, cycles=cycles,
        )


class SilhouetteCorroborationPredicate:
    """Activity detection: the motion histogram must replay from the video.

    §2's third example: "checking that silhouettes are legitimate requires
    analysis of full video streams captured at people's homes."  Requires
    ``context.extra['video_stream']`` (a
    :class:`repro.workloads.camera.VideoStream`); the predicate recomputes
    the motion-energy histogram from the private frames and requires the
    reported vector to match within ``tolerance`` per bin.  A forger
    without real footage cannot produce a matching histogram except by
    guessing the resident's actual movements.
    """

    name = "silhouette"

    def __init__(self, tolerance: float = 0.05) -> None:
        if tolerance < 0:
            raise ConfigurationError("tolerance must be non-negative")
        self.tolerance = tolerance

    def required_context(self) -> tuple[str, ...]:
        return ("video_stream",)

    def evaluate(self, values: Sequence[float], context: PrivateContext) -> ValidationOutcome:
        from repro.workloads.camera import motion_histogram

        stream = context.video_stream
        if stream is None:
            return ValidationOutcome(
                passed=False, confidence=1.0,
                reason="video stream unavailable",
                predicate_name=self.name, cycles=10,
            )
        frames = getattr(stream, "frames", [])
        cycles = _SILHOUETTE_CYCLES_PER_FRAME * max(1, len(frames))
        recomputed = motion_histogram(frames)
        if len(recomputed) != len(values):
            return ValidationOutcome(
                passed=False, confidence=1.0,
                reason="reported histogram has the wrong number of bins",
                predicate_name=self.name, cycles=cycles,
            )
        worst = max(
            (abs(r - v) for r, v in zip(recomputed, values)), default=0.0
        )
        passed = worst <= self.tolerance
        return ValidationOutcome(
            passed=passed,
            confidence=0.95,
            reason=f"max |reported - observed| = {worst:.4f} vs tolerance {self.tolerance}",
            predicate_name=self.name,
            cycles=cycles,
        )


class ChainPredicate:
    """All member predicates must pass; costs add, confidence is the minimum."""

    name = "chain"

    def __init__(self, members: Sequence) -> None:
        if not members:
            raise ConfigurationError("chain needs at least one member")
        self.members = list(members)

    def required_context(self) -> tuple[str, ...]:
        needed: list[str] = []
        for member in self.members:
            for item in member.required_context():
                if item not in needed:
                    needed.append(item)
        return tuple(needed)

    def evaluate(self, values: Sequence[float], context: PrivateContext) -> ValidationOutcome:
        total_cycles = 0
        confidence = 1.0
        for member in self.members:
            outcome = member.evaluate(values, context)
            total_cycles += outcome.cycles
            confidence = min(confidence, outcome.confidence)
            if not outcome.passed:
                return ValidationOutcome(
                    passed=False,
                    confidence=outcome.confidence,
                    reason=f"{member.name}: {outcome.reason}",
                    predicate_name=self.name,
                    cycles=total_cycles,
                )
        return ValidationOutcome(
            passed=True, confidence=confidence, reason="all chained predicates passed",
            predicate_name=self.name, cycles=total_cycles,
        )


def _weights_from_sentences(sentences, features) -> list[float]:
    """Shared weight recomputation (must mirror the client trainer exactly)."""
    pair_counts: Counter = Counter()
    left_counts: Counter = Counter()
    for sentence in sentences:
        for left, right in zip(sentence, sentence[1:]):
            pair_counts[(left, right)] += 1
            left_counts[left] += 1
    weights = []
    for left, right in features:
        total = left_counts.get(left, 0)
        weights.append(pair_counts.get((left, right), 0) / total if total else 0.0)
    return weights


def trace_commitment(sentences, weights: Sequence[float]) -> bytes:
    """The execution-trace commitment both client and Glimmer compute."""
    items = [b"exec-trace-v1"]
    for sentence in sentences:
        items.append(" ".join(sentence).encode("utf-8"))
    items.append(
        b"".join(round(w * 1_000_000).to_bytes(8, "big", signed=True) for w in weights)
    )
    return hash_items("exec-trace-commitment", items)
