"""The runtime auditor of §4.1: bound what an opaque Glimmer can say.

When the validation predicate itself is encrypted (validation
confidentiality), the user can no longer audit the Glimmer's code.  The
paper's answer: "making the message format between the Glimmer and the
service public, and having a runtime auditor check that each message is
well formed and contains only one bit of information (i.e., a single bit
plus a well-defined signature and challenge response).  While this does not
preclude a covert channel, it puts a hard upper bound on the capacity of
such a channel."

The public format (:class:`VerdictMessage`) has exactly three fields beyond
addressing, and the auditor checks each carries zero *attacker-controllable*
freedom beyond the verdict bit:

* ``verdict_bit`` — the one permitted bit;
* ``challenge_response`` — must equal ``H(challenge ‖ verdict_bit)``, a
  deterministic function of public values, so it cannot smuggle anything;
* ``signature_bytes`` — must be exactly the fixed signature length; the
  auditor cannot check determinism without the key, so it *counts* the
  message against the session's bit budget instead.

:class:`RuntimeAuditor` enforces the format and accounts the covert-channel
capacity: after ``n`` audited messages, at most ``n`` bits can have left
the device, whatever the encrypted predicate tried (experiment E9 measures
an actively exfiltrating predicate against this bound).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import hash_items
from repro.errors import AuditError

SIGNATURE_BYTES = 512  # SchnorrSignature.to_bytes() length
CHALLENGE_BYTES = 32
RESPONSE_BYTES = 32


@dataclass(frozen=True)
class VerdictMessage:
    """The public 1-bit message format between Glimmer and service."""

    session_id: str
    challenge: bytes
    verdict_bit: int
    challenge_response: bytes
    signature_bytes: bytes

    def information_bits(self) -> int:
        """The message's attacker-usable information content (by format)."""
        return 1


def expected_response(challenge: bytes, verdict_bit: int) -> bytes:
    """The only legal challenge response: H(challenge ‖ verdict)."""
    return hash_items(
        "verdict-challenge-response", [challenge, bytes([verdict_bit & 1])]
    )


@dataclass
class AuditRecord:
    """Per-session accounting."""

    messages_passed: int = 0
    messages_rejected: int = 0
    bits_released: int = 0


class RuntimeAuditor:
    """Checks every outbound verdict message against the public format.

    Sits on the host, outside the enclave — it needs no secrets, only the
    public format and the service's challenge, which is why an end user (or
    the EFF on their behalf) can run it.
    """

    def __init__(self, max_bits_per_session: int | None = None) -> None:
        self.max_bits_per_session = max_bits_per_session
        self._sessions: dict[str, AuditRecord] = {}

    def record_for(self, session_id: str) -> AuditRecord:
        record = self._sessions.get(session_id)
        if record is None:
            record = AuditRecord()
            self._sessions[session_id] = record
        return record

    def audit(self, message: VerdictMessage, expected_challenge: bytes) -> VerdictMessage:
        """Pass a well-formed message through; raise :class:`AuditError` otherwise.

        Checks, in order: field types and lengths, the verdict bit's
        domain, challenge freshness, response correctness, and (if
        configured) the session's cumulative bit budget.
        """
        record = self.record_for(message.session_id)
        try:
            self._check_format(message, expected_challenge)
            if self.max_bits_per_session is not None:
                if record.bits_released + message.information_bits() > self.max_bits_per_session:
                    raise AuditError(
                        f"session {message.session_id!r} exceeded its "
                        f"{self.max_bits_per_session}-bit release budget"
                    )
        except AuditError:
            record.messages_rejected += 1
            raise
        record.messages_passed += 1
        record.bits_released += message.information_bits()
        return message

    def _check_format(self, message: VerdictMessage, expected_challenge: bytes) -> None:
        if not isinstance(message.verdict_bit, int) or message.verdict_bit not in (0, 1):
            raise AuditError("verdict must be exactly one bit")
        if not isinstance(message.challenge, bytes) or len(message.challenge) != CHALLENGE_BYTES:
            raise AuditError("challenge field malformed")
        if message.challenge != expected_challenge:
            raise AuditError("message does not answer the service's challenge")
        if (
            not isinstance(message.challenge_response, bytes)
            or len(message.challenge_response) != RESPONSE_BYTES
        ):
            raise AuditError("challenge response malformed")
        if message.challenge_response != expected_response(
            message.challenge, message.verdict_bit
        ):
            raise AuditError(
                "challenge response is not the prescribed deterministic value"
            )
        if (
            not isinstance(message.signature_bytes, bytes)
            or len(message.signature_bytes) != SIGNATURE_BYTES
        ):
            raise AuditError(
                f"signature must be exactly {SIGNATURE_BYTES} bytes"
            )

    def capacity_bound_bits(self, session_id: str) -> int:
        """The hard upper bound on what this session can have leaked."""
        return self.record_for(session_id).bits_released
