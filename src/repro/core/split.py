"""The decomposed Glimmer: one enclave per component (E7 ablation).

§3 closes: "to increase ease of verification, the Glimmer can be decomposed
so that each component runs in its own enclave.  Naturally, communication
between components must now also be secured."  This module implements that
variant so experiment E7 can price it:

* :class:`ValidationEnclaveProgram`, :class:`BlindingEnclaveProgram`, and
  :class:`SigningEnclaveProgram` each hold one component;
* components pair up using **local attestation**: each end binds an
  ephemeral DH value into an EREPORT, the peer verifies the report on-
  platform and checks the expected measurement, and both derive a shared
  transport key;
* intermediate results cross the untrusted host as authenticated
  ciphertexts with per-link sequence numbers, so the host can neither read,
  modify, reorder, nor replay them;
* :class:`SplitGlimmer` is the host-side coordinator gluing the three
  enclaves into the same external interface as the single-enclave
  :class:`~repro.core.glimmer.GlimmerProgram`.

The price: three ecall round trips (plus the validation ocall) instead of
one, plus two AE encrypt/decrypt legs per contribution — precisely the
efficiency the paper says the single-enclave layout buys.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

from repro.core.blinding import BlindingComponent
from repro.core.glimmer import (
    GlimmerConfig,
    KeyDelivery,
    ProcessRequest,
    features_digest,
    handshake_digest,
)
from repro.core.signing import SignedContribution, SigningComponent
from repro.core.validation import PrivateContext, default_registry
from repro.crypto.cipher import AuthenticatedCipher, SealedBox
from repro.crypto.commitments import decode_mask_payload
from repro.crypto.dh import DHKeyPair
from repro.crypto.group_ops import DHSessionCache
from repro.crypto.schnorr import SchnorrKeyPair
from repro.errors import (
    AttestationError,
    AuthenticationError,
    ProtocolError,
    ValidationError,
)
from repro.sgx.attestation import report_data_for
from repro.sgx.enclave import EnclaveProgram, ecall
from repro.sgx.measurement import EnclaveImage, VendorKey
from repro.sgx.platform import SgxPlatform


@dataclass(frozen=True)
class PairingOffer:
    """One end's local-attestation material: DH value + binding report."""

    dh_public: int
    report: object


class _ComponentProgram(EnclaveProgram):
    """Shared pairing + secured-link machinery for split components."""

    def on_load(self) -> None:
        self._link_keys: dict[str, bytes] = {}
        self._link_send_seq: dict[str, int] = {}
        self._link_recv_seq: dict[str, int] = {}
        self._pending_pairings: dict[str, DHKeyPair] = {}
        # (peer DH public, context) -> established provisioning key, for
        # cross-round handshake resumption — same protocol as the
        # single-enclave Glimmer (see GlimmerProgram._open_delivery).
        self._session_keys: dict[tuple[int, str], bytes] = {}

    def _group(self):
        raise NotImplementedError

    def _provisioning_key(
        self, keypair: DHKeyPair, delivery: KeyDelivery, context: str
    ) -> bytes:
        """Session key for a delivery: resumed when the peer public repeats.

        A fresh handshake draws a fresh peer keypair, so a *repeated*
        peer public can only mean the provisioner is resuming its cached
        session; both ends then ratchet the established key with this
        session's id and skip the shared-secret exponentiation.
        """
        cache_key = (delivery.peer_dh_public, context)
        base_key = self._session_keys.get(cache_key)
        if base_key is not None:
            return DHSessionCache.resume_key(
                base_key, delivery.session_id, context
            )
        self.api.charge_dh()
        key = keypair.derive_key(delivery.peer_dh_public, context)
        if len(self._session_keys) >= 128:
            self._session_keys.pop(next(iter(self._session_keys)))
        self._session_keys[cache_key] = key
        return key

    @ecall
    def offer_pairing(self, link: str) -> PairingOffer:
        """First pairing flight: fresh DH value bound into a local report."""
        self.api.charge_dh()
        keypair = DHKeyPair.generate(self._group(), self.api.rng)
        self._pending_pairings[link] = keypair
        report = self.api.create_report(
            report_data_for(keypair.public.to_bytes(256, "big"))
        )
        return PairingOffer(dh_public=keypair.public, report=report)

    def _check_peer_offer(self, offer: PairingOffer, expected_mrenclave: bytes) -> int:
        if not self.api.verify_local_report(offer.report):
            raise AttestationError("peer report does not verify on this platform")
        if offer.report.mrenclave != expected_mrenclave:
            raise AttestationError("peer enclave has an unexpected measurement")
        binding = report_data_for(offer.dh_public.to_bytes(256, "big"))
        if offer.report.report_data != binding:
            raise AttestationError("peer report does not bind the DH value")
        return offer.dh_public

    @ecall
    def accept_pairing(
        self, link: str, peer_offer: PairingOffer, expected_mrenclave: bytes
    ) -> PairingOffer:
        """Responder: verify the initiator's offer, reply with our own."""
        peer_public = self._check_peer_offer(peer_offer, expected_mrenclave)
        self.api.charge_dh()
        keypair = DHKeyPair.generate(self._group(), self.api.rng)
        self._install_link(link, keypair, peer_public)
        report = self.api.create_report(
            report_data_for(keypair.public.to_bytes(256, "big"))
        )
        return PairingOffer(dh_public=keypair.public, report=report)

    @ecall
    def finish_pairing(
        self, link: str, peer_offer: PairingOffer, expected_mrenclave: bytes
    ) -> None:
        """Initiator: verify the responder's offer and derive the link key."""
        keypair = self._pending_pairings.pop(link, None)
        if keypair is None:
            raise ProtocolError(f"no pairing in progress on link {link!r}")
        peer_public = self._check_peer_offer(peer_offer, expected_mrenclave)
        self._install_link(link, keypair, peer_public)

    def _install_link(self, link: str, keypair: DHKeyPair, peer_public: int) -> None:
        self.api.charge_dh()
        self._link_keys[link] = keypair.derive_key(peer_public, "split-link:" + link)
        self._link_send_seq[link] = 0
        self._link_recv_seq[link] = 0

    def _link_encrypt(self, link: str, payload: object) -> bytes:
        key = self._link_keys.get(link)
        if key is None:
            raise ProtocolError(f"link {link!r} not paired")
        seq = self._link_send_seq[link]
        self._link_send_seq[link] = seq + 1
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self.api.charge_aead(len(blob))
        cipher = AuthenticatedCipher(key)
        nonce = self.api.rng.generate(16)
        associated = link.encode("utf-8") + seq.to_bytes(8, "big")
        return cipher.encrypt(nonce, blob, associated_data=associated).to_bytes()

    def _link_decrypt(self, link: str, wire: bytes) -> object:
        key = self._link_keys.get(link)
        if key is None:
            raise ProtocolError(f"link {link!r} not paired")
        seq = self._link_recv_seq[link]
        cipher = AuthenticatedCipher(key)
        associated = link.encode("utf-8") + seq.to_bytes(8, "big")
        self.api.charge_aead(len(wire))
        blob = cipher.decrypt(SealedBox.from_bytes(wire), associated_data=associated)
        self._link_recv_seq[link] = seq + 1
        return pickle.loads(blob)


class ValidationEnclaveProgram(_ComponentProgram):
    """Component 1: runs the measured predicate, emits a sealed verdict."""

    def on_load(self) -> None:
        super().on_load()
        self._config = GlimmerConfig.decode(self.api.config)
        self._predicate = default_registry().build(self._config.predicate_spec)

    def _group(self):
        return self._config.service_identity.group

    @ecall
    def validate(self, request: ProcessRequest) -> bytes:
        """Validate and forward (values, confidence) to the blinding enclave."""
        if features_digest(request.features) != self._config.features_digest:
            raise ValidationError("feature list does not match the published digest")
        needed = tuple(
            dict.fromkeys(tuple(self._predicate.required_context()) + request.context_fields)
        )
        raw = (
            self.api.ocall("collect_private_data", needed) if needed else PrivateContext()
        )
        if not isinstance(raw, PrivateContext):
            raise ValidationError("host returned malformed private context")
        context = PrivateContext(
            sentences=raw.sentences,
            keystroke_trace=raw.keystroke_trace,
            geo_context=raw.geo_context,
            shopping_context=raw.shopping_context,
            session_signals=raw.session_signals,
            video_stream=raw.video_stream,
            extra=dict(raw.extra),
        )
        context.extra.setdefault("features", request.features)
        context.extra["round_id"] = request.round_id
        # Same rollback-proof counter wiring as the single-enclave Glimmer,
        # so rate-limit predicates survive validation-enclave restarts.
        context.extra["counter"] = self.api.monotonic_counter(
            f"contributions-round-{request.round_id}"
        )
        context.extra.update(request.claims)
        outcome = self._predicate.evaluate(request.values, context)
        self.api.charge(outcome.cycles, "validation")
        if not outcome.passed:
            raise ValidationError(
                f"{outcome.predicate_name} rejected contribution: {outcome.reason}"
            )
        return self._link_encrypt(
            "validation-blinding",
            {
                "round_id": request.round_id,
                "party_index": request.party_index,
                "values": request.values,
                "blind": request.blind,
                "confidence": outcome.confidence,
            },
        )


class BlindingEnclaveProgram(_ComponentProgram):
    """Component 2: holds round masks, blinds validated values."""

    def on_load(self) -> None:
        super().on_load()
        self._config = GlimmerConfig.decode(self.api.config)
        self._blinding = BlindingComponent()
        self._sessions: dict[bytes, DHKeyPair] = {}

    def _group(self):
        return self._config.blinder_identity.group

    @ecall
    def begin_handshake(self, session_id: bytes) -> int:
        if session_id in self._sessions:
            raise ProtocolError("session id already in use")
        self.api.charge_dh()
        keypair = DHKeyPair.generate(self._group(), self.api.rng)
        self._sessions[session_id] = keypair
        return keypair.public

    @ecall
    def install_blinding_mask(
        self, round_id: int, party_index: int, delivery: KeyDelivery
    ) -> None:
        keypair = self._sessions.pop(delivery.session_id, None)
        if keypair is None:
            raise ProtocolError("no handshake in progress for this session")
        digest = handshake_digest(
            "blinding-mask-provisioning",
            delivery.session_id,
            keypair.public,
            delivery.peer_dh_public,
        )
        try:
            self._config.blinder_identity.verify(digest, delivery.handshake_signature)
        except AuthenticationError as exc:
            raise AuthenticationError("blinder handshake signature invalid") from exc
        key = self._provisioning_key(
            keypair, delivery, "blinding-mask-provisioning"
        )
        cipher = AuthenticatedCipher(key)
        self.api.charge_aead(len(delivery.encrypted_payload))
        plaintext = cipher.decrypt(
            SealedBox.from_bytes(delivery.encrypted_payload),
            associated_data=delivery.session_id,
        )
        opening = decode_mask_payload(plaintext)
        self._blinding.install_mask(round_id, party_index, opening.mask)

    @ecall
    def blind(self, wire: bytes) -> bytes:
        """Decrypt the validated payload, blind it, forward to signing."""
        payload = self._link_decrypt("validation-blinding", wire)
        if payload["blind"]:
            ring = self._blinding.blind(
                payload["round_id"], payload["party_index"], payload["values"]
            )
            forward = {
                "round_id": payload["round_id"],
                "blinded": True,
                "ring_payload": ring,
                "plain_payload": None,
                "confidence": payload["confidence"],
            }
        else:
            forward = {
                "round_id": payload["round_id"],
                "blinded": False,
                "ring_payload": None,
                "plain_payload": payload["values"],
                "confidence": payload["confidence"],
            }
        return self._link_encrypt("blinding-signing", forward)


class SigningEnclaveProgram(_ComponentProgram):
    """Component 3: holds the service signing key, endorses blinded payloads."""

    def on_load(self) -> None:
        super().on_load()
        self._config = GlimmerConfig.decode(self.api.config)
        self._signing: SigningComponent | None = None
        self._sessions: dict[bytes, DHKeyPair] = {}

    def _group(self):
        return self._config.service_identity.group

    @ecall
    def begin_handshake(self, session_id: bytes) -> int:
        if session_id in self._sessions:
            raise ProtocolError("session id already in use")
        self.api.charge_dh()
        keypair = DHKeyPair.generate(self._group(), self.api.rng)
        self._sessions[session_id] = keypair
        return keypair.public

    @ecall
    def install_signing_key(self, delivery: KeyDelivery) -> bytes:
        keypair = self._sessions.pop(delivery.session_id, None)
        if keypair is None:
            raise ProtocolError("no handshake in progress for this session")
        digest = handshake_digest(
            "signing-key-provisioning",
            delivery.session_id,
            keypair.public,
            delivery.peer_dh_public,
        )
        try:
            self._config.service_identity.verify(digest, delivery.handshake_signature)
        except AuthenticationError as exc:
            raise AuthenticationError("service handshake signature invalid") from exc
        key = self._provisioning_key(
            keypair, delivery, "signing-key-provisioning"
        )
        cipher = AuthenticatedCipher(key)
        self.api.charge_aead(len(delivery.encrypted_payload))
        plaintext = cipher.decrypt(
            SealedBox.from_bytes(delivery.encrypted_payload),
            associated_data=delivery.session_id,
        )
        secret = int.from_bytes(plaintext, "big")
        self._signing = SigningComponent(
            SchnorrKeyPair.from_secret(secret, self._config.service_identity.group)
        )
        return self.api.seal(plaintext, policy="mrenclave")

    @ecall
    def sign(self, wire: bytes) -> SignedContribution:
        """Decrypt the blinded payload and endorse it."""
        if self._signing is None:
            raise ProtocolError("signing key not provisioned")
        payload = self._link_decrypt("blinding-signing", wire)
        self.api.charge_signature()
        return self._signing.endorse(
            round_id=payload["round_id"],
            nonce=self.api.rng.generate(16),
            blinded=payload["blinded"],
            ring_payload=payload["ring_payload"],
            plain_payload=payload["plain_payload"],
            confidence=payload["confidence"],
        )


@dataclass(frozen=True)
class SplitImages:
    """The three vendor-signed component images."""

    validation: EnclaveImage
    blinding: EnclaveImage
    signing: EnclaveImage


def build_split_images(vendor: VendorKey, config: GlimmerConfig) -> SplitImages:
    """Measure and sign the three component images (shared config)."""
    blob = config.encode()
    return SplitImages(
        validation=EnclaveImage.build(
            ValidationEnclaveProgram, vendor, name="glimmer-validation", config=blob
        ),
        blinding=EnclaveImage.build(
            BlindingEnclaveProgram, vendor, name="glimmer-blinding", config=blob
        ),
        signing=EnclaveImage.build(
            SigningEnclaveProgram, vendor, name="glimmer-signing", config=blob
        ),
    )


class SplitGlimmer:
    """Host-side coordinator for the three-component Glimmer."""

    def __init__(
        self,
        platform: SgxPlatform,
        images: SplitImages,
        ocall_handlers: dict | None = None,
    ) -> None:
        self.platform = platform
        self.validation = platform.load_enclave(
            images.validation, ocall_handlers=ocall_handlers or {}
        )
        self.blinding = platform.load_enclave(images.blinding)
        self.signing = platform.load_enclave(images.signing)
        self._pair(self.validation, self.blinding, "validation-blinding")
        self._pair(self.blinding, self.signing, "blinding-signing")

    @staticmethod
    def _pair(initiator, responder, link: str) -> None:
        offer = initiator.ecall("offer_pairing", link)
        reply = responder.ecall("accept_pairing", link, offer, initiator.mrenclave)
        initiator.ecall("finish_pairing", link, reply, responder.mrenclave)

    def process_contribution(self, request: ProcessRequest) -> SignedContribution:
        """The same external contract as the single-enclave Glimmer."""
        wire1 = self.validation.ecall("validate", request)
        wire2 = self.blinding.ecall("blind", wire1)
        return self.signing.ecall("sign", wire2)

    def total_cycles(self) -> int:
        return (
            self.validation.meter.total
            + self.blinding.meter.total
            + self.signing.meter.total
        )

    def transition_cycles(self) -> int:
        return sum(
            enclave.meter.buckets.get("transitions", 0)
            for enclave in (self.validation, self.blinding, self.signing)
        )
