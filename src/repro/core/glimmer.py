"""The Glimmer enclave program — Figure 3 realized on the SGX simulator.

One enclave hosts the three components ("We have shown all components ...
within a single SGX enclave, which is more efficient as there is only one
transition in and out of the enclave"; the decomposed variant lives in
:mod:`repro.core.split`):

* **Validation** runs the predicate named in the *measured* config, over
  private data the Glimmer must request from the untrusted host via ocall
  ("the Glimmer cannot directly obtain such information; it must request
  this information from the host system");
* **Blinding** applies a sum-zero mask provisioned by the blinding service
  for the round;
* **Signing** endorses the (blinded or plain) payload with the
  service-provided key, which arrives over an attested DH handshake and is
  sealed to the Glimmer's measurement between sessions.

Input Integrity: ``process_contribution`` signs only when validation
passes.  Input Confidentiality: raw values and private context live only in
locals of that method; nothing is retained after it returns, and the
blinded payload is the only value-derived output.
"""

from __future__ import annotations

import pickle
import struct

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.blinding import BlindingComponent
from repro.core.encoding import decode_public_key, encode_public_key
from repro.core.signing import SignedContribution, SigningComponent
from repro.core.validation import PrivateContext, default_registry
from repro.crypto.cipher import AuthenticatedCipher, SealedBox
from repro.crypto.commitments import (
    MaskCommitmentRecord,
    decode_mask_payload,
    verify_opening,
)
from repro.crypto.dh import DHKeyPair
from repro.crypto.group_ops import DHSessionCache
from repro.crypto.hashing import hash_items
from repro.crypto.schnorr import SchnorrKeyPair, SchnorrPublicKey, SchnorrSignature
from repro.errors import (
    AuthenticationError,
    ConfigurationError,
    EnclaveError,
    MaskVerificationError,
    ProtocolError,
    ValidationError,
)
from repro.sgx.enclave import EnclaveProgram, ecall
from repro.sgx.measurement import EnclaveImage, VendorKey


@dataclass(frozen=True)
class GlimmerConfig:
    """The measured configuration baked into a Glimmer image.

    Everything here is part of MRENCLAVE: the predicate spec (so the
    service knows what validation an attested Glimmer performs), the
    service's handshake-verification key (§4.1: "embedding the signature
    verification key in the Glimmer code"), the blinding service's key, and
    a digest of the feature space the service published.
    """

    predicate_spec: str
    service_identity: SchnorrPublicKey
    blinder_identity: SchnorrPublicKey
    features_digest: bytes
    dp_sigma: float = 0.0
    """Per-contribution Gaussian noise std the Glimmer adds before blinding
    (0 disables).  Measured, so the cohort's differential-privacy level is
    part of the vetted identity — a user can check what noise the Glimmer
    promises before trusting it."""

    def encode(self) -> bytes:
        spec = self.predicate_spec.encode("utf-8")
        service_blob = encode_public_key(self.service_identity)
        blinder_blob = encode_public_key(self.blinder_identity)
        dp_blob = struct.pack(">d", self.dp_sigma)
        return b"".join(
            len(part).to_bytes(4, "big") + part
            for part in (spec, service_blob, blinder_blob, self.features_digest, dp_blob)
        )

    @classmethod
    def decode(cls, blob: bytes) -> "GlimmerConfig":
        parts = []
        offset = 0
        for __ in range(5):
            if offset + 4 > len(blob):
                raise ConfigurationError("truncated Glimmer config")
            size = int.from_bytes(blob[offset : offset + 4], "big")
            offset += 4
            if offset + size > len(blob):
                raise ConfigurationError("truncated Glimmer config")
            parts.append(blob[offset : offset + size])
            offset += size
        if offset != len(blob):
            raise ConfigurationError("trailing bytes in Glimmer config")
        if len(parts[4]) != 8:
            raise ConfigurationError("malformed dp_sigma field")
        return cls(
            predicate_spec=parts[0].decode("utf-8"),
            service_identity=decode_public_key(parts[1]),
            blinder_identity=decode_public_key(parts[2]),
            features_digest=parts[3],
            dp_sigma=struct.unpack(">d", parts[4])[0],
        )


def features_digest(bigrams: Sequence[tuple[str, str]]) -> bytes:
    """Digest of the service-published feature space."""
    return hash_items(
        "feature-space",
        [f"{left}\x00{right}".encode("utf-8") for left, right in bigrams],
    )


@dataclass(frozen=True)
class ProcessRequest:
    """What the client hands the Glimmer for one contribution."""

    round_id: int
    values: tuple[float, ...]
    features: tuple[tuple[str, str], ...]
    blind: bool = True
    party_index: int = 0
    """Which blinding-mask slot this contribution consumes (see §3's p_i)."""
    context_fields: tuple[str, ...] = ()
    claims: dict = field(default_factory=dict)
    """Adversary-supplied claims such as the execution-trace commitment."""


@dataclass(frozen=True)
class KeyDelivery:
    """Service → Glimmer: the signing key, over the attested handshake."""

    session_id: bytes
    peer_dh_public: int
    handshake_signature: SchnorrSignature
    encrypted_payload: bytes


def handshake_digest(
    context: str, session_id: bytes, glimmer_dh_public: int, peer_dh_public: int
) -> bytes:
    """What the service/blinder signs: both handshake halves plus context."""
    return hash_items(
        "glimmer-handshake",
        [
            context.encode("utf-8"),
            session_id,
            glimmer_dh_public.to_bytes(256, "big"),
            peer_dh_public.to_bytes(256, "big"),
        ],
    )


#: Established-session keys a Glimmer retains for handshake resumption.
_MAX_SESSION_KEYS = 128


class GlimmerProgram(EnclaveProgram):
    """The single-enclave Glimmer (Figure 3)."""

    def on_load(self) -> None:
        self._config = GlimmerConfig.decode(self.api.config)
        self._predicate = default_registry().build(self._config.predicate_spec)
        self._blinding = BlindingComponent()
        self._signing: SigningComponent | None = None
        self._sessions: dict[bytes, DHKeyPair] = {}
        # (peer DH public, context) -> established shared key.  A peer
        # public only ever *repeats* when the provisioner is resuming a
        # cached session (fresh handshakes draw fresh keypairs), so this
        # side needs no opt-in flag: on repeat the per-round key is
        # ratcheted from the cached shared key; otherwise the full DH leg
        # runs exactly as before.  Enclave-resident state — a restart
        # wipes it, and a provisioner that still resumes gets an
        # authenticated-decryption failure, evicts, and re-establishes.
        self._session_keys: dict[tuple[int, str], bytes] = {}

    # ------------------------------------------------- attested provisioning

    @ecall
    def begin_handshake(self, session_id: bytes) -> int:
        """Start a provisioning session; returns the Glimmer's DH public value.

        The host must bind this value into an attestation quote
        (``report_data_for(dh_public bytes)``) so the remote peer knows the
        handshake terminates inside this measured Glimmer.
        """
        if session_id in self._sessions:
            raise ProtocolError("session id already in use")
        self.api.charge_dh()
        keypair = DHKeyPair.generate(
            self._config.service_identity.group, self.api.rng
        )
        self._sessions[session_id] = keypair
        return keypair.public

    def _open_delivery(
        self, delivery: KeyDelivery, signer: SchnorrPublicKey, context: str
    ) -> bytes:
        keypair = self._sessions.pop(delivery.session_id, None)
        if keypair is None:
            raise ProtocolError("no handshake in progress for this session")
        digest = handshake_digest(
            context, delivery.session_id, keypair.public, delivery.peer_dh_public
        )
        try:
            signer.verify(digest, delivery.handshake_signature)
        except AuthenticationError as exc:
            raise AuthenticationError(
                f"peer handshake signature invalid for {context!r}"
            ) from exc
        cache_key = (delivery.peer_dh_public, context)
        base_key = self._session_keys.get(cache_key)
        if base_key is not None:
            # Resumed session: the peer reused its established DH public,
            # so both ends ratchet the cached shared key with this
            # session's id — no shared-secret exponentiation.
            key = DHSessionCache.resume_key(
                base_key, delivery.session_id, context
            )
        else:
            self.api.charge_dh()
            key = keypair.derive_key(delivery.peer_dh_public, context)
            if len(self._session_keys) >= _MAX_SESSION_KEYS:
                self._session_keys.pop(next(iter(self._session_keys)))
            self._session_keys[cache_key] = key
        cipher = AuthenticatedCipher(key)
        self.api.charge_aead(len(delivery.encrypted_payload))
        return cipher.decrypt(
            SealedBox.from_bytes(delivery.encrypted_payload),
            associated_data=delivery.session_id,
        )

    @ecall
    def install_signing_key(self, delivery: KeyDelivery) -> bytes:
        """Accept the service's signing key; returns a sealed backup blob.

        The key is sealed to this Glimmer's measurement ("the signing key
        ... sealed to the Glimmer code, so that it is only available to
        instances of Glimmer enclaves") so the host can persist it without
        being able to read it.
        """
        plaintext = self._open_delivery(
            delivery, self._config.service_identity, "signing-key-provisioning"
        )
        secret = int.from_bytes(plaintext, "big")
        keypair = SchnorrKeyPair.from_secret(
            secret, self._config.service_identity.group
        )
        self._signing = SigningComponent(keypair)
        return self.api.seal(plaintext, policy="mrenclave")

    @ecall
    def restore_signing_key(self, sealed_blob: bytes) -> None:
        """Reload a previously sealed signing key (after enclave restart)."""
        plaintext = self.api.unseal(sealed_blob)
        secret = int.from_bytes(plaintext, "big")
        self._signing = SigningComponent(
            SchnorrKeyPair.from_secret(secret, self._config.service_identity.group)
        )

    @ecall
    def install_blinding_mask(
        self,
        round_id: int,
        party_index: int,
        delivery: KeyDelivery,
        commitment: MaskCommitmentRecord | None = None,
    ) -> None:
        """Accept a (round, party) mask from the blinding service.

        The delivery arrives over the attested channel and carries the
        slot's full commitment opening.  When the caller supplies the
        engine-vouched :class:`MaskCommitmentRecord` for the slot, the
        Glimmer verifies the opening before installing — a blinding
        service that delivers a wrong-length, tampered, or equivocated
        mask is caught *here*, inside the enclave, and the round aborts
        with the blinder blamed rather than aggregating garbage.
        """
        plaintext = self._open_delivery(
            delivery, self._config.blinder_identity, "blinding-mask-provisioning"
        )
        opening = decode_mask_payload(plaintext)
        if commitment is not None:
            if commitment.round_id != round_id:
                raise MaskVerificationError(
                    f"commitment record names round {commitment.round_id}, "
                    f"not {round_id}"
                )
            expected_group = self._config.blinder_identity.group.name
            if commitment.group_name != expected_group:
                raise MaskVerificationError(
                    "commitment record uses an unexpected group"
                )
            self.api.charge_signature()  # two group exps, priced like a verify
            verify_opening(commitment, party_index, opening)
        self._blinding.install_mask(round_id, party_index, opening.mask)

    # --------------------------------------------------------- the main path

    @ecall
    def process_contribution(self, request: ProcessRequest) -> SignedContribution:
        """Validate → blind → sign.  Raises :class:`ValidationError` on reject.

        Raw values and the private context exist only inside this call
        (Input Confidentiality); the signature is issued only on a passing
        validation (Input Integrity).
        """
        context = self._collect_context(request)
        return self._process_with_context(request, context)

    @ecall
    def process_remote(
        self, session_id: bytes, client_dh_public: int, ciphertext: bytes
    ) -> bytes:
        """§4.2 Glimmer-as-a-service entry point.

        A TEE-less IoT client, having verified this Glimmer's quote, sends
        its contribution *and its private validation data* encrypted under
        the attested channel key (on-device ocalls would reach the host's
        data, not the remote client's).  The response — a signed
        contribution — returns encrypted under the same channel.
        """
        keypair = self._sessions.pop(session_id, None)
        if keypair is None:
            raise ProtocolError("no handshake in progress for this session")
        self.api.charge_dh()
        key = keypair.derive_key(client_dh_public, "glimmer-as-a-service")
        cipher = AuthenticatedCipher(key)
        self.api.charge_aead(len(ciphertext))
        plaintext = cipher.decrypt(
            SealedBox.from_bytes(ciphertext), associated_data=session_id
        )
        request, context = _decode_remote_payload(plaintext)
        self._prepare_context(request, context)
        signed = self._process_with_context(request, context)
        response = _encode_remote_response(signed)
        self.api.charge_aead(len(response))
        nonce = self.api.rng.generate(16)
        return cipher.encrypt(
            nonce, response, associated_data=session_id + b":response"
        ).to_bytes()

    def _process_with_context(
        self, request: ProcessRequest, context: PrivateContext
    ) -> SignedContribution:
        if self._signing is None:
            raise ProtocolError("signing key not provisioned")
        if features_digest(request.features) != self._config.features_digest:
            raise ValidationError(
                "feature list does not match the service-published digest"
            )
        outcome = self._predicate.evaluate(request.values, context)
        self.api.charge(outcome.cycles, "validation")
        if not outcome.passed:
            raise ValidationError(
                f"{outcome.predicate_name} rejected contribution: {outcome.reason}"
            )
        nonce = self.api.rng.generate(16)
        if request.blind:
            values = request.values
            if self._config.dp_sigma > 0.0:
                # Distributed DP (Gaussian mechanism): each Glimmer adds
                # noise before blinding, so the *aggregate* — the only thing
                # the service ever sees — carries calibrated noise even if
                # the service is curious.  The noise is enclave-private.
                values = tuple(
                    v + self.api.rng.gauss(0.0, self._config.dp_sigma)
                    for v in values
                )
                self.api.charge(40 * len(values), "dp-noise")
            ring_payload = self._blinding.blind(
                request.round_id, request.party_index, values
            )
            # Record the signing in a platform counter *before* the signed
            # contribution leaves the enclave.  The counter never blocks
            # (repeat signings with fresh masks are legitimate — E15's
            # flooding arm depends on that); it exists so restore_round can
            # refuse a checkpoint older than the last signing, which is
            # what stops a rolled-back enclave from re-signing a consumed
            # mask and double-submitting.
            self.api.monotonic_counter(
                f"blind-signings-round-{request.round_id}"
            ).increment()
            self.api.charge_aead(8 * len(ring_payload))
            self.api.charge_signature()
            return self._signing.endorse(
                round_id=request.round_id,
                nonce=nonce,
                blinded=True,
                ring_payload=ring_payload,
                plain_payload=None,
                confidence=outcome.confidence,
            )
        self.api.charge_signature()
        return self._signing.endorse(
            round_id=request.round_id,
            nonce=nonce,
            blinded=False,
            ring_payload=None,
            plain_payload=tuple(request.values),
            confidence=outcome.confidence,
        )

    def _collect_context(self, request: ProcessRequest) -> PrivateContext:
        """Ask the untrusted host for the private validation data."""
        needed = tuple(
            dict.fromkeys(
                tuple(self._predicate.required_context()) + request.context_fields
            )
        )
        if needed:
            raw = self.api.ocall("collect_private_data", needed)
        else:
            raw = PrivateContext()
        if not isinstance(raw, PrivateContext):
            raise ValidationError("host returned malformed private context")
        context = PrivateContext(
            sentences=raw.sentences,
            keystroke_trace=raw.keystroke_trace,
            geo_context=raw.geo_context,
            shopping_context=raw.shopping_context,
            session_signals=raw.session_signals,
            video_stream=raw.video_stream,
            extra=dict(raw.extra),
        )
        self._prepare_context(request, context)
        return context

    def _prepare_context(self, request: ProcessRequest, context: PrivateContext) -> None:
        """Attach the Glimmer-controlled fields predicates rely on."""
        context.extra.setdefault("features", request.features)
        context.extra["round_id"] = request.round_id
        context.extra["counter"] = self.api.monotonic_counter(
            f"contributions-round-{request.round_id}"
        )
        context.extra.update(request.claims)

    # ------------------------------------------------- crash-recoverable state

    @ecall
    def checkpoint_round(self, round_id: int) -> bytes:
        """Seal this round's unconsumed masks for crash recovery.

        The blob binds the current value of the round's blind-signing
        counter: a restarted enclave restoring it can prove the masks
        inside were not yet consumed when the checkpoint was cut.  Sealed
        to MRENCLAVE, so the untrusted host can store it but not read it.
        """
        masks = self._blinding.masks_for_round(round_id)
        counter = self.api.monotonic_counter(f"blind-signings-round-{round_id}")
        state = (int(round_id), masks, int(counter.value))
        blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        return self.api.seal(blob, policy="mrenclave")

    @ecall
    def restore_round(self, sealed_blob: bytes) -> int:
        """Recover round state from a sealed checkpoint; returns the round id.

        Rollback protection: if the round's blind-signing counter has
        advanced past the checkpointed value, some mask in the blob was
        already consumed by a signing — reinstalling it would let the host
        make this enclave sign (and the service accept) the same slot
        twice.  The platform counter survives enclave death, so the check
        holds across restarts; such a blob is refused outright.
        """
        state = pickle.loads(self.api.unseal(sealed_blob))
        try:
            round_id, masks, checkpoint_count = state
            round_id = int(round_id)
            checkpoint_count = int(checkpoint_count)
        except (TypeError, ValueError) as exc:
            raise EnclaveError("malformed round checkpoint") from exc
        counter = self.api.monotonic_counter(f"blind-signings-round-{round_id}")
        if counter.value > checkpoint_count:
            raise EnclaveError(
                f"round {round_id} checkpoint is stale: {counter.value} signing(s) "
                f"recorded since it was sealed (rollback refused)"
            )
        self._blinding.restore_masks(round_id, masks)
        return round_id

    @ecall
    def close_round(self, round_id: int) -> int:
        """Destroy all mask state for a finalized/aborted round.

        Called when the engine closes the round; returns how many
        unconsumed masks were purged.  Keeps a long-lived Glimmer's mask
        table bounded by its open rounds.
        """
        return self._blinding.purge_round(round_id)

    # ----------------------------------------------------------- inspection

    @ecall
    def predicate_name(self) -> str:
        """The measured predicate spec (handy for logging and tests)."""
        return self._config.predicate_spec

    @ecall
    def has_signing_key(self) -> bool:
        return self._signing is not None

    @ecall
    def has_mask(self, round_id: int, party_index: int = 0) -> bool:
        return self._blinding.has_mask(round_id, party_index)


def _encode_remote_payload(request: ProcessRequest, context: PrivateContext) -> bytes:
    """Serialize a remote contribution (simulation-grade: pickle inside AE).

    In a production Glimmer this would be a fixed wire format; pickling is
    confined to the *inside* of an authenticated ciphertext, so the
    security-relevant properties (confidentiality, integrity of the wire
    blob) still hold in the simulation.
    """
    return pickle.dumps((request, context), protocol=pickle.HIGHEST_PROTOCOL)


def _decode_remote_payload(blob: bytes) -> tuple[ProcessRequest, PrivateContext]:
    request, context = pickle.loads(blob)
    if not isinstance(request, ProcessRequest) or not isinstance(context, PrivateContext):
        raise ProtocolError("malformed remote contribution payload")
    return request, context


def _encode_remote_response(signed: SignedContribution) -> bytes:
    return pickle.dumps(signed, protocol=pickle.HIGHEST_PROTOCOL)


def decode_remote_response(blob: bytes) -> SignedContribution:
    """Client-side decoding of the Glimmer's encrypted response."""
    signed = pickle.loads(blob)
    if not isinstance(signed, SignedContribution):
        raise ProtocolError("malformed remote response")
    return signed


def build_glimmer_image(
    vendor: VendorKey,
    config: GlimmerConfig,
    name: str = "glimmer",
    version: int = 1,
    memory_bytes: int = 1 << 20,
    debug: bool = False,
) -> EnclaveImage:
    """Measure and sign a Glimmer image for loading onto platforms."""
    return EnclaveImage.build(
        GlimmerProgram,
        vendor,
        name=name,
        version=version,
        config=config.encode(),
        memory_bytes=memory_bytes,
        debug=debug,
    )
