"""The Validation component: predicate interface and registry.

§2 uses "validation" loosely — "any validity predicate entrusted upon the
trusted third party; different validation predicates may trade off
computational complexity for result accuracy."  The interface reflects
that: a predicate sees the user contribution and the *private context*
(data the Glimmer requested from the host, which never leaves the device)
and returns a :class:`ValidationOutcome` carrying a verdict, a confidence,
and the simulated cycle cost it incurred — the currency of experiment E6's
complexity-vs-adversary-cost trade-off.

Predicates are looked up by name in the :class:`PredicateRegistry` so that
a Glimmer's measured config can name its predicate (e.g.
``range:0.0:1.0``), making the validation semantics part of the enclave's
attested identity — exactly why the service can trust it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence

from repro.errors import ConfigurationError


@dataclass
class PrivateContext:
    """Private validation data the Glimmer requested from the host.

    Every field is optional; each predicate documents what it needs.  In
    the threat model the *host controls these values* — a malicious client
    can fabricate them — so stronger predicates are those that make
    fabrication expensive, not impossible (§2).
    """

    sentences: list | None = None
    keystroke_trace: object | None = None
    geo_context: object | None = None
    shopping_context: object | None = None
    session_signals: object | None = None
    video_stream: object | None = None
    extra: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ValidationOutcome:
    """The verdict the Signing component consumes.

    ``confidence`` is in ``[0, 1]``; boolean predicates report 1.0.  The
    paper allows either "a boolean 'valid'/'invalid', or a confidence
    value".
    """

    passed: bool
    confidence: float
    reason: str
    predicate_name: str
    cycles: int = 0


class ValidationPredicate(Protocol):
    """What the Glimmer's Validation component runs."""

    name: str

    def required_context(self) -> tuple[str, ...]:
        """Names of :class:`PrivateContext` fields this predicate reads."""
        ...

    def evaluate(
        self, values: Sequence[float], context: PrivateContext
    ) -> ValidationOutcome:
        """Judge a contribution against the private context."""
        ...


class PredicateRegistry:
    """Maps predicate spec strings to constructed predicates.

    A spec is ``name`` or ``name:arg1:arg2...``.  Registering a name twice
    is an error — specs appear in measured configs, so their meaning must
    never silently change.
    """

    def __init__(self) -> None:
        self._factories: dict[str, Callable[..., ValidationPredicate]] = {}

    def register(self, name: str, factory: Callable[..., ValidationPredicate]) -> None:
        if name in self._factories:
            raise ConfigurationError(f"predicate {name!r} already registered")
        self._factories[name] = factory

    def build(self, spec: str) -> ValidationPredicate:
        """Construct a predicate from its spec string."""
        parts = spec.split(":")
        name, args = parts[0], parts[1:]
        factory = self._factories.get(name)
        if factory is None:
            raise ConfigurationError(f"unknown predicate {name!r}")
        return factory(*args)

    def known(self) -> list[str]:
        return sorted(self._factories)


def default_registry() -> PredicateRegistry:
    """The registry with every predicate this library ships."""
    from repro.core import predicates as p

    registry = PredicateRegistry()
    registry.register("accept-all", lambda: p.AcceptAllPredicate())
    registry.register(
        "range", lambda low="0.0", high="1.0": p.RangeCheckPredicate(float(low), float(high))
    )
    registry.register("norm", lambda bound="8.0": p.NormBoundPredicate(float(bound)))
    registry.register(
        "rate", lambda max_per_round="1": p.RateLimitPredicate(int(max_per_round))
    )
    registry.register(
        "keystrokes",
        lambda tolerance="0.15": p.KeystrokeCorroborationPredicate(float(tolerance)),
    )
    registry.register(
        "exec-trace",
        lambda tolerance="0.02": p.ExecutionTracePredicate(float(tolerance)),
    )
    registry.register(
        "geo", lambda radius="25.0": p.GeoCorroborationPredicate(float(radius))
    )
    registry.register("purchase", lambda: p.PurchaseCorroborationPredicate())
    registry.register(
        "silhouette",
        lambda tolerance="0.05": p.SilhouetteCorroborationPredicate(float(tolerance)),
    )
    registry.register("chain", _build_chain(registry))
    return registry


def _build_chain(registry: PredicateRegistry):
    def factory(*specs: str):
        from repro.core.predicates import ChainPredicate

        if not specs:
            raise ConfigurationError("chain predicate needs at least one member")
        # Chain members are separated by '+' inside one spec segment each,
        # e.g. "chain:range,0.0,1.0+keystrokes,0.15".
        members = []
        for member_spec in "+".join(specs).split("+"):
            members.append(registry.build(member_spec.replace(",", ":")))
        return ChainPredicate(members)

    return factory
