"""The Signing component and the signed contribution format.

§3: "The third Glimmer component, Signing, takes a user-contributed input
(blinded or unblinded) and the result of the Validation component ... If
validation passed, the Signing component signs the user-contributed input
and returns it to the client for transmission to the service."

A :class:`SignedContribution` binds, under the service-provisioned key:

* the payload (blinded ring vector or plaintext float vector),
* the round id and a fresh nonce (replay protection at the service),
* the validation confidence,
* whether the payload is blinded.

The client relays this object; any tampering in transit breaks the
signature, which is what makes the client untrusted-but-harmless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.encoding import encode_float_vector, encode_ring_vector
from repro.crypto.hashing import hash_items
from repro.crypto.schnorr import SchnorrKeyPair, SchnorrPublicKey, SchnorrSignature
from repro.errors import CryptoError


@dataclass(frozen=True)
class SignedContribution:
    """What leaves the Glimmer for the service."""

    round_id: int
    nonce: bytes
    blinded: bool
    ring_payload: tuple[int, ...] | None
    plain_payload: tuple[float, ...] | None
    confidence: float
    signature: SchnorrSignature

    def signed_bytes(self) -> bytes:
        return contribution_digest(
            self.round_id,
            self.nonce,
            self.blinded,
            self.ring_payload,
            self.plain_payload,
            self.confidence,
        )


def contribution_digest(
    round_id: int,
    nonce: bytes,
    blinded: bool,
    ring_payload: Sequence[int] | None,
    plain_payload: Sequence[float] | None,
    confidence: float,
) -> bytes:
    """Canonical digest the signature covers."""
    if (ring_payload is None) == (plain_payload is None):
        raise CryptoError("exactly one of ring/plain payload must be present")
    payload_bytes = (
        encode_ring_vector(ring_payload)
        if ring_payload is not None
        else encode_float_vector(plain_payload)  # type: ignore[arg-type]
    )
    return hash_items(
        "signed-contribution",
        [
            round_id.to_bytes(8, "big"),
            nonce,
            b"\x01" if blinded else b"\x00",
            b"ring" if ring_payload is not None else b"plain",
            payload_bytes,
            round(confidence * 10_000).to_bytes(2, "big"),
        ],
    )


class SigningComponent:
    """Holds the service-provisioned signing key inside the Glimmer.

    The key arrives via attested provisioning and is kept sealed between
    sessions; this object is the unsealed, in-enclave working form.
    """

    def __init__(self, keypair: SchnorrKeyPair) -> None:
        self._keypair = keypair

    @property
    def public_key(self) -> SchnorrPublicKey:
        return self._keypair.public_key

    def endorse(
        self,
        round_id: int,
        nonce: bytes,
        blinded: bool,
        ring_payload: Sequence[int] | None,
        plain_payload: Sequence[float] | None,
        confidence: float,
    ) -> SignedContribution:
        """Sign a validated payload.  Callers must have checked validation."""
        digest = contribution_digest(
            round_id, nonce, blinded, ring_payload, plain_payload, confidence
        )
        return SignedContribution(
            round_id=round_id,
            nonce=nonce,
            blinded=blinded,
            ring_payload=tuple(ring_payload) if ring_payload is not None else None,
            plain_payload=tuple(plain_payload) if plain_payload is not None else None,
            confidence=confidence,
            signature=self._keypair.sign(digest),
        )
