"""Retry, circuit breaking, and fail-fast for storage operations.

Three small pieces, composed in :class:`ResilientStorageBackend`:

* :class:`RetryPolicy` — capped exponential backoff with deterministic
  DRBG jitter.  Delays are *accounted*, not slept, by default: the whole
  repo runs on simulated time, and a chaos schedule must replay
  bit-for-bit regardless of wall-clock scheduling.  Deployments that
  want real sleeps inject a ``sleep`` callable.
* :class:`CircuitBreaker` — the classic three-state machine per backend:
  ``closed`` (normal) → ``open`` after ``failure_threshold`` consecutive
  failures (every call fails fast with
  :class:`~repro.errors.StorageUnavailableError`, no I/O attempted) →
  ``half-open`` after a cooldown (one probe operation is let through;
  success closes the breaker, failure re-opens it).  The cooldown is
  measured in *operations attempted against the breaker*, not seconds,
  for the same determinism reason; a production deployment can inject
  ``time.monotonic`` as the clock instead.
* :class:`ResilientStorageBackend` — wraps any backend: each operation
  asks the breaker for admission, retries transient
  :class:`~repro.errors.StorageFaultError` failures under the policy,
  and converts exhaustion into fail-fast ``StorageUnavailableError``.
  Every attempt, retry, fast-fail, and breaker transition is counted in
  :attr:`ResilientStorageBackend.stats` for telemetry and tests.

The wrapper is transparent on success: values, sequence numbers, and
``kind`` all pass straight through, so the rest of the service cannot
tell whether it is talking to raw storage or the armored path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.crypto.drbg import HmacDrbg
from repro.errors import StorageFaultError, StorageUnavailableError
from repro.service.storage import StorageBackend

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff: ``base * 2^(attempt-1)`` plus jitter.

    ``max_attempts`` counts the first try: the default of 4 means one
    try plus up to three retries.  Jitter is drawn from a caller-supplied
    DRBG so two runs of the same schedule account identical delays.
    """

    max_attempts: int = 4
    base_delay: float = 0.005
    max_delay: float = 0.08
    jitter: float = 0.5

    def delay_for(self, attempt: int, rng: HmacDrbg | None = None) -> float:
        """The backoff delay after failed attempt number ``attempt`` (1-based)."""
        delay = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        if rng is not None and self.jitter > 0.0:
            delay *= 1.0 + self.jitter * rng.uniform()
        return min(delay, self.max_delay)


class CircuitBreaker:
    """Closed → open → half-open → closed, with an operation-count cooldown."""

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        cooldown: float = 12.0,
        clock: Callable[[], float] | None = None,
        name: str = "storage",
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.cooldown = float(cooldown)
        self.name = name
        self._ticks = 0
        self._clock = clock if clock is not None else self._tick_clock
        self.state = STATE_CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self.transitions: list[tuple[str, float]] = [(STATE_CLOSED, 0.0)]
        self.fast_fails = 0

    def _tick_clock(self) -> float:
        """Default deterministic clock: one unit per admission attempt."""
        return float(self._ticks)

    def _transition(self, state: str) -> None:
        if state != self.state:
            self.state = state
            self.transitions.append((state, self._clock()))

    def allow(self) -> None:
        """Admit one operation, or fail fast if the circuit is open."""
        self._ticks += 1
        if self.state == STATE_OPEN:
            assert self._opened_at is not None
            if self._clock() - self._opened_at >= self.cooldown:
                self._transition(STATE_HALF_OPEN)
            else:
                self.fast_fails += 1
                raise StorageUnavailableError(
                    f"circuit breaker {self.name!r} is open; "
                    f"failing fast without touching storage"
                )

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self.state != STATE_CLOSED:
            self._transition(STATE_CLOSED)

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if (
            self.state == STATE_HALF_OPEN
            or self._consecutive_failures >= self.failure_threshold
        ):
            self._transition(STATE_OPEN)
            self._opened_at = self._clock()


class ResilientStorageBackend(StorageBackend):
    """Retry + breaker armor around any :class:`StorageBackend`."""

    def __init__(
        self,
        inner: StorageBackend,
        *,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        sleep: Callable[[float], None] | None = None,
        jitter_seed: bytes = b"storage-retry-jitter",
    ) -> None:
        self.inner = inner
        self.kind = inner.kind
        self.policy = policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker(name=f"{inner.kind}-backend")
        self._sleep = sleep
        self._jitter = HmacDrbg(jitter_seed, personalization="retry-jitter")
        self.retry_delay_total = 0.0
        self.stats = {
            "attempts": 0,
            "retries": 0,
            "faults": 0,
            "unavailable": 0,
        }

    # ------------------------------------------------------------- core loop

    def _call(self, label: str, op: Callable[[], Any]) -> Any:
        self.breaker.allow()
        attempt = 0
        while True:
            attempt += 1
            self.stats["attempts"] += 1
            try:
                result = op()
            except StorageFaultError as exc:
                self.stats["faults"] += 1
                self.breaker.record_failure()
                exhausted = attempt >= self.policy.max_attempts
                if exhausted or self.breaker.state == STATE_OPEN:
                    self.stats["unavailable"] += 1
                    reason = (
                        f"{label}: retries exhausted after {attempt} attempts"
                        if exhausted
                        else f"{label}: circuit opened mid-retry"
                    )
                    raise StorageUnavailableError(reason) from exc
                delay = self.policy.delay_for(attempt, self._jitter)
                self.retry_delay_total += delay
                self.stats["retries"] += 1
                if self._sleep is not None:
                    self._sleep(delay)
            else:
                self.breaker.record_success()
                return result

    # ------------------------------------------------------------ interface

    def put(self, space: str, key: str, value: Any) -> None:
        self._call(
            f"put {space}/{key}", lambda: self.inner.put(space, key, value)
        )

    def get(self, space: str, key: str, default: Any = None) -> Any:
        return self._call(
            f"get {space}/{key}", lambda: self.inner.get(space, key, default)
        )

    def keys(self, space: str) -> list[str]:
        return self._call(f"keys {space}", lambda: self.inner.keys(space))

    def delete(self, space: str, key: str) -> bool:
        return self._call(
            f"delete {space}/{key}", lambda: self.inner.delete(space, key)
        )

    def append(self, log: str, entry: dict) -> int:
        return self._call(f"append {log}", lambda: self.inner.append(log, entry))

    def read_log(self, log: str) -> list[dict]:
        return self._call(f"read_log {log}", lambda: self.inner.read_log(log))

    def flush(self) -> None:
        self._call("flush", self.inner.flush)

    def close(self) -> None:
        # Closing must not fail-fast: a dying process gets one best-effort
        # attempt straight through, breaker or no breaker.
        try:
            self.inner.close()
        except StorageFaultError:
            pass
