"""Hash-chained audit log of trust-relevant service events.

Every event the service records — admissions, deferrals, rejections,
round opens, finalizations, aborts, blinder restarts, quarantines — lands
here as one append-only entry carrying the SHA-256 of its predecessor.
Truncating, reordering, or editing any prefix breaks every later link,
so :meth:`AuditLog.verify_chain` detects tampering with O(n) hashing and
zero trust in the storage backend.

This is the service-level counterpart of the paper's vetting story: the
*protocol* guarantees come from attestation and signatures, but an
operator still wants an inspectable record of what the service did with
whose data and when.  Entries never contain contribution values — only
ids, counts, and outcomes.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.service.storage import StorageBackend, encode_value

GENESIS = "0" * 64


def _entry_digest(prev: str, body: dict) -> str:
    canonical = json.dumps(
        encode_value(body), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256((prev + canonical).encode("utf-8")).hexdigest()


class AuditLog:
    """Append-only, hash-chained event log over a storage backend."""

    def __init__(self, backend: StorageBackend, log: str = "audit") -> None:
        self._backend = backend
        self._log = log
        entries = backend.read_log(log)
        self._head = entries[-1]["digest"] if entries else GENESIS
        self._length = len(entries)

    def record(self, event: str, **fields: Any) -> dict:
        """Append one event; returns the stored entry (with its digest)."""
        body = {"seq": self._length, "event": event}
        for key in sorted(fields):
            value = fields[key]
            if value is not None:
                body[key] = value
        digest = _entry_digest(self._head, body)
        entry = dict(body)
        entry["prev"] = self._head
        entry["digest"] = digest
        self._backend.append(self._log, entry)
        self._head = digest
        self._length += 1
        return entry

    def entries(self) -> list[dict]:
        return self._backend.read_log(self._log)

    def trail(
        self,
        round_id: int | None = None,
        tenant: str | None = None,
        event: str | None = None,
    ) -> list[dict]:
        """Entries filtered by round id, tenant, and/or event kind."""
        selected = []
        for entry in self.entries():
            if round_id is not None and entry.get("round_id") != round_id:
                continue
            if tenant is not None and entry.get("tenant") != tenant:
                continue
            if event is not None and entry.get("event") != event:
                continue
            selected.append(entry)
        return selected

    def verify_chain(self) -> int:
        """Re-hash the whole chain; returns its length, raises on tampering."""
        prev = GENESIS
        for index, entry in enumerate(self.entries()):
            body = {
                key: value
                for key, value in entry.items()
                if key not in ("prev", "digest")
            }
            if entry.get("prev") != prev:
                raise ValueError(f"audit entry {index}: broken chain link")
            if entry.get("digest") != _entry_digest(prev, body):
                raise ValueError(f"audit entry {index}: digest mismatch")
            if body.get("seq") != index:
                raise ValueError(f"audit entry {index}: sequence gap")
            prev = entry["digest"]
        return self._length
