"""Hash-chained audit log of trust-relevant service events.

Every event the service records — admissions, deferrals, rejections,
round opens, finalizations, aborts, blinder restarts, quarantines — lands
here as one append-only entry carrying the SHA-256 of its predecessor.
Truncating, reordering, or editing any prefix breaks every later link,
so :meth:`AuditLog.verify_chain` detects tampering with O(n) hashing and
zero trust in the storage backend.

Two additions make the chain *self-healing* rather than merely
tamper-evident:

* **the anchor** — alongside every append, the log writes its expected
  length and head digest into a separate key/value space
  (``audit-meta``).  A chain whose every link verifies can still have
  been truncated from the tail; the anchor turns silent tail-loss into a
  detectable break.
* **repair records** — :meth:`AuditLog.verify_and_repair` finds the
  first broken link, quarantines everything from the break onward (the
  entries stay readable but are no longer trusted), and appends an
  explicit ``audit-repaired`` record that names the break index, hashes
  the quarantined region, and re-anchors the chain on the last good
  digest.  Verification understands repair records: a repaired chain
  verifies end-to-end, and the repair itself is part of the permanent
  record — an operator can always see that (and where) history was lost.

This is the service-level counterpart of the paper's vetting story: the
*protocol* guarantees come from attestation and signatures, but an
operator still wants an inspectable record of what the service did with
whose data and when.  Entries never contain contribution values — only
ids, counts, and outcomes.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.service.storage import StorageBackend, encode_value

GENESIS = "0" * 64

EVENT_REPAIR = "audit-repaired"

_ANCHOR_SPACE = "audit-meta"


def _canonical(body: Any) -> str:
    return json.dumps(encode_value(body), sort_keys=True, separators=(",", ":"))


def _entry_digest(prev: str, body: dict) -> str:
    return hashlib.sha256((prev + _canonical(body)).encode("utf-8")).hexdigest()


def _region_digest(entries: list[dict]) -> str:
    """One digest over a quarantined run of (untrusted) raw entries."""
    return hashlib.sha256(_canonical(entries).encode("utf-8")).hexdigest()


def _body_of(entry: dict) -> dict:
    return {k: v for k, v in entry.items() if k not in ("prev", "digest")}


class AuditLog:
    """Append-only, hash-chained event log over a storage backend."""

    def __init__(self, backend: StorageBackend, log: str = "audit") -> None:
        self._backend = backend
        self._log = log
        entries = backend.read_log(log)
        self._length = len(entries)
        # The newest entry carrying a digest is the working head; a torn
        # tail record (no digest at all) must not brick the log — it is
        # verify_and_repair's job to quarantine it, not __init__'s to die.
        self._head = GENESIS
        for entry in reversed(entries):
            digest = entry.get("digest") if isinstance(entry, dict) else None
            if isinstance(digest, str):
                self._head = digest
                break

    # ------------------------------------------------------------- recording

    def _anchor(self) -> None:
        self._backend.put(
            _ANCHOR_SPACE,
            self._log,
            {"length": self._length, "head": self._head},
        )

    def record(self, event: str, **fields: Any) -> dict:
        """Append one event; returns the stored entry (with its digest)."""
        body = {"seq": self._length, "event": event}
        for key in sorted(fields):
            value = fields[key]
            if value is not None:
                body[key] = value
        digest = _entry_digest(self._head, body)
        entry = dict(body)
        entry["prev"] = self._head
        entry["digest"] = digest
        self._backend.append(self._log, entry)
        self._head = digest
        self._length += 1
        self._anchor()
        return entry

    def entries(self) -> list[dict]:
        return self._backend.read_log(self._log)

    def trail(
        self,
        round_id: int | None = None,
        tenant: str | None = None,
        event: str | None = None,
    ) -> list[dict]:
        """Entries filtered by round id, tenant, and/or event kind."""
        selected = []
        for entry in self.entries():
            if round_id is not None and entry.get("round_id") != round_id:
                continue
            if tenant is not None and entry.get("tenant") != tenant:
                continue
            if event is not None and entry.get("event") != event:
                continue
            selected.append(entry)
        return selected

    # ----------------------------------------------------------- verification

    def _find_repair(
        self, entries: list[dict], break_index: int, prev: str
    ) -> int | None:
        """Index of a valid repair record re-anchoring a break, if any."""
        for j in range(break_index + 1, len(entries)):
            candidate = entries[j]
            if not isinstance(candidate, dict):
                continue
            if candidate.get("event") != EVENT_REPAIR:
                continue
            body = _body_of(candidate)
            if candidate.get("prev") != prev:
                continue
            if body.get("break_index") != break_index:
                continue
            if candidate.get("digest") != _entry_digest(prev, body):
                continue
            if body.get("region_digest") != _region_digest(
                entries[break_index:j]
            ):
                continue
            return j
        return None

    def _survey(self) -> dict:
        """Walk the whole chain once; never raises.

        Returns a state dict: ``ok`` (chain trustworthy end-to-end),
        ``verified`` (entries whose digests check out, repair records
        included), ``quarantined`` (entries sitting under a repair
        record), ``breaks`` (unrepaired break, as ``(index, reason)``, at
        most one — walking past an unrepaired break proves nothing),
        ``truncated_by`` (entries the anchor says are missing from the
        tail), and ``head``/``prefix_head`` for the repair path.
        """
        entries = self.entries()
        anchor = self._backend.get(_ANCHOR_SPACE, self._log)
        prev = GENESIS
        index = 0
        verified = 0
        quarantined = 0
        breaks: list[tuple[int, str]] = []
        while index < len(entries):
            entry = entries[index]
            body = _body_of(entry) if isinstance(entry, dict) else {}
            if (
                isinstance(entry, dict)
                and entry.get("prev") == prev
                and entry.get("digest") == _entry_digest(prev, body)
            ):
                prev = entry["digest"]
                verified += 1
                index += 1
                continue
            reason = (
                "broken chain link"
                if not isinstance(entry, dict) or entry.get("prev") != prev
                else "digest mismatch"
            )
            repair_at = self._find_repair(entries, index, prev)
            if repair_at is None:
                breaks.append((index, reason))
                break
            quarantined += repair_at - index
            prev = entries[repair_at]["digest"]
            verified += 1  # the repair record itself is a trusted entry
            index = repair_at + 1
        truncated_by = 0
        anchored_head_mismatch = False
        if not breaks and isinstance(anchor, dict):
            expected_length = int(anchor.get("length", 0))
            if len(entries) < expected_length:
                truncated_by = expected_length - len(entries)
            elif (
                len(entries) == expected_length
                and entries
                and anchor.get("head") not in (None, prev)
            ):
                anchored_head_mismatch = True
        return {
            "ok": not breaks and not truncated_by and not anchored_head_mismatch,
            "entries": len(entries),
            "verified": verified,
            "quarantined": quarantined,
            "breaks": breaks,
            "truncated_by": truncated_by,
            "anchored_head_mismatch": anchored_head_mismatch,
            "prefix_head": prev,
        }

    def verify_chain(self) -> int:
        """Verify the whole chain; returns the trusted entry count.

        Raises :class:`ValueError` on any unrepaired break, on anchored
        tail truncation, and on a wholesale chain rewrite (every digest
        internally consistent but the head disagreeing with the anchor).
        A chain carrying valid repair records verifies: the quarantined
        regions are untrusted by construction, and the repair records
        vouching for them are part of the chain.
        """
        state = self._survey()
        if state["breaks"]:
            index, reason = state["breaks"][0]
            raise ValueError(f"audit entry {index}: {reason}")
        if state["truncated_by"]:
            raise ValueError(
                f"audit log truncated: anchor expects "
                f"{state['truncated_by']} more entries"
            )
        if state["anchored_head_mismatch"]:
            raise ValueError("audit head disagrees with its anchor")
        return state["verified"]

    # ---------------------------------------------------------------- repair

    def verify_and_repair(self) -> dict:
        """Detect chain breaks/truncation; re-anchor with a repair record.

        Returns a report::

            {"ok": bool,          # chain verifies *now* (possibly post-repair)
             "repaired": bool,    # a repair record was appended by this call
             "break_index": int | None,
             "quarantined": int,  # entries newly quarantined by this repair
             "truncated_by": int} # missing tail entries noted by this repair

        Idempotent: a healthy (or already-repaired) chain returns
        ``ok=True, repaired=False`` and appends nothing.
        """
        state = self._survey()
        if state["ok"]:
            # Trust the surveyed head going forward — after recovery the
            # in-memory head may legitimately trail the persisted chain.
            self._head = state["prefix_head"]
            self._length = state["entries"]
            self._anchor()
            return {
                "ok": True,
                "repaired": False,
                "break_index": None,
                "quarantined": 0,
                "truncated_by": 0,
            }
        entries = self.entries()
        break_index: int | None = None
        quarantined = 0
        body: dict[str, Any] = {
            "seq": state["verified"],
            "event": EVENT_REPAIR,
        }
        if state["breaks"]:
            break_index, reason = state["breaks"][0]
            # Everything from the break onward chains off untrusted state;
            # quarantine the whole suffix under one region digest.  The
            # survey stopped exactly at the break, so its prefix head is
            # the digest of the last trusted entry.
            quarantined = len(entries) - break_index
            prefix_prev = state["prefix_head"]
            body.update(
                break_index=break_index,
                reason=reason,
                quarantined=quarantined,
                region_digest=_region_digest(entries[break_index:]),
            )
        else:
            # Clean links but the anchor disagrees: tail truncation or a
            # wholesale rewrite.  Re-anchor on what actually survives.
            prefix_prev = state["prefix_head"]
            body.update(
                break_index=len(entries),
                reason=(
                    "tail truncation"
                    if state["truncated_by"]
                    else "anchored head mismatch"
                ),
                quarantined=0,
                region_digest=_region_digest([]),
                truncated_by=state["truncated_by"],
            )
        digest = _entry_digest(prefix_prev, body)
        entry = dict(body)
        entry["prev"] = prefix_prev
        entry["digest"] = digest
        self._backend.append(self._log, entry)
        self._head = digest
        self._length = len(entries) + 1
        self._anchor()
        verified_now = self._survey()
        return {
            "ok": bool(verified_now["ok"]),
            "repaired": True,
            "break_index": break_index,
            "quarantined": quarantined,
            "truncated_by": int(state["truncated_by"]),
        }
