"""The kill-and-restart self-healing harness for :class:`GlimmerService`.

One *schedule* is a complete adversarial biography of a service process:
a sampled :func:`~repro.faults.service_plan.sample_service_plan` decides
which storage writes lie (transient I/O errors, torn records, writes
lost after their ack, corrupted audit entries) and at which lifecycle
stage the process is hard-killed.  :func:`run_service_schedule` then
plays the operator: it boots the service over faulty storage, submits a
workload, and every time the process "dies" (:class:`ServiceKilledError`)
or storage gives out (:class:`StorageUnavailableError` after retries and
breaker), it restarts the service **from persisted state only** —
``GlimmerService.recover`` + ``resume`` — and keeps going until the
workload drains.

The invariant proved at the end of every schedule is *exact-or-
recovered*:

* every acknowledged submission is applied **exactly once** — it is
  either ``applied`` in the queue or named by exactly one finalized
  journaled round (when storage tore its queue record, the journal is
  the surviving witness);
* no submission appears in two finalized rounds (no double-count);
* every finalized round's recorded aggregate equals, bit for bit, the
  codec-exact mean over its journaled contribution values — a recovered
  round is indistinguishable from one that never crashed;
* the audit chain verifies end-to-end, possibly through explicit
  ``audit-repaired`` records for the history the storage destroyed.

Everything is deterministic: the same ``(seed, index, fault_rate)``
against fresh state replays the same fault firings, the same kills, the
same restarts, and the same aggregates — :func:`run_service_schedule`
returns a ``signature`` tuple the replay test compares directly.

The fault storm is bounded: after ``storm_limit`` incidents the harness
declares the weather cleared and reboots over pristine storage (faults
off), modeling an outage that eventually ends.  Self-healing must
converge once the environment does.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.crypto.drbg import HmacDrbg
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    ReproError,
    RoundAbortedError,
    ServiceKilledError,
    StorageError,
    StorageUnavailableError,
)
from repro.faults.injector import FaultInjector
from repro.faults.service_plan import sample_service_plan
from repro.faults.storage import FaultyStorageBackend
from repro.service.audit import EVENT_REPAIR, AuditLog
from repro.service.journal import (
    STATUS_FINALIZED,
    STATUS_OPENED,
    RoundJournal,
)
from repro.service.queue import (
    STATE_APPLIED,
    STATE_ASSIGNED,
    STATE_DEFERRED,
    STATE_PENDING,
)
from repro.service.service import GlimmerService

#: Exceptions that mean "the process is dead; restart from disk".
RESTARTABLE = (ServiceKilledError, StorageError)


def _journal_rounds(journal: RoundJournal) -> tuple[dict, set]:
    """(first opened entry per round id, ids of finalized rounds)."""
    opened: dict[int, dict] = {}
    finalized: set[int] = set()
    for entry in journal.entries():
        if not isinstance(entry, dict):
            continue
        round_id = entry.get("round_id")
        if not isinstance(round_id, int):
            continue
        if entry.get("status") == STATUS_OPENED:
            opened.setdefault(round_id, entry)
        elif entry.get("status") == STATUS_FINALIZED:
            finalized.add(round_id)
    return opened, finalized


def _finalized_sids(journal: RoundJournal) -> dict[str, int]:
    """submission id -> how many distinct finalized rounds name it."""
    opened, finalized = _journal_rounds(journal)
    counts: dict[str, int] = {}
    for round_id in finalized:
        entry = opened.get(round_id)
        if entry is None:
            continue
        for sid in entry.get("submission_ids", ()):
            counts[sid] = counts.get(sid, 0) + 1
    return counts


def expected_aggregate(codec, values_by_user: dict) -> list[float]:
    """The codec-exact mean a finalized round must reproduce bit-for-bit."""
    users = sorted(values_by_user)
    encoded = [codec.encode(list(values_by_user[u])) for u in users]
    mean = codec.decode(codec.sum_vectors(encoded)) / len(encoded)
    return [float(v) for v in mean]


def run_service_schedule(
    backend_factory: Callable[[], Any],
    *,
    seed: bytes,
    index: int,
    fault_rate: float,
    codec=None,
    tenant: str = "alpha",
    num_users: int = 3,
    sentences_per_user: int = 3,
    max_features: int | None = 8,
    queue_capacity: int = 8,
    waves: int = 1,
    storm_limit: int = 40,
    max_steps: int = 160,
) -> dict:
    """Run one full chaos schedule to convergence; returns its report.

    ``backend_factory`` must return a handle over the *same* persistent
    state on every call — it models reopening the database after the
    process died.  Raises :class:`ReproError` if the schedule fails to
    converge, :class:`AssertionError` if any invariant is violated.
    """
    plan = sample_service_plan(
        HmacDrbg(seed, personalization=f"service-plan-{index}"),
        fault_rate,
        label=f"{seed.decode('utf-8', 'replace')}#{index}",
    )
    injector = FaultInjector(plan, seed=seed + b":%d" % index)
    service_kwargs = dict(
        num_users=num_users,
        sentences_per_user=sentences_per_user,
        max_features=max_features,
        queue_capacity=queue_capacity,
    )

    calm = False  # once True, the fault storm has passed
    service: GlimmerService | None = None
    incidents: list[tuple[str, str]] = []
    acked: list[str] = []
    restarts = -1  # the first boot is not a restart
    rounds_recovered = 0
    rounds_aborted = 0
    recovery_time = 0.0  # wall seconds spent in boot+resume (telemetry)
    steps = 0

    def _backend():
        inner = backend_factory()
        return inner if calm else FaultyStorageBackend(inner, injector)

    def _boot() -> GlimmerService:
        nonlocal rounds_recovered, rounds_aborted
        try:
            svc = GlimmerService.recover(_backend(), **service_kwargs)
        except ConfigurationError:
            svc = GlimmerService(_backend(), **service_kwargs)
        if not calm:
            svc.attach_chaos(injector)
        if tenant not in svc.tenants:
            svc.add_tenant(tenant)
        while True:
            try:
                rounds_recovered += len(svc.resume_sync())
                break
            except RoundAbortedError:
                rounds_aborted += 1
        return svc

    def _guard(op: Callable[[GlimmerService], Any]) -> Any:
        """Run one step; on a restartable incident, reboot and retry."""
        nonlocal service, restarts, calm, steps, recovery_time
        while True:
            steps += 1
            if steps > max_steps:
                raise ReproError(
                    f"schedule {plan.label} did not converge in "
                    f"{max_steps} steps ({len(incidents)} incidents)"
                )
            try:
                if service is None:
                    started = time.monotonic()
                    service = _boot()
                    recovery_time += time.monotonic() - started
                    restarts += 1
                return op(service)
            except RESTARTABLE as exc:
                incidents.append((type(exc).__name__, str(exc)))
                if len(incidents) >= storm_limit:
                    calm = True
                # A killed process never gets a graceful close; storage
                # commits per mutation, so nothing acked is waiting on a
                # flush.  Just drop the instance and reboot from state.
                service = None

    def _submit(user: str) -> Callable[[GlimmerService], str | None]:
        def op(svc: GlimmerService) -> str | None:
            try:
                return svc.submit_honest(tenant, user)
            except AdmissionError:
                svc.run_pending_sync()  # backpressure: drain, then retry
                return None
            except ConfigurationError:
                # The admission read-back found the entry missing: the
                # write was not durable and the client was *not* acked.
                return None

        return op

    def _drained(svc: GlimmerService) -> bool:
        if svc.journal.unfinished():
            return False
        queue = svc.tenant(tenant).queue
        if queue.count(STATE_PENDING, STATE_ASSIGNED, STATE_DEFERRED):
            return False
        finalized = _finalized_sids(svc.journal)
        for sid in acked:
            entry = queue.entry_or_none(sid)
            if entry is not None:
                if entry["state"] != STATE_APPLIED:
                    return False
            elif finalized.get(sid, 0) != 1:
                # Storage destroyed the queue record; the journal must
                # vouch for the submission instead.
                return False
        return True

    users = _guard(
        lambda svc: sorted(svc.tenant(tenant).deployment.clients)
    )
    for _ in range(waves):
        for user in users:
            sid = None
            while sid is None:
                sid = _guard(_submit(user))
            acked.append(sid)

        def _drain_step(svc: GlimmerService) -> list:
            if svc.degraded and not svc.probe_degraded():
                # The bulkhead is holding but the storage behind it has
                # not come back; a process restart (fresh breaker, clean
                # degraded registry) is the operator's next move.
                raise StorageUnavailableError(
                    f"degraded tenants not recovering: "
                    f"{sorted(svc.degraded)}"
                )
            return svc.run_pending_sync()

        while not _guard(_drained):
            if not _guard(_drain_step):
                # No pending work moved, yet the persisted state is not
                # reconciled — e.g. a finalize record was lost after its
                # ack, which only recover+resume can settle.  Bounce the
                # process; self-healing lives on the restart path.
                service = None

    # ------------------------------------------------------------ invariants
    raw = backend_factory()
    journal = RoundJournal(raw)
    opened, finalized = _journal_rounds(journal)
    counts = _finalized_sids(journal)
    doubled = sorted(sid for sid, n in counts.items() if n > 1)
    assert not doubled, (
        f"{plan.label}: submissions double-counted across finalized "
        f"rounds: {doubled}"
    )
    for sid in acked:
        entry = raw.get(f"queue/{tenant}", sid)
        if isinstance(entry, dict) and "state" in entry:
            assert entry["state"] == STATE_APPLIED, (
                f"{plan.label}: acked submission {sid} ended "
                f"{entry['state']!r}, not applied"
            )
        else:
            assert counts.get(sid, 0) == 1, (
                f"{plan.label}: acked submission {sid} lost by storage "
                f"and not vouched for by any finalized round"
            )

    aggregates: list[tuple[int, tuple[float, ...]]] = []
    for round_id in sorted(finalized):
        entry = opened.get(round_id)
        if entry is None or "values_by_user" not in entry:
            continue
        recorded = None
        for record in journal.entries():
            if (
                isinstance(record, dict)
                and record.get("round_id") == round_id
                and record.get("status") == STATUS_FINALIZED
                and "aggregate" in record
            ):
                recorded = record["aggregate"]
        if recorded is None:
            continue  # settled round whose original aggregate record was lost
        aggregates.append((round_id, tuple(float(v) for v in recorded)))
        if codec is not None:
            truth = expected_aggregate(codec, entry["values_by_user"])
            assert [float(v) for v in recorded] == truth, (
                f"{plan.label}: round {round_id} aggregate is not the "
                f"codec-exact mean over its journaled values"
            )

    audit = AuditLog(raw)
    repair = audit.verify_and_repair()
    assert repair["ok"], f"{plan.label}: audit chain unrepairable: {repair}"
    audit.verify_chain()
    repairs = sum(
        1
        for entry in audit.entries()
        if isinstance(entry, dict) and entry.get("event") == EVENT_REPAIR
    )

    rounds_settled = sum(
        1
        for entry in audit.entries()
        if isinstance(entry, dict) and entry.get("event") == "round-settled"
    )
    kills = sum(1 for kind, _ in incidents if kind == "ServiceKilledError")
    return {
        "label": plan.label,
        "fired": injector.fired_log(),
        "incidents": list(incidents),
        "kills": kills,
        "restarts": max(restarts, 0),
        "rounds_recovered": rounds_recovered,
        "rounds_settled": rounds_settled,
        "rounds_aborted": rounds_aborted,
        "rounds_finalized": len(finalized),
        "recovery_time": recovery_time,
        "acked": len(acked),
        "audit_repairs": repairs,
        "calm": calm,
        "steps": steps,
        "signature": (
            injector.fired_log(),
            tuple(aggregates),
            tuple(sorted(counts.items())),
        ),
    }
