"""Asyncio driver over the engine's resumable round generator.

:meth:`~repro.runtime.engine.RoundEngine.round_stages` exposes one round
as a generator of phase-labelled suspension points; :class:`AsyncRoundEngine`
drains it with an ``await asyncio.sleep(0)`` between steps.  That single
await is the whole trick:

* **bit-exact parity** — the phase logic is the very same generator the
  synchronous :meth:`~repro.runtime.engine.RoundEngine.run_round` drains,
  and everything runs on one event-loop thread, so a single round driven
  async produces a :class:`~repro.runtime.telemetry.RoundReport` identical
  to the serial one, field for field;
* **overlap** — ``asyncio.gather`` over several rounds interleaves their
  generators at phase/participant granularity.  Engines sharing nothing
  (different tenants) interleave freely; rounds on *one* engine must not
  overlap (the transport's clock and the monitor's phase tracking are
  engine-global), which :class:`AsyncRoundEngine` enforces with a
  per-engine lock rather than leaving it as a footgun.

:func:`install_async_drive` retrofits a deployment whose tests call
``engine.run_round(...)`` synchronously — the chaos and Byzantine suites
run unchanged against the async engine through it.
"""

from __future__ import annotations

import asyncio
from typing import Any, Iterable, Mapping, Sequence

from repro.runtime.engine import RoundEngine
from repro.runtime.telemetry import RoundReport


class AsyncRoundEngine:
    """Drives a :class:`RoundEngine`'s rounds as awaitable stages."""

    def __init__(self, engine: RoundEngine) -> None:
        self.engine = engine
        self._lock: asyncio.Lock | None = None
        self.stages_driven = 0

    def _engine_lock(self) -> asyncio.Lock:
        # Created lazily so the engine can be built outside any event loop.
        if self._lock is None:
            self._lock = asyncio.Lock()
        return self._lock

    async def run_round(
        self,
        round_id: int,
        participants: Iterable[str],
        values_by_user: Mapping[str, Sequence[float]],
        features: Sequence,
        **kwargs: Any,
    ) -> RoundReport:
        """Run one round cooperatively; same signature as the sync engine.

        Yields to the event loop at every stage boundary the generator
        exposes.  Rounds on the same engine serialize on a lock (engine
        state is per-round-at-a-time); rounds on different engines — the
        multi-tenant case — interleave stage by stage.
        """
        async with self._engine_lock():
            stages = self.engine.round_stages(
                round_id, participants, values_by_user, features, **kwargs
            )
            while True:
                try:
                    next(stages)
                except StopIteration as stop:
                    return stop.value
                self.stages_driven += 1
                await asyncio.sleep(0)

    def run_round_sync(self, *args: Any, **kwargs: Any) -> RoundReport:
        """Drive one round through a private event loop, synchronously.

        This is the compatibility shim that lets every existing harness —
        chaos schedules, Byzantine attack mixes, parity suites — exercise
        the async path without rewriting a line: same call shape, same
        return, same exceptions, but every stage transition went through
        the event loop.
        """
        return asyncio.run(self.run_round(*args, **kwargs))


def install_async_drive(engine: RoundEngine) -> AsyncRoundEngine:
    """Make ``engine.run_round`` drive rounds through the event loop.

    Returns the :class:`AsyncRoundEngine` (whose ``stages_driven`` counter
    lets callers assert the async path actually ran).  The original bound
    method is preserved as ``engine.run_round_serial``.
    """
    driver = AsyncRoundEngine(engine)
    engine.run_round_serial = engine.run_round
    engine.run_round = driver.run_round_sync
    return driver
