"""GlimmerService: multi-tenant, durable, continuously-accepting rounds.

The paper's deployment story is one vetted Glimmer serving *many* cloud
services: vetting amortizes across every service that adopts the same
published binary, and the blinding service is a single shared trusted
party.  :class:`GlimmerService` realizes that shape:

* **tenants** — each tenant is a full :class:`~repro.experiments.common
  .Deployment` (its own cloud service, transport, engine, client fleet)
  built from the *same* base seed, so every tenant's trust universe —
  attestation keys, vendor key, Glimmer image measurement, vetting
  registry, blinder identity — is byte-identical.  That identity is what
  lets one :class:`~repro.core.provisioning.BlinderProvisioner` (the
  first tenant's, with its sealed rounds moved to persistent storage)
  serve every tenant: a tenant client's quote verifies against the shared
  blinder's registry because both were derived from the same seed.
* **global round ids** — the service allocates round ids from a persisted
  counter, so rounds on the shared blinder never collide across tenants.
* **durable intake** — submissions enter per-tenant
  :class:`~repro.service.queue.SubmissionQueue`s with admission control;
  rounds consume queued batches, and every lifecycle step is journaled
  (:class:`~repro.service.journal.RoundJournal`) and audited
  (:class:`~repro.service.audit.AuditLog`).
* **recovery** — a service rebuilt over the same backend
  (``GlimmerService.recover``) reconstructs its tenants deterministically
  from the persisted configs, finishes the bookkeeping of any round that
  crashed after its finalize record, and re-runs — under the original
  round id, over the original submission set — any round that crashed
  mid-flight.  The replayed aggregate is bit-exact (a mean over the same
  values; the sum-zero masks cancel whichever family the fresh blinder
  samples), and the queue's state machine guarantees no submission is
  ever counted twice.
"""

from __future__ import annotations

import asyncio
from typing import Sequence

from repro.errors import (
    AdmissionError,
    ConfigurationError,
    RoundAbortedError,
    ServiceKilledError,
    StorageError,
    StorageFaultError,
    StorageUnavailableError,
)
from repro.experiments.common import Deployment
from repro.faults.plan import ACTION_KILL, SITE_SERVICE_KILL
from repro.runtime.endpoints import BlinderEndpoint
from repro.runtime.messages import BLINDER
from repro.runtime.telemetry import RoundReport
from repro.service.async_engine import AsyncRoundEngine
from repro.service.audit import AuditLog
from repro.service.journal import RoundJournal
from repro.service.queue import (
    OVERFLOW_REJECT,
    STATE_APPLIED,
    SubmissionQueue,
)
from repro.service.resilience import ResilientStorageBackend
from repro.service.storage import SealedBlobMap, StorageBackend

_SERVICE_SPACE = "service"
_TENANT_SPACE = "tenants"


class TenantRuntime:
    """One tenant's deployment plus its service-side plumbing."""

    def __init__(
        self,
        name: str,
        deployment: Deployment,
        queue: SubmissionQueue,
    ) -> None:
        self.name = name
        self.deployment = deployment
        self.queue = queue
        self.driver = AsyncRoundEngine(deployment.engine)

    @property
    def engine(self):
        return self.deployment.engine

    def close(self) -> None:
        self.deployment.engine.close_scale_pool()


class GlimmerService:
    """The long-lived service over a storage backend; see module docstring."""

    def __init__(
        self,
        backend: StorageBackend,
        *,
        base_seed: bytes = b"glimmer-service",
        num_users: int = 6,
        sentences_per_user: int = 6,
        max_features: int | None = 12,
        queue_capacity: int = 16,
        overflow: str = OVERFLOW_REJECT,
        defer_capacity: int | None = None,
        round_deadline: float | None = None,
    ) -> None:
        # Every storage touch goes through the resilience armor: retries
        # for transient faults, a circuit breaker converting persistent
        # failure into fail-fast StorageUnavailableError.  A fresh
        # service instance gets a fresh breaker — exactly what a process
        # restart gives a real deployment.
        if not isinstance(backend, ResilientStorageBackend):
            backend = ResilientStorageBackend(backend)
        self.backend = backend
        self.raw_backend = backend.inner
        self.audit = AuditLog(backend)
        self.journal = RoundJournal(backend)
        self.tenants: dict[str, TenantRuntime] = {}
        self.reports: dict[int, RoundReport] = {}
        self.round_deadline = round_deadline
        #: Tenants quarantined behind their bulkhead: name -> reason.
        self.degraded: dict[str, str] = {}
        self._tenant_backends: dict[str, StorageBackend] = {}
        self._chaos = None
        self._shared_blinder = None
        config = backend.get(_SERVICE_SPACE, "config")
        if not isinstance(config, dict) or "base_seed" not in config:
            # None on first boot; a torn record (the config write died
            # mid-retry) is rewritten from the constructor arguments.
            config = {
                "base_seed": bytes(base_seed),
                "num_users": int(num_users),
                "sentences_per_user": int(sentences_per_user),
                "max_features": max_features,
                "queue_capacity": int(queue_capacity),
                "overflow": overflow,
                "defer_capacity": defer_capacity,
            }
            backend.put(_SERVICE_SPACE, "config", config)
            self.audit.record("service-created", backend=backend.kind)
        self.config = config

    # ------------------------------------------------------------- tenants

    def _build_deployment(self) -> Deployment:
        # Every tenant builds from the same seed on purpose: identical
        # trust anchors are the precondition for sharing one blinder.
        return Deployment.build(
            num_users=int(self.config["num_users"]),
            seed=bytes(self.config["base_seed"]),
            sentences_per_user=int(self.config["sentences_per_user"]),
            max_features=self.config["max_features"],
        )

    def _share_blinder(self, runtime: TenantRuntime) -> None:
        """Point a tenant's engine and bus at the shared blinder."""
        engine = runtime.deployment.engine
        if self._shared_blinder is None:
            self._shared_blinder = runtime.deployment.blinder_provisioner
            self._shared_blinder.attach_sealed_store(
                SealedBlobMap(self.backend, "sealed/blinder")
            )
            return
        engine.blinder_provisioner = self._shared_blinder
        runtime.deployment.blinder_provisioner = self._shared_blinder
        endpoint = BlinderEndpoint(self._shared_blinder, monitor=engine.monitor)
        for kind, handler in endpoint.handlers().items():
            runtime.deployment.network.add_handler(BLINDER, kind, handler)

    def add_tenant(
        self, name: str, *, backend: StorageBackend | None = None
    ) -> TenantRuntime:
        """Stand up a tenant (persisted, so recovery rebuilds it)."""
        if name in self.tenants:
            raise ConfigurationError(f"tenant {name!r} already exists")
        if backend is not None:
            self.set_tenant_backend(name, backend)
        index = len(self.backend.keys(_TENANT_SPACE))
        self.backend.put(_TENANT_SPACE, f"{index:04d}", {"name": name})
        runtime = self._attach_tenant(name)
        self.audit.record("tenant-added", tenant=name)
        return runtime

    def set_tenant_backend(self, name: str, backend: StorageBackend) -> None:
        """Give one tenant its own queue storage (the bulkhead boundary).

        A tenant with a private backend cannot take the others down: its
        storage failing degrades *it* (fail-fast admission, rounds
        skipped) while every tenant on healthy storage proceeds.  The
        backend is armored with its own breaker, so one tenant's retry
        storm never counts against another's failure budget.
        """
        if not isinstance(backend, ResilientStorageBackend):
            backend = ResilientStorageBackend(backend)
        self._tenant_backends[name] = backend
        runtime = self.tenants.get(name)
        if runtime is not None:
            runtime.queue = self._build_queue(name)

    def _queue_backend(self, name: str) -> StorageBackend:
        return self._tenant_backends.get(name, self.backend)

    def _build_queue(self, name: str) -> SubmissionQueue:
        return SubmissionQueue(
            self._queue_backend(name),
            name,
            capacity=int(self.config["queue_capacity"]),
            overflow=self.config["overflow"],
            defer_capacity=self.config["defer_capacity"],
        )

    def _attach_tenant(self, name: str) -> TenantRuntime:
        deployment = self._build_deployment()
        runtime = TenantRuntime(name, deployment, self._build_queue(name))
        self._share_blinder(runtime)
        self.tenants[name] = runtime
        return runtime

    def tenant(self, name: str) -> TenantRuntime:
        runtime = self.tenants.get(name)
        if runtime is None:
            raise ConfigurationError(f"no tenant named {name!r}")
        return runtime

    # ---------------------------------------------------- chaos & bulkheads

    def attach_chaos(self, injector) -> None:
        """Wire a fault injector into the service's hard kill-points."""
        self._chaos = injector

    def _kill_point(self, stage: str, **context) -> None:
        """A place the process is allowed to die.  Under chaos, it does."""
        if self._chaos is None:
            return
        action = self._chaos.fire(SITE_SERVICE_KILL, phase=stage, **context)
        if action == ACTION_KILL:
            raise ServiceKilledError(f"service killed at {stage}")

    def _audit_safe(self, event: str, **fields) -> None:
        """Audit best-effort: telemetry about a failure must not mask it."""
        try:
            self.audit.record(event, **fields)
        except StorageError:
            pass

    def _degrade(self, tenant: str, reason: str) -> None:
        if tenant in self.degraded:
            return
        self.degraded[tenant] = str(reason)
        self._audit_safe("tenant-degraded", tenant=tenant, reason=str(reason))

    def restore_tenant(self, name: str) -> None:
        """Lift a tenant's quarantine (its storage came back)."""
        if self.degraded.pop(name, None) is not None:
            self._audit_safe("tenant-restored", tenant=name)

    def probe_degraded(self) -> list[str]:
        """Probe each degraded tenant's storage; restore the recovered.

        One write-then-read probe per tenant against its own queue
        backend — the half-open pattern at the bulkhead level.
        """
        restored = []
        for name in sorted(self.degraded):
            backend = self._queue_backend(name)
            # Probe the raw storage: the armor's breaker may still be
            # open, and the probe *is* the half-open experiment.
            target = (
                backend.inner
                if isinstance(backend, ResilientStorageBackend)
                else backend
            )
            try:
                probes = int(target.get("bulkhead-probe", name, 0)) + 1
                target.put("bulkhead-probe", name, probes)
                if int(target.get("bulkhead-probe", name, 0)) != probes:
                    continue
            except (StorageError, TypeError, ValueError):
                continue
            if isinstance(backend, ResilientStorageBackend):
                backend.breaker.record_success()
            self.restore_tenant(name)
            restored.append(name)
        return restored

    @property
    def shared_blinder(self):
        return self._shared_blinder

    # ------------------------------------------------------------ lifecycle

    def __enter__(self) -> "GlimmerService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        for runtime in self.tenants.values():
            runtime.close()
        try:
            self.backend.flush()
        except StorageError:
            pass

    # -------------------------------------------------------------- intake

    def submit(self, tenant: str, user_id: str, values: Sequence[float]) -> str:
        """Admit one client submission into a tenant's durable queue."""
        runtime = self.tenant(tenant)
        if tenant in self.degraded:
            raise StorageUnavailableError(
                f"tenant {tenant!r} is degraded "
                f"({self.degraded[tenant]}); failing fast"
            )
        if user_id not in runtime.deployment.clients:
            raise ConfigurationError(
                f"tenant {tenant!r} has no client {user_id!r}"
            )
        try:
            submission_id = runtime.queue.submit(user_id, values)
        except AdmissionError as exc:
            self.audit.record(
                "submission-rejected", tenant=tenant, user=user_id,
                reason=str(exc),
            )
            raise
        except StorageUnavailableError as exc:
            self._degrade(tenant, f"queue storage unavailable: {exc}")
            raise
        state = runtime.queue.state_of(submission_id)
        self.audit.record(
            "submission-admitted",
            tenant=tenant,
            user=user_id,
            submission=submission_id,
            state=state,
        )
        self._kill_point("post-submit", target=tenant)
        return submission_id

    def submit_honest(self, tenant: str, user_id: str) -> str:
        """Enqueue the user's honestly-trained contribution vector."""
        runtime = self.tenant(tenant)
        vector = runtime.deployment.local_vectors([user_id])[user_id]
        return self.submit(tenant, user_id, [float(v) for v in vector])

    # -------------------------------------------------------------- rounds

    def _allocate_round_id(self) -> int:
        raw = self.backend.get(_SERVICE_SPACE, "next-round", 1)
        next_id = raw if isinstance(raw, int) else 1
        # The journal is the authority: a torn or rolled-back counter
        # must never hand out a round id the journal has already seen —
        # colliding ids would tangle recovery across tenants.
        used = [
            entry["round_id"]
            for entry in self.journal.entries()
            if isinstance(entry, dict)
            and isinstance(entry.get("round_id"), int)
        ]
        if used:
            next_id = max(next_id, max(used) + 1)
        self.backend.put(_SERVICE_SPACE, "next-round", next_id + 1)
        persisted = self.backend.get(_SERVICE_SPACE, "next-round", 0)
        if persisted != next_id + 1:
            raise StorageFaultError(
                f"round-id counter write not durable "
                f"(wrote {next_id + 1}, read {persisted})"
            )
        return next_id

    async def run_round(
        self, tenant: str, *, limit: int | None = None
    ) -> RoundReport | None:
        """Drain one batch from a tenant's queue through one async round.

        Returns ``None`` when the queue has nothing pending.  The round
        is journaled before the first protocol message and closed in the
        journal before the queue marks its submissions applied, so a
        crash at any point is recoverable without double-counting.
        """
        runtime = self.tenant(tenant)
        if tenant in self.degraded:
            return None
        try:
            batch = runtime.queue.take(limit)
        except StorageUnavailableError as exc:
            self._degrade(tenant, f"queue storage unavailable: {exc}")
            raise
        if not batch:
            return None
        self._kill_point("post-take", target=tenant)
        round_id = self._allocate_round_id()
        participants = [entry["user_id"] for entry in batch]
        submission_ids = [entry["submission_id"] for entry in batch]
        values_by_user = {
            entry["user_id"]: list(entry["values"]) for entry in batch
        }
        self.journal.round_opened(
            round_id, tenant, participants, submission_ids, values_by_user
        )
        self._kill_point("post-journal-open", target=tenant, round_id=round_id)
        try:
            runtime.queue.mark_assigned(submission_ids, round_id)
        except StorageUnavailableError as exc:
            self._degrade(tenant, f"queue storage unavailable: {exc}")
            raise
        self.audit.record(
            "round-opened",
            tenant=tenant,
            round_id=round_id,
            participants=len(participants),
            submissions=submission_ids,
        )
        self._kill_point("post-assign", target=tenant, round_id=round_id)
        return await self._drive_round(
            runtime, round_id, participants, values_by_user, submission_ids
        )

    async def _drive_round(
        self,
        runtime: TenantRuntime,
        round_id: int,
        participants: list[str],
        values_by_user: dict[str, list[float]],
        submission_ids: list[str],
    ) -> RoundReport:
        try:
            drive = runtime.driver.run_round(
                round_id,
                participants,
                values_by_user,
                runtime.deployment.features.bigrams,
            )
            if self.round_deadline is not None:
                report = await asyncio.wait_for(
                    drive, timeout=self.round_deadline
                )
            else:
                report = await drive
        except asyncio.TimeoutError:
            # The watchdog path: a wedged round is aborted with full
            # telemetry instead of hanging the service forever.
            reason = (
                f"watchdog: round exceeded its "
                f"{self.round_deadline}s deadline"
            )
            self.journal.round_aborted(round_id, reason)
            requeued = runtime.queue.requeue_round(round_id)
            self._audit_safe(
                "round-watchdog-abort",
                tenant=runtime.name,
                round_id=round_id,
                deadline=self.round_deadline,
                requeued=requeued,
            )
            runtime.engine.abandon_round(round_id)
            raise RoundAbortedError(f"round {round_id}: {reason}") from None
        except RoundAbortedError as exc:
            self.journal.round_aborted(round_id, str(exc))
            requeued = runtime.queue.requeue_round(round_id)
            self.audit.record(
                "round-aborted",
                tenant=runtime.name,
                round_id=round_id,
                reason=str(exc),
                requeued=requeued,
            )
            runtime.engine.abandon_round(round_id)
            raise
        self._kill_point(
            "post-drive", target=runtime.name, round_id=round_id
        )
        self.journal.round_finalized(
            round_id, [float(v) for v in report.aggregate]
        )
        self._kill_point(
            "post-finalize-journal", target=runtime.name, round_id=round_id
        )
        # missing_ok: on the recovery path a submission's queue record may
        # have been lost by storage; the journal already carries its
        # values, so the replay must not die on the missing entry.
        runtime.queue.mark_applied(submission_ids, missing_ok=True)
        self._kill_point(
            "post-apply", target=runtime.name, round_id=round_id
        )
        self.audit.record(
            "round-finalized",
            tenant=runtime.name,
            round_id=round_id,
            contributions=report.num_contributions,
            repaired=report.masks_repaired,
        )
        self.reports[round_id] = report
        return report

    async def run_pending(self, *, limit: int | None = None) -> list[RoundReport]:
        """One concurrent round per tenant with pending work.

        Rounds interleave stage-by-stage on the event loop — this is the
        overlap path.  Aborted rounds surface in the audit log and
        journal but do not fail the batch.
        """

        async def _one(name: str) -> RoundReport | None:
            try:
                return await self.run_round(name, limit=limit)
            except RoundAbortedError:
                return None
            except StorageUnavailableError:
                # The tenant was degraded on the way out; its bulkhead
                # keeps the failure from touching the other tenants.
                return None

        names = [name for name in self.tenants if name not in self.degraded]
        results = await asyncio.gather(*(_one(name) for name in names))
        return [report for report in results if report is not None]

    def run_pending_sync(self, *, limit: int | None = None) -> list[RoundReport]:
        return asyncio.run(self.run_pending(limit=limit))

    # ------------------------------------------------------------- recovery

    @classmethod
    def recover(
        cls, backend: StorageBackend, **kwargs
    ) -> "GlimmerService":
        """Rebuild a service over an existing backend's persisted state."""
        config = backend.get(_SERVICE_SPACE, "config")
        if config is None:
            raise ConfigurationError(
                "backend holds no service config; nothing to recover"
            )
        service = cls(backend, **kwargs)
        # Heal the audit chain *before* recording anything on top of it:
        # a crash may have left a torn tail, and every digest appended
        # over an unrepaired break would itself be untrustworthy.
        repair = service.audit.verify_and_repair()
        for key in backend.keys(_TENANT_SPACE):
            record = backend.get(_TENANT_SPACE, key)
            # A torn tenant record was never acknowledged; skip it.
            if not isinstance(record, dict) or "name" not in record:
                continue
            if record["name"] not in service.tenants:
                service._attach_tenant(record["name"])
        service.audit.record(
            "service-recovered",
            tenants=sorted(service.tenants),
            unfinished=[e["round_id"] for e in service.journal.unfinished()],
            audit_repaired=repair["repaired"] or None,
        )
        return service

    async def resume(self) -> list[RoundReport]:
        """Finish every round the previous process left open.

        Two cases, both driven by persisted state only:

        * journal says *finalized* but some of the round's submissions
          are still ``assigned`` (crash between the journal write and the
          queue update): complete the bookkeeping, no re-run;
        * journal says *opened* with no close: re-run the round under its
          original id over its journaled submission set, then close it.
        """
        completed: list[RoundReport] = []
        for runtime in self.tenants.values():
            for entry in runtime.queue.assigned():
                round_id = entry["round_id"]
                status = (
                    self.journal.status_of(round_id)
                    if round_id is not None
                    else None
                )
                if status == "finalized":
                    runtime.queue.mark_applied(
                        [entry["submission_id"]], missing_ok=True
                    )
                    self.audit.record(
                        "submission-settled",
                        tenant=runtime.name,
                        round_id=round_id,
                        submission=entry["submission_id"],
                    )
                elif status in (None, "aborted") and round_id is not None:
                    # Assigned to a round the journal never opened (the
                    # open record was lost) or one it aborted without
                    # managing to requeue: the round will never close, so
                    # hand the submissions back to pending.
                    requeued = runtime.queue.requeue_round(round_id)
                    if requeued:
                        self.audit.record(
                            "submission-requeued",
                            tenant=runtime.name,
                            round_id=round_id,
                            submissions=requeued,
                        )
        replay: list[dict] = []
        for entry in self.journal.unfinished():
            runtime = self.tenant(entry["tenant"])
            round_id = int(entry["round_id"])
            submission_ids = list(entry["submission_ids"])
            states = [
                runtime.queue.entry_or_none(sid) for sid in submission_ids
            ]
            if any(
                state is not None and state["state"] == STATE_APPLIED
                for state in states
            ):
                # mark_applied only ever runs after the finalize record
                # was written, so an applied submission proves the round
                # completed and storage lost the finalize ack.  Settle
                # the bookkeeping; re-running would double-count.
                self.journal.round_finalized(round_id)
                runtime.queue.mark_applied(submission_ids, missing_ok=True)
                self.audit.record(
                    "round-settled",
                    tenant=runtime.name,
                    round_id=round_id,
                    submissions=submission_ids,
                )
                continue
            # Re-pin the journaled submission set before replay: a lost
            # mark_assigned write leaves entries pending, where a
            # concurrent take() could pull them into a second round.
            runtime.queue.mark_assigned(
                submission_ids, round_id, missing_ok=True
            )
            replay.append(entry)
        for entry in replay:
            tenant = entry["tenant"]
            runtime = self.tenant(tenant)
            round_id = int(entry["round_id"])
            participants = list(entry["participants"])
            submission_ids = list(entry["submission_ids"])
            values_by_user = {
                user: list(values)
                for user, values in entry.get("values_by_user", {}).items()
            }
            self.audit.record(
                "round-replayed", tenant=tenant, round_id=round_id
            )
            report = await self._drive_round(
                runtime, round_id, participants, values_by_user, submission_ids
            )
            completed.append(report)
        return completed

    def resume_sync(self) -> list[RoundReport]:
        return asyncio.run(self.resume())
