"""The durable submission queue: admission control and backpressure.

Clients do not talk to rounds; they talk to this queue.  Each tenant has
one, bounded at ``capacity`` live submissions.  Past the bound the
overflow policy decides:

* ``reject`` — :class:`~repro.errors.AdmissionError` immediately; the
  client is told to back off;
* ``defer`` — the submission parks in a secondary buffer (bounded by
  ``defer_capacity``) and is promoted to pending as round assignment
  drains the main queue; only a full deferred buffer rejects.

Every submission is persisted the moment it is admitted and walks a
one-way state machine::

    pending -> assigned -> applied
       ^          |
       |          v  (round aborted)
       +------ pending            deferred -> pending (promotion)
                                  any      -> rejected (terminal)

State transitions are individually persisted, which is what makes the
queue the double-submission guard: recovery re-runs a crashed round over
exactly the submissions ``assigned`` to its round id, and an ``applied``
submission can never re-enter a round.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import AdmissionError, ConfigurationError, StorageFaultError
from repro.service.storage import StorageBackend

STATE_PENDING = "pending"
STATE_DEFERRED = "deferred"
STATE_ASSIGNED = "assigned"
STATE_APPLIED = "applied"
STATE_REJECTED = "rejected"

OVERFLOW_REJECT = "reject"
OVERFLOW_DEFER = "defer"

#: States that count against ``capacity`` (live, not yet resolved).
_LIVE_STATES = (STATE_PENDING, STATE_ASSIGNED)


class SubmissionQueue:
    """One tenant's durable, bounded intake queue."""

    def __init__(
        self,
        backend: StorageBackend,
        tenant: str,
        *,
        capacity: int = 64,
        overflow: str = OVERFLOW_REJECT,
        defer_capacity: int | None = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError("queue capacity must be >= 1")
        if overflow not in (OVERFLOW_REJECT, OVERFLOW_DEFER):
            raise ConfigurationError(f"unknown overflow policy {overflow!r}")
        self._backend = backend
        self.tenant = tenant
        self.capacity = int(capacity)
        self.overflow = overflow
        self.defer_capacity = (
            int(defer_capacity) if defer_capacity is not None else self.capacity
        )
        self._space = f"queue/{tenant}"
        self._meta_space = f"queue-meta/{tenant}"
        # State index: submission id -> persisted state, plus the inverse
        # buckets.  Built by ONE storage scan on first use, then kept in
        # lockstep with storage by a read-back after every put, so hot
        # paths (submit/take/promote/depth) touch only the buckets they
        # need — cost bounded by the live population, not the applied
        # history.  Storage stays the source of truth: the read-back
        # indexes whatever the backend actually persisted, which keeps
        # the index exact under torn, lost-after-ack, and corrupting
        # writes.
        self._state_by_id: dict[str, str] | None = None
        self._ids_by_state: dict[str, set[str]] = {}

    # ------------------------------------------------------------- internals

    def _next_id(self) -> str:
        raw = self._backend.get(self._meta_space, "next", 0)
        # A torn write can leave garbage where the counter lived; restart
        # from zero but *never* reuse an id a live entry already holds.
        counter = raw if isinstance(raw, int) else 0
        while (
            self._backend.get(self._space, f"{self.tenant}-s{counter:06d}")
            is not None
        ):
            counter += 1
        self._backend.put(self._meta_space, "next", counter + 1)
        # Read-back verification: storage that *acks* the counter write but
        # never persists it would hand the same id to the next submission,
        # silently overwriting this one.  Detecting the lie here turns a
        # lost submission into a clean, retryable admission failure.
        persisted = int(self._backend.get(self._meta_space, "next", 0))
        if persisted != counter + 1:
            raise StorageFaultError(
                f"admission counter write not durable for tenant "
                f"{self.tenant!r} (wrote {counter + 1}, read {persisted})"
            )
        return f"{self.tenant}-s{counter:06d}"

    def _entry(self, submission_id: str) -> dict:
        entry = self.entry_or_none(submission_id)
        if entry is None:
            raise ConfigurationError(
                f"unknown submission {submission_id!r} for tenant {self.tenant!r}"
            )
        return entry

    def entry_or_none(self, submission_id: str) -> dict | None:
        """The persisted entry, or None when storage lost (or tore) it."""
        entry = self._backend.get(self._space, submission_id)
        if not isinstance(entry, dict) or "state" not in entry:
            return None
        return entry

    def _store(self, entry: dict) -> None:
        submission_id = entry["submission_id"]
        try:
            self._backend.put(self._space, submission_id, entry)
        finally:
            # Index what storage actually holds, even when the put tore
            # (garbage record) or raised: the index may only ever mirror
            # persisted truth, never the write we *intended*.
            self._reindex(submission_id)

    def _ensure_index(self) -> None:
        if self._state_by_id is not None:
            return
        state_by_id: dict[str, str] = {}
        buckets: dict[str, set[str]] = {}
        for key, entry in self._backend.items(self._space):
            # Torn writes leave marker records with no state machine
            # fields; they were never acknowledged, so the queue skips
            # them.
            if isinstance(entry, dict) and "state" in entry:
                state_by_id[key] = entry["state"]
                buckets.setdefault(entry["state"], set()).add(key)
        self._state_by_id = state_by_id
        self._ids_by_state = buckets

    def _reindex(self, submission_id: str) -> None:
        if self._state_by_id is None:
            return
        entry = self._backend.get(self._space, submission_id)
        state = (
            entry["state"]
            if isinstance(entry, dict) and "state" in entry
            else None
        )
        old = self._state_by_id.get(submission_id)
        if old == state:
            return
        if old is not None:
            self._ids_by_state.get(old, set()).discard(submission_id)
        if state is None:
            self._state_by_id.pop(submission_id, None)
        else:
            self._state_by_id[submission_id] = state
            self._ids_by_state.setdefault(state, set()).add(submission_id)

    def _ids_in(self, *states: str) -> list[str]:
        """Ids currently in ``states``, in admission order.

        Ids embed the admission counter, so the (length, lexicographic)
        sort reproduces the order a full storage scan would yield.
        """
        self._ensure_index()
        ids = [
            submission_id
            for state in dict.fromkeys(states)
            for submission_id in self._ids_by_state.get(state, ())
        ]
        ids.sort(key=lambda submission_id: (len(submission_id), submission_id))
        return ids

    def _entries_in(self, *states: str) -> list[dict]:
        """Persisted entries in ``states``; re-read so storage stays truth."""
        entries = []
        for submission_id in self._ids_in(*states):
            entry = self.entry_or_none(submission_id)
            if entry is not None and entry["state"] in states:
                entries.append(entry)
        return entries

    def count(self, *states: str) -> int:
        wanted = states or _LIVE_STATES
        self._ensure_index()
        return sum(
            len(self._ids_by_state.get(state, ()))
            for state in dict.fromkeys(wanted)
        )

    # -------------------------------------------------------------- admission

    def submit(self, user_id: str, values: Sequence[float]) -> str:
        """Admit one submission; returns its id or raises AdmissionError."""
        live = self.count(*_LIVE_STATES)
        state = STATE_PENDING
        if live >= self.capacity:
            if self.overflow == OVERFLOW_REJECT:
                raise AdmissionError(
                    f"tenant {self.tenant!r} queue is full "
                    f"({live}/{self.capacity}); retry later"
                )
            if self.count(STATE_DEFERRED) >= self.defer_capacity:
                raise AdmissionError(
                    f"tenant {self.tenant!r} deferred buffer is full "
                    f"({self.defer_capacity}); retry later"
                )
            state = STATE_DEFERRED
        submission_id = self._next_id()
        self._store(
            {
                "submission_id": submission_id,
                "tenant": self.tenant,
                "user_id": str(user_id),
                "values": [float(v) for v in values],
                "state": state,
                "round_id": None,
            }
        )
        return submission_id

    def promote_deferred(self) -> list[str]:
        """Move deferred submissions into pending as capacity frees up."""
        promoted: list[str] = []
        live = self.count(*_LIVE_STATES)
        for entry in self._entries_in(STATE_DEFERRED):
            if live >= self.capacity:
                break
            entry["state"] = STATE_PENDING
            self._store(entry)
            promoted.append(entry["submission_id"])
            live += 1
        return promoted

    # ------------------------------------------------------------ assignment

    def take(self, limit: int | None = None) -> list[dict]:
        """Pending submissions in admission order, at most one per user.

        A round has one mask slot per participant, so two queued
        submissions from the same user cannot share a round; the second
        stays pending for the next one.
        """
        self.promote_deferred()
        taken: list[dict] = []
        users: set[str] = set()
        for entry in self._entries_in(STATE_PENDING):
            if entry["user_id"] in users:
                continue
            taken.append(dict(entry))
            users.add(entry["user_id"])
            if limit is not None and len(taken) >= limit:
                break
        return taken

    def mark_assigned(
        self,
        submission_ids: Sequence[str],
        round_id: int,
        *,
        missing_ok: bool = False,
    ) -> None:
        """Pin submissions to a round.  Idempotent per (submission, round).

        ``missing_ok`` is the recovery-path variant: a submission whose
        queue record was lost by storage must not stop reconciliation of
        the others (the journal still carries its values).  An entry
        already **applied** is never demoted — re-assigning one would
        re-open the double-count window this state machine exists to
        close.
        """
        for submission_id in submission_ids:
            entry = (
                self.entry_or_none(submission_id)
                if missing_ok
                else self._entry(submission_id)
            )
            if entry is None:
                continue
            if entry["state"] == STATE_APPLIED:
                continue
            if (
                entry["state"] == STATE_ASSIGNED
                and entry.get("round_id") == int(round_id)
            ):
                continue
            entry["state"] = STATE_ASSIGNED
            entry["round_id"] = int(round_id)
            self._store(entry)

    def mark_applied(
        self, submission_ids: Sequence[str], *, missing_ok: bool = False
    ) -> None:
        """Resolve submissions as counted.  Idempotent: replaying a journal
        (or calling ``resume`` twice) re-marks already-applied entries as a
        no-op instead of re-writing them."""
        for submission_id in submission_ids:
            entry = (
                self.entry_or_none(submission_id)
                if missing_ok
                else self._entry(submission_id)
            )
            if entry is None or entry["state"] == STATE_APPLIED:
                continue
            entry["state"] = STATE_APPLIED
            self._store(entry)

    def mark_rejected(self, submission_ids: Sequence[str], reason: str) -> None:
        for submission_id in submission_ids:
            entry = self._entry(submission_id)
            entry["state"] = STATE_REJECTED
            entry["reason"] = str(reason)
            self._store(entry)

    def assigned(self) -> list[dict]:
        """Every submission currently assigned to some round."""
        return [dict(entry) for entry in self._entries_in(STATE_ASSIGNED)]

    def assigned_to(self, round_id: int) -> list[dict]:
        """Submissions assigned to one round (crash-recovery input set)."""
        return [
            dict(entry)
            for entry in self._entries_in(STATE_ASSIGNED)
            if entry.get("round_id") == int(round_id)
        ]

    def requeue_round(self, round_id: int) -> list[str]:
        """Return an aborted round's submissions to pending."""
        requeued: list[str] = []
        for entry in self._entries_in(STATE_ASSIGNED):
            if entry.get("round_id") == int(round_id):
                entry["state"] = STATE_PENDING
                entry["round_id"] = None
                self._store(entry)
                requeued.append(entry["submission_id"])
        return requeued

    def state_of(self, submission_id: str) -> str:
        return self._entry(submission_id)["state"]

    def depth(self) -> dict[str, int]:
        """Queue depth by state (for telemetry and the CLI)."""
        self._ensure_index()
        return {
            state: len(ids)
            for state, ids in self._ids_by_state.items()
            if ids
        }
