"""The flaky-fleet chaos harness: link weather, sessions, exact rounds.

One *fleet schedule* is the complete biography of a device cohort under
degraded network weather: a :func:`~repro.network.conditions.
sample_fleet_plan` decides every client's loss bursts, latency spikes,
partition and disconnect episodes, duplicate deliveries, clock skew, and
firmware-version skew — plus the quote-policy epoch bumps the
attestation session layer must survive.  :func:`run_fleet_schedule`
plays that schedule against a fresh deployment:

* the :class:`~repro.network.conditions.LinkConditions` adversary
  executes the plan on the wire, composed with a DRBG-injected ambient
  :class:`~repro.network.adversary.DropAdversary` and an autonomous
  :class:`~repro.network.adversary.ReplayAdversary`;
* the engine runs every round with adaptive deadlines, hedged
  re-delivery, and partition-aware cohort trimming
  (:class:`~repro.runtime.deadlines.AdaptiveDeadlines` +
  :meth:`~repro.runtime.engine.RoundEngine.attach_conditions`);
* each round opens with a *session step*: online devices resume their
  attestation session with a :class:`~repro.sgx.sessions.SessionBroker`
  ticket when they can, and pay a full quote-verify only on first join,
  after a policy-epoch bump, or when resumption is rejected;
* a round the weather manages to abort is retried once after the storm
  clears (conditions calmed, adversaries removed) under a fresh round
  id — *recovered*, in the report's terms.

Invariants checked per schedule (``AssertionError`` on violation):

* **exact-or-recovered** — every finalized round's aggregate equals,
  bit for bit, the codec-exact mean over the accepted participants'
  original vectors;
* **zero undetected corruption** — firmware-skew perturbations never
  reach an aggregate: a perturbed submission is rejected by wire
  validation and its sender quarantined, which the exactness oracle
  would otherwise expose;
* **replayability** — the returned ``signature`` tuple is a pure
  function of ``(seed, index, profile)``; the chaos tests compare two
  independent runs directly.

The report also carries the session economics (full verifications,
cache hits, resumptions, rejoins) that the sublinear-re-attestation
assertion in :mod:`tests.chaos.test_fleet_chaos` aggregates.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.drbg import HmacDrbg
from repro.errors import AttestationError, RoundAbortedError
from repro.experiments.common import Deployment
from repro.network.adversary import DropAdversary, ReplayAdversary
from repro.network.conditions import (
    ConditionProfile,
    LinkConditions,
    resolve_profile,
    sample_fleet_plan,
)
from repro.runtime import messages as m
from repro.runtime.deadlines import AdaptiveDeadlines
from repro.runtime.telemetry import OUTCOME_ACCEPTED
from repro.sgx.attestation import QuotePolicy, report_data_for
from repro.sgx.sessions import SessionBroker

__all__ = ["run_fleet_schedule"]

#: Round ids for storm-cleared retries start here (well clear of the
#: scheduled ids, which count up from 1).
_RECOVERY_BASE = 1000


def _expected_mean(codec, vectors: dict[str, np.ndarray], accepted) -> np.ndarray:
    """The codec-exact mean a finalized round must reproduce bit-for-bit."""
    encoded = [codec.encode(list(vectors[user])) for user in sorted(accepted)]
    return codec.decode(codec.sum_vectors(encoded)) / len(encoded)


def run_fleet_schedule(
    *,
    seed: bytes,
    index: int,
    profile: str | ConditionProfile,
    num_users: int = 6,
    sentences_per_user: int = 3,
    max_features: int | None = 8,
    rounds: int = 4,
    adaptive: AdaptiveDeadlines | None = None,
) -> dict:
    """Run one fleet schedule to convergence; returns its report.

    Deterministic end to end: the same ``(seed, index, profile)`` builds
    the same deployment, samples the same plan, and produces the same
    ``signature``.  Raises :class:`AssertionError` if any invariant is
    violated; :class:`RoundAbortedError` only if even the storm-cleared
    retry of a round cannot finalize (which would itself be a bug).
    """
    resolved = resolve_profile(profile)
    if adaptive is None:
        adaptive = AdaptiveDeadlines()
    label_seed = f"{seed.decode('utf-8', 'replace')}#{index}@{resolved.name}"

    deployment = Deployment.build(
        num_users=num_users,
        seed=seed + f":fleet:{index}:{resolved.name}".encode("utf-8"),
        sentences_per_user=sentences_per_user,
        max_features=max_features,
    )
    users = sorted(deployment.clients)
    vectors = deployment.local_vectors(users)
    features = deployment.features.bigrams
    plan = sample_fleet_plan(seed, index, resolved, users, rounds=rounds)

    conditions = LinkConditions(
        plan,
        deployment.network.clock,
        HmacDrbg(seed, personalization=f"fleet-conditions:{resolved.name}:{index}"),
    )
    conditions.attach(deployment.network)
    ambient = DropAdversary(
        drop_rate=resolved.ambient_drop_rate,
        rng=HmacDrbg(seed, personalization=f"fleet-drop:{resolved.name}:{index}"),
    )
    replayer = ReplayAdversary(
        target_kinds={m.KIND_PROVISION_MASK, m.KIND_CONTRIBUTE, m.KIND_SUBMIT},
        rng=HmacDrbg(seed, personalization=f"fleet-replay:{resolved.name}:{index}"),
        replay_rate=resolved.replay_rate,
    )
    replayer.attach(deployment.network)
    deployment.network.interpose(conditions)
    deployment.network.interpose(ambient)
    deployment.network.interpose(replayer)
    deployment.engine.attach_conditions(conditions)

    broker = SessionBroker(
        deployment.attestation,
        QuotePolicy(expected_mrenclave=deployment.image.mrenclave),
        seed=seed + b":sessions",
    )

    def _full_attest(user_id: str):
        client = deployment.clients[user_id]
        quote = client.platform.quote_enclave(
            client.glimmer,
            report_data_for(b"fleet-session:" + user_id.encode("utf-8")),
        )
        return broker.establish(quote)

    tickets: dict[str, object] = {}
    online_before: dict[str, bool] = {}
    rejoins = 0
    rounds_recovered = 0
    stormy = True
    round_reports = []
    per_round: list[tuple] = []

    def _calm_everything() -> None:
        nonlocal stormy
        if not stormy:
            return
        stormy = False
        conditions.calm()
        deployment.network.clear_adversaries()
        deployment.engine.attach_conditions(None)

    for ordinal in range(rounds):
        if ordinal in plan.epoch_bumps:
            broker.bump_policy_epoch()

        # Session step: every device reachable right now either resumes
        # its attestation session or pays a full quote-verify.
        now = deployment.network.clock.now_ms()
        for user_id in users:
            online = not (stormy and conditions.offline_for(user_id, now))
            was_online = online_before.get(user_id)
            if online and was_online is False:
                rejoins += 1
            online_before[user_id] = online
            if not online:
                continue
            ticket = tickets.get(user_id)
            if ticket is not None:
                try:
                    broker.resume(ticket)
                    key = broker.resume_key(ticket)
                    assert len(key) == 32
                    continue
                except AttestationError:
                    tickets.pop(user_id, None)
            _result, ticket = _full_attest(user_id)
            tickets[user_id] = ticket

        round_id = ordinal + 1
        try:
            report = deployment.engine.run_round(
                round_id,
                users,
                vectors,
                features,
                adaptive=adaptive if stormy else None,
            )
        except RoundAbortedError:
            deployment.engine.abandon_round(round_id)
            # The storm won this round.  Weather eventually clears; the
            # recovered round must then finalize exactly.
            _calm_everything()
            rounds_recovered += 1
            report = deployment.engine.run_round(
                _RECOVERY_BASE + round_id, users, vectors, features
            )

        accepted = sorted(
            user
            for user in report.participants
            if report.outcomes.get(user) == OUTCOME_ACCEPTED
        )
        assert accepted, f"{label_seed}: round {report.round_id} kept nobody"
        expected = _expected_mean(deployment.codec, vectors, accepted)
        assert np.array_equal(
            np.asarray(report.aggregate), expected
        ), (
            f"{label_seed}: round {report.round_id} aggregate is not the "
            f"codec-exact mean over its accepted participants"
        )
        round_reports.append(report)
        per_round.append(
            (
                report.round_id,
                tuple(sorted(report.outcomes.items())),
                tuple(float(v) for v in np.asarray(report.aggregate).ravel()),
                report.masks_repaired,
                report.late_replies_discarded,
                report.hedged_deliveries,
                report.partition_trimmed,
                report.submissions_reconciled,
            )
        )

    quarantined = sorted(
        {user for report in round_reports for user in report.quarantined}
    )
    perturbed = conditions.perturbed_submissions
    if perturbed:
        # Zero undetected corruption, stated positively: every schedule
        # that perturbed a submission rejected it (the exactness oracle
        # above passed) and blamed a firmware-skewed device.
        skewed = {
            user_id
            for user_id, link in plan.links.items()
            if link.firmware_skew
        }
        for offender in quarantined:
            client_id = offender.split(":", 1)[-1]
            assert client_id in skewed, (
                f"{label_seed}: {offender} quarantined without firmware skew"
            )

    mean_settle_ms = float(
        np.mean([report.latency_ms for report in round_reports])
    )
    counters = broker.counters()
    return {
        "label": label_seed,
        "profile": resolved.name,
        "num_users": num_users,
        "rounds": rounds,
        "rounds_recovered": rounds_recovered,
        "rejoins": rejoins,
        "submissions_reconciled": sum(
            report.submissions_reconciled for report in round_reports
        ),
        "quarantined": quarantined,
        "perturbed_submissions": perturbed,
        "conditions": conditions.counters(),
        "ambient_dropped": ambient.dropped,
        "auto_replayed": replayer.auto_replayed,
        "redeliveries_delivered": deployment.network.redeliveries_delivered,
        "redeliveries_failed": deployment.network.redeliveries_failed,
        "sessions": counters,
        "full_attestations": counters["full_verifications"],
        "resumed": counters["resumed"],
        "epoch_bumps": counters["epoch_bumps"],
        "mean_settle_ms": mean_settle_ms,
        "calm": not stormy,
        "signature": (
            plan.describe(),
            tuple(per_round),
            tuple(sorted(conditions.counters().items())),
            tuple(sorted(counters.items())),
            ambient.dropped,
            replayer.auto_replayed,
        ),
    }
