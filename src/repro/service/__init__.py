"""The long-lived Glimmer service: async rounds over durable state.

The :mod:`repro.runtime` engine runs one round at a time, in memory, to
completion.  This package wraps it in a service shape:

* :mod:`repro.service.storage` — a pluggable persistence interface
  (in-memory, on-disk JSON, SQLite) behind one :class:`StorageBackend`;
* :mod:`repro.service.audit` — a hash-chained, append-only audit log of
  every trust-relevant event;
* :mod:`repro.service.journal` — the round journal that makes a crash
  mid-round recoverable without double-counting anything;
* :mod:`repro.service.queue` — the durable submission queue with
  admission control (bounded depth, reject-or-defer overflow);
* :mod:`repro.service.async_engine` — the asyncio driver that interleaves
  many rounds' :meth:`~repro.runtime.engine.RoundEngine.round_stages`
  generators on one event loop, bit-exact per round;
* :mod:`repro.service.resilience` — the armor between the service and its
  storage: capped-jittered retries, a per-backend circuit breaker, and
  fail-fast :class:`~repro.errors.StorageUnavailableError` conversion;
* :mod:`repro.service.service` — :class:`GlimmerService`, the multi-tenant
  composition: several cloud services sharing one blinding provisioner,
  continuous intake, overlapping rounds, crash recovery, per-tenant
  bulkheads, a round watchdog, and chaos kill-points;
* :mod:`repro.service.chaos` — the kill-and-restart self-healing harness
  driving all of the above under scheduled storage faults;
* :mod:`repro.service.fleet` — the flaky-fleet chaos harness: deterministic
  link weather (:mod:`repro.network.conditions`), adaptive deadlines, and
  incremental attestation sessions, proven exact-or-recovered per schedule.

The synchronous engine remains the bit-exact reference; everything here
reuses its phase logic verbatim and only changes *when* it runs.
"""

from repro.service.async_engine import AsyncRoundEngine, install_async_drive
from repro.service.audit import EVENT_REPAIR, AuditLog
from repro.service.fleet import run_fleet_schedule
from repro.service.journal import RoundJournal
from repro.service.queue import (
    OVERFLOW_DEFER,
    OVERFLOW_REJECT,
    STATE_APPLIED,
    STATE_ASSIGNED,
    STATE_DEFERRED,
    STATE_PENDING,
    STATE_REJECTED,
    SubmissionQueue,
)
from repro.service.resilience import (
    CircuitBreaker,
    ResilientStorageBackend,
    RetryPolicy,
)
from repro.service.service import GlimmerService, TenantRuntime
from repro.service.storage import (
    DiskBackend,
    MemoryBackend,
    SealedBlobMap,
    SQLiteBackend,
    StorageBackend,
    build_backend,
)

__all__ = [
    "AsyncRoundEngine",
    "AuditLog",
    "CircuitBreaker",
    "DiskBackend",
    "EVENT_REPAIR",
    "GlimmerService",
    "MemoryBackend",
    "OVERFLOW_DEFER",
    "OVERFLOW_REJECT",
    "ResilientStorageBackend",
    "RetryPolicy",
    "RoundJournal",
    "SQLiteBackend",
    "STATE_APPLIED",
    "STATE_ASSIGNED",
    "STATE_DEFERRED",
    "STATE_PENDING",
    "STATE_REJECTED",
    "SealedBlobMap",
    "StorageBackend",
    "SubmissionQueue",
    "TenantRuntime",
    "build_backend",
    "install_async_drive",
    "run_fleet_schedule",
]
