"""The round journal: crash-recoverable round lifecycle records.

A round's life in the journal is two entries: ``round_opened`` (written
*before* the first protocol message, naming the tenant, the participants,
and exactly which queued submissions the round consumed) and a closing
``round_finalized`` or ``round_aborted``.  A crash leaves at most one
opened-but-unclosed round per concurrent task; :meth:`RoundJournal
.unfinished` surfaces those so a restarted service can re-run each one —
under the *same* global round id, over the *same* submission set — and
then close it.  Because the closing entry is written *before* the queue
marks its submissions applied, a crash in the gap re-runs an
already-finalized round (idempotent: same inputs, same aggregate) rather
than ever losing or double-counting a submission.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.service.storage import StorageBackend

LOG = "round-journal"

STATUS_OPENED = "opened"
STATUS_FINALIZED = "finalized"
STATUS_ABORTED = "aborted"


class RoundJournal:
    """Append-only round lifecycle journal over a storage backend."""

    def __init__(self, backend: StorageBackend, log: str = LOG) -> None:
        self._backend = backend
        self._log = log

    def round_opened(
        self,
        round_id: int,
        tenant: str,
        participants: Sequence[str],
        submission_ids: Sequence[str],
        values_by_user: dict[str, Sequence[float]] | None = None,
    ) -> None:
        """Record a round's inputs before any protocol message is sent.

        ``values_by_user`` is included so recovery can replay the round
        even if the queue's copy of a submission were lost — the journal
        is the authoritative statement of what the round aggregates.
        """
        entry: dict[str, Any] = {
            "status": STATUS_OPENED,
            "round_id": int(round_id),
            "tenant": tenant,
            "participants": list(participants),
            "submission_ids": list(submission_ids),
        }
        if values_by_user is not None:
            entry["values_by_user"] = {
                user: [float(v) for v in values]
                for user, values in values_by_user.items()
            }
        self._backend.append(self._log, entry)

    def round_finalized(
        self, round_id: int, aggregate: Sequence[float] | None = None
    ) -> None:
        entry: dict[str, Any] = {
            "status": STATUS_FINALIZED,
            "round_id": int(round_id),
        }
        if aggregate is not None:
            entry["aggregate"] = [float(v) for v in aggregate]
        self._backend.append(self._log, entry)

    def round_aborted(self, round_id: int, reason: str) -> None:
        self._backend.append(
            self._log,
            {
                "status": STATUS_ABORTED,
                "round_id": int(round_id),
                "reason": str(reason),
            },
        )

    # -------------------------------------------------------------- queries

    def entries(self) -> list[dict]:
        return self._backend.read_log(self._log)

    def status_of(self, round_id: int) -> str | None:
        """The latest journaled status for a round (None if never opened)."""
        status = None
        for entry in self.entries():
            if entry.get("round_id") == int(round_id):
                status = entry.get("status")
        return status

    def opened_entry(self, round_id: int) -> dict | None:
        for entry in self.entries():
            if (
                entry.get("round_id") == int(round_id)
                and entry.get("status") == STATUS_OPENED
            ):
                return entry
        return None

    def unfinished(self) -> list[dict]:
        """Opened entries whose rounds were never finalized or aborted.

        Returned in open order — replaying them in order preserves the
        original round-id sequence.
        """
        opened: dict[int, dict] = {}
        closed: set[int] = set()
        for entry in self.entries():
            round_id = int(entry.get("round_id", -1))
            if entry.get("status") == STATUS_OPENED:
                opened.setdefault(round_id, entry)
            elif entry.get("status") in (STATUS_FINALIZED, STATUS_ABORTED):
                closed.add(round_id)
        return [entry for rid, entry in opened.items() if rid not in closed]
