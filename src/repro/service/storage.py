"""Pluggable persistence for the Glimmer service.

One small interface, :class:`StorageBackend`, with three implementations:

* :class:`MemoryBackend` — dicts; the default for tests and demos;
* :class:`DiskBackend` — one JSON file per key/value *space* (rewritten
  atomically on every mutation) plus append-only JSONL files per log;
* :class:`SQLiteBackend` — the same model in a single SQLite database,
  committing per operation.

The interface is deliberately narrow — key/value spaces plus append-only
logs — because that is exactly what the service layers need: queue
entries and tenant configs are keyed records, while the audit log and
round journal are logs.  Values are JSON documents; ``bytes`` values
(sealed blobs, nonces) are transparently encoded as ``{"__bytes__":
"<hex>"}`` so every backend round-trips them identically.  All backends
normalize values through the same codec, so a test that passes on
:class:`MemoryBackend` sees the same tuples-become-lists shape it would
see after a disk round-trip — no backend-specific surprises.

:class:`SealedBlobMap` adapts a backend space to the plain
``dict[int, bytes]`` contract the runtime's sealed-state holders use
(:class:`~repro.core.provisioning.BlinderProvisioner` round seals,
:class:`~repro.core.client.ClientDevice` checkpoints), which is how
sealing persistence is extracted from the in-process components without
changing their code paths.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
from collections.abc import MutableMapping
from typing import Any, Iterator

from repro.errors import ConfigurationError, StorageFaultError

BACKEND_KINDS = ("memory", "disk", "sqlite")


def _fsync_dir(path: str) -> None:
    """fsync a directory so a just-renamed/created entry is durable.

    POSIX only promises a rename is on disk once the *directory* inode is
    synced; without this, a crash after ``os.replace`` can resurface the
    old file — or, worse, an empty one — on restart.
    """
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# --------------------------------------------------------------- value codec


def encode_value(value: Any) -> Any:
    """Make a value JSON-safe; ``bytes`` become tagged hex objects."""
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": bytes(value).hex()}
    if isinstance(value, dict):
        return {str(k): encode_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    return value


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value` (tagged hex back to ``bytes``)."""
    if isinstance(value, dict):
        if set(value) == {"__bytes__"}:
            return bytes.fromhex(value["__bytes__"])
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


def _roundtrip(value: Any) -> Any:
    return decode_value(json.loads(json.dumps(encode_value(value))))


# ----------------------------------------------------------------- interface


class StorageBackend:
    """Key/value spaces plus append-only logs; see module docstring.

    Spaces and log names are plain strings (``/`` is fine and used for
    namespacing, e.g. ``queue/tenant-a``).  Keys are strings; values are
    anything the JSON codec handles, including ``bytes``.
    """

    kind: str = "abstract"

    def put(self, space: str, key: str, value: Any) -> None:
        raise NotImplementedError

    def get(self, space: str, key: str, default: Any = None) -> Any:
        raise NotImplementedError

    def keys(self, space: str) -> list[str]:
        raise NotImplementedError

    def delete(self, space: str, key: str) -> bool:
        raise NotImplementedError

    def append(self, log: str, entry: dict) -> int:
        """Append one entry; returns its zero-based sequence number."""
        raise NotImplementedError

    def read_log(self, log: str) -> list[dict]:
        raise NotImplementedError

    def flush(self) -> None:  # pragma: no cover - default no-op
        pass

    def close(self) -> None:  # pragma: no cover - default no-op
        pass

    # Convenience shared by all backends ------------------------------------

    def items(self, space: str) -> list[tuple[str, Any]]:
        return [(key, self.get(space, key)) for key in self.keys(space)]


class MemoryBackend(StorageBackend):
    """In-process storage; survives nothing, costs nothing."""

    kind = "memory"

    def __init__(self) -> None:
        self._spaces: dict[str, dict[str, Any]] = {}
        self._logs: dict[str, list[dict]] = {}

    def put(self, space: str, key: str, value: Any) -> None:
        self._spaces.setdefault(space, {})[str(key)] = _roundtrip(value)

    def get(self, space: str, key: str, default: Any = None) -> Any:
        return self._spaces.get(space, {}).get(str(key), default)

    def keys(self, space: str) -> list[str]:
        return sorted(self._spaces.get(space, {}))

    def delete(self, space: str, key: str) -> bool:
        return self._spaces.get(space, {}).pop(str(key), None) is not None

    def append(self, log: str, entry: dict) -> int:
        entries = self._logs.setdefault(log, [])
        entries.append(_roundtrip(dict(entry)))
        return len(entries) - 1

    def read_log(self, log: str) -> list[dict]:
        return [dict(entry) for entry in self._logs.get(log, [])]


class DiskBackend(StorageBackend):
    """JSON files under a state directory.

    Every mutation is durable before the call returns: spaces are
    rewritten via temp-file-plus-rename (atomic on POSIX), logs are
    appended as one JSON line per entry and flushed.  A process killed
    at any point leaves either the old or the new state file, never a
    torn one.
    """

    kind = "disk"

    def __init__(self, path: str) -> None:
        self.path = os.path.abspath(path)
        os.makedirs(self.path, exist_ok=True)
        self._spaces: dict[str, dict[str, Any]] = {}
        for name in os.listdir(self.path):
            if name.startswith("space-") and name.endswith(".json"):
                space = self._unmangle(name[len("space-"):-len(".json")])
                with open(os.path.join(self.path, name), "r") as handle:
                    self._spaces[space] = json.load(handle)

    @staticmethod
    def _mangle(name: str) -> str:
        return name.replace("/", "__")

    @staticmethod
    def _unmangle(name: str) -> str:
        return name.replace("__", "/")

    def _space_file(self, space: str) -> str:
        return os.path.join(self.path, f"space-{self._mangle(space)}.json")

    def _log_file(self, log: str) -> str:
        return os.path.join(self.path, f"log-{self._mangle(log)}.jsonl")

    def _write_space(self, space: str) -> None:
        data = self._spaces.get(space, {})
        try:
            fd, tmp = tempfile.mkstemp(dir=self.path, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(data, handle)
                    handle.flush()
                    os.fsync(handle.fileno())
                # Sync order matters: temp-file contents first, then the
                # rename, then the directory entry.  Skipping the directory
                # fsync leaves a window where a crash surfaces an empty (or
                # stale) space file on restart even though the rename
                # "happened".
                os.replace(tmp, self._space_file(space))
                _fsync_dir(self.path)
            finally:
                if os.path.exists(tmp):  # pragma: no cover - error path
                    os.unlink(tmp)
        except OSError as exc:  # pragma: no cover - real disk failure
            raise StorageFaultError(f"disk write failed for space {space!r}: {exc}") from exc

    def put(self, space: str, key: str, value: Any) -> None:
        self._spaces.setdefault(space, {})[str(key)] = encode_value(value)
        self._write_space(space)

    def get(self, space: str, key: str, default: Any = None) -> Any:
        raw = self._spaces.get(space, {}).get(str(key))
        return default if raw is None else decode_value(raw)

    def keys(self, space: str) -> list[str]:
        return sorted(self._spaces.get(space, {}))

    def delete(self, space: str, key: str) -> bool:
        existed = self._spaces.get(space, {}).pop(str(key), None) is not None
        if existed:
            self._write_space(space)
        return existed

    def append(self, log: str, entry: dict) -> int:
        path = self._log_file(log)
        try:
            seq = 0
            created = not os.path.exists(path)
            if not created:
                with open(path, "r") as handle:
                    seq = sum(1 for _ in handle)
            with open(path, "a") as handle:
                handle.write(json.dumps(encode_value(dict(entry))) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            if created:
                # A brand-new log file's directory entry needs the same
                # durability treatment as a space rename.
                _fsync_dir(self.path)
            return seq
        except OSError as exc:  # pragma: no cover - real disk failure
            raise StorageFaultError(f"disk append failed for log {log!r}: {exc}") from exc

    def read_log(self, log: str) -> list[dict]:
        path = self._log_file(log)
        if not os.path.exists(path):
            return []
        with open(path, "r") as handle:
            return [decode_value(json.loads(line)) for line in handle if line.strip()]


class SQLiteBackend(StorageBackend):
    """The same model in one SQLite file, one commit per mutation."""

    kind = "sqlite"

    def __init__(self, path: str) -> None:
        self.path = os.path.abspath(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._db = sqlite3.connect(self.path)
        self._db.execute(
            "CREATE TABLE IF NOT EXISTS kv ("
            " space TEXT NOT NULL, key TEXT NOT NULL, value TEXT NOT NULL,"
            " PRIMARY KEY (space, key))"
        )
        self._db.execute(
            "CREATE TABLE IF NOT EXISTS logs ("
            " log TEXT NOT NULL, seq INTEGER NOT NULL, entry TEXT NOT NULL,"
            " PRIMARY KEY (log, seq))"
        )
        self._db.commit()

    def put(self, space: str, key: str, value: Any) -> None:
        try:
            self._db.execute(
                "INSERT OR REPLACE INTO kv (space, key, value) VALUES (?, ?, ?)",
                (space, str(key), json.dumps(encode_value(value))),
            )
            self._db.commit()
        except sqlite3.OperationalError as exc:  # pragma: no cover - real db failure
            raise StorageFaultError(f"sqlite put failed for {space}/{key}: {exc}") from exc

    def get(self, space: str, key: str, default: Any = None) -> Any:
        row = self._db.execute(
            "SELECT value FROM kv WHERE space = ? AND key = ?", (space, str(key))
        ).fetchone()
        return default if row is None else decode_value(json.loads(row[0]))

    def keys(self, space: str) -> list[str]:
        rows = self._db.execute(
            "SELECT key FROM kv WHERE space = ? ORDER BY key", (space,)
        ).fetchall()
        return [row[0] for row in rows]

    def delete(self, space: str, key: str) -> bool:
        cursor = self._db.execute(
            "DELETE FROM kv WHERE space = ? AND key = ?", (space, str(key))
        )
        self._db.commit()
        return cursor.rowcount > 0

    def append(self, log: str, entry: dict) -> int:
        try:
            row = self._db.execute(
                "SELECT COALESCE(MAX(seq) + 1, 0) FROM logs WHERE log = ?", (log,)
            ).fetchone()
            seq = int(row[0])
            self._db.execute(
                "INSERT INTO logs (log, seq, entry) VALUES (?, ?, ?)",
                (log, seq, json.dumps(encode_value(dict(entry)))),
            )
            self._db.commit()
            return seq
        except sqlite3.OperationalError as exc:  # pragma: no cover - real db failure
            raise StorageFaultError(f"sqlite append failed for log {log!r}: {exc}") from exc

    def read_log(self, log: str) -> list[dict]:
        rows = self._db.execute(
            "SELECT entry FROM logs WHERE log = ? ORDER BY seq", (log,)
        ).fetchall()
        return [decode_value(json.loads(row[0])) for row in rows]

    def flush(self) -> None:
        self._db.commit()

    def close(self) -> None:
        self._db.commit()
        self._db.close()


def build_backend(kind: str, path: str | None = None) -> StorageBackend:
    """Construct a backend by name (``memory`` | ``disk`` | ``sqlite``).

    ``disk`` wants a state *directory*; ``sqlite`` a database file path
    (a directory is accepted and gets ``service.sqlite`` inside it).
    """
    if kind == "memory":
        return MemoryBackend()
    if path is None:
        raise ConfigurationError(f"backend {kind!r} needs a state path")
    if kind == "disk":
        return DiskBackend(path)
    if kind == "sqlite":
        if os.path.isdir(path):
            path = os.path.join(path, "service.sqlite")
        return SQLiteBackend(path)
    raise ConfigurationError(
        f"unknown storage backend {kind!r} (want one of {BACKEND_KINDS})"
    )


class SealedBlobMap(MutableMapping):
    """A ``dict[int, bytes]`` view over one backend space.

    Drop-in for the runtime's sealed-state dicts: assignment persists the
    blob, iteration yields integer round ids (so ``sorted(map)`` works in
    the provisioner's and client's recovery loops), and deletion removes
    the persisted record.  The sealed blobs stay opaque ciphertext — the
    backend never holds plaintext round state.
    """

    def __init__(self, backend: StorageBackend, space: str) -> None:
        self._backend = backend
        self._space = space

    def __setitem__(self, round_id: int, blob: bytes) -> None:
        self._backend.put(self._space, str(int(round_id)), bytes(blob))

    def __getitem__(self, round_id: int) -> bytes:
        blob = self._backend.get(self._space, str(int(round_id)))
        if blob is None:
            raise KeyError(round_id)
        return blob

    def __delitem__(self, round_id: int) -> None:
        if not self._backend.delete(self._space, str(int(round_id))):
            raise KeyError(round_id)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(int(key) for key in self._backend.keys(self._space)))

    def __len__(self) -> int:
        return len(self._backend.keys(self._space))
