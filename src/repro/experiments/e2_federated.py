"""E2 — Figure 1b: federated learning still leaks via model inversion.

Clients now keep their text and submit per-user partial models.  Utility is
essentially preserved (the averaged model still predicts "trump" after
"donald"), but §1's warning holds: "learned models ... can still reveal
information about the raw inputs used to train those models".  The
inversion attacker of :mod:`repro.federated.inversion` recovers each user's
stance from their attributed model vector at high accuracy.

Reported per cohort size: federated utility, inversion accuracy on
per-user models, inversion accuracy using only the aggregate (the floor a
blinded scheme could reach), and the structural bits of the channel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.privacy import bits_of_vector, leakage_for_channel
from repro.analysis.reporting import Table
from repro.crypto.drbg import HmacDrbg
from repro.federated.aggregation import FederatedAggregator
from repro.federated.inversion import InversionAttacker
from repro.federated.metrics import top1_accuracy
from repro.federated.model import FeatureSpace
from repro.federated.trainer import LocalTrainer
from repro.workloads.text import KeyboardCorpus, stance_evidence


@dataclass
class FederatedResult:
    rows: list

    def table(self) -> Table:
        table = Table(
            "E2 (Fig. 1b): federated learning — inversion breaks per-user privacy",
            [
                "users",
                "top1-accuracy",
                "predicts trump|donald",
                "inversion acc (per-user)",
                "inversion acc (aggregate-only)",
                "bits/user exposed",
            ],
        )
        for row in self.rows:
            table.add_row(*row)
        return table


def run(cohort_sizes=(16, 64), sentences_per_user: int = 30, seed: bytes = b"e2") -> FederatedResult:
    rows = []
    for num_users in cohort_sizes:
        rng = HmacDrbg(seed + str(num_users).encode(), personalization="e2")
        corpus = KeyboardCorpus.generate(
            num_users, rng.fork("corpus"), sentences_per_user=sentences_per_user
        )
        features = FeatureSpace.from_corpus(corpus.all_sentences())
        trainer = LocalTrainer(features)
        vectors = {
            user.user_id: trainer.train(corpus.streams[user.user_id]).contribution()
            for user in corpus.users
        }
        aggregator = FederatedAggregator(features)
        global_model = aggregator.aggregate(list(vectors.values()))
        holdout = corpus.holdout(rng.fork("holdout"))
        utility = top1_accuracy(global_model, holdout)
        trending = global_model.top_prediction("donald") == "trump"
        attacker = InversionAttacker(features, stance_evidence())
        labels = corpus.labels()
        per_user_accuracy = attacker.accuracy(vectors, labels)
        # Aggregate-only attacker: everyone gets the cohort-level guess.
        aggregate_guess = attacker.infer(global_model.as_vector())
        aggregate_accuracy = sum(
            1 for user in corpus.users if labels[user.user_id] == aggregate_guess
        ) / num_users
        leakage_for_channel(  # validated construction; bits reported below
            "per-user-model", per_user_accuracy, bits_of_vector(len(features))
        )
        rows.append(
            (
                num_users,
                utility,
                trending,
                per_user_accuracy,
                aggregate_accuracy,
                bits_of_vector(len(features)),
            )
        )
    return FederatedResult(rows=rows)
