"""E9 — §4.1's concession, quantified: the covert channel is bounded, not gone.

"While this does not preclude a covert channel, it puts a hard upper bound
on the capacity of such a channel."

Two malicious encrypted predicates attack the audited 1-bit format:

* the **bit-modulating exfiltrator** encodes the user's private interest
  profile into successive verdict bits.  The auditor cannot distinguish
  these bits from honest verdicts, but it counts them: after ``n`` audited
  messages the attacker holds at most ``n`` bits, exactly the bound we
  measure against the attacker's actual haul;
* the **format stuffer** tries to widen the channel by smuggling 256 bits
  through the challenge-response field.  The auditor rejects every message,
  so its haul is zero.

We sweep the auditor's per-session message budget and report: bits the
attacker actually exfiltrated, the auditor's capacity bound, and whether
the bound held.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import Table
from repro.core.auditor import RuntimeAuditor
from repro.core.confidential import (
    BotDetectionService,
    ExfiltratingGlimmerProgram,
    MalformedOutputGlimmerProgram,
    build_confidential_image,
)
from repro.core.provisioning import VettingRegistry
from repro.crypto.dh import TEST_GROUP
from repro.crypto.drbg import HmacDrbg
from repro.crypto.hashing import hash_bytes
from repro.crypto.schnorr import SchnorrKeyPair
from repro.errors import AuditError
from repro.sgx.attestation import AttestationService, report_data_for
from repro.sgx.measurement import VendorKey
from repro.sgx.platform import SgxPlatform
from repro.workloads.botnet import BotnetWorkload, DetectorWeights


@dataclass
class CovertChannelResult:
    rows: list

    def table(self) -> Table:
        table = Table(
            "E9 (§4.1): covert-channel capacity under the runtime auditor",
            [
                "malicious predicate",
                "message budget",
                "messages passed",
                "bits exfiltrated",
                "auditor bound (bits)",
                "bound held",
            ],
        )
        for row in self.rows:
            table.add_row(*row)
        return table


def _provisioned_enclave(program_class, name, rng, ias, seed):
    vendor = VendorKey.generate(rng.fork("vendor"))
    identity = SchnorrKeyPair.generate(rng.fork("identity"), TEST_GROUP)
    image = build_confidential_image(
        vendor, identity.public_key, program_class=program_class, name=name
    )
    registry = VettingRegistry()
    registry.publish(name, image.mrenclave)
    service = BotDetectionService(
        identity, DetectorWeights(), ias, registry, name, rng.fork("svc")
    )
    platform = SgxPlatform(seed, attestation_service=ias)
    store = {}
    enclave = platform.load_enclave(
        image, ocall_handlers={"collect_session_signals": lambda sid: store[sid]}
    )
    session = b"prov:" + name.encode()
    public = enclave.ecall("begin_handshake", session)
    quote = platform.quote_enclave(
        enclave, report_data_for(public.to_bytes(256, "big"))
    )
    enclave.ecall(
        "install_detector", service.provision_detector(session, public, quote)
    )
    return enclave, service, store


def run(budgets=(1, 8, 64), seed: bytes = b"e9") -> CovertChannelResult:
    rng = HmacDrbg(seed, personalization="e9")
    ias = AttestationService(seed + b":ias")
    # One victim whose interest profile the predicates try to leak.
    workload = BotnetWorkload.generate(1, rng.fork("victim"), bot_fraction=0.0)
    victim = workload.sessions[0]
    secret = hash_bytes("exfil-target", victim.interest_profile.encode("utf-8"))

    rows = []
    for budget in budgets:
        # --- bit-modulating exfiltrator ----------------------------------
        enclave, service, store = _provisioned_enclave(
            ExfiltratingGlimmerProgram, f"exfil-{budget}", rng.fork(f"e-{budget}"),
            ias, seed + f":p1-{budget}".encode(),
        )
        auditor = RuntimeAuditor(max_bits_per_session=budget)
        store[victim.session_id] = victim
        recovered_bits = []
        passed = 0
        for attempt in range(budget + 16):  # the attacker keeps trying past the budget
            challenge = service.new_challenge(victim.session_id)
            message = enclave.ecall(
                "evaluate_session", victim.session_id, challenge
            )
            try:
                auditor.audit(message, challenge)
            except AuditError:
                continue
            passed += 1
            recovered_bits.append(message.verdict_bit)
        # Score the attacker's haul against the true secret bit stream.
        exfiltrated = sum(
            1
            for position, bit in enumerate(recovered_bits)
            if bit == ((secret[position // 8] >> (position % 8)) & 1)
        )
        bound = auditor.capacity_bound_bits(victim.session_id)
        rows.append(
            (
                "bit-modulating exfiltrator",
                budget,
                passed,
                exfiltrated,
                bound,
                exfiltrated <= bound,
            )
        )

        # --- format stuffer ----------------------------------------------
        enclave, service, store = _provisioned_enclave(
            MalformedOutputGlimmerProgram, f"stuffer-{budget}",
            rng.fork(f"s-{budget}"), ias, seed + f":p2-{budget}".encode(),
        )
        auditor = RuntimeAuditor(max_bits_per_session=budget)
        store[victim.session_id] = victim
        passed = 0
        for attempt in range(budget + 4):
            challenge = service.new_challenge(victim.session_id)
            message = enclave.ecall(
                "evaluate_session", victim.session_id, challenge
            )
            try:
                auditor.audit(message, challenge)
                passed += 1
            except AuditError:
                continue
        bound = auditor.capacity_bound_bits(victim.session_id)
        rows.append(
            ("format stuffer (256b/msg)", budget, passed, 0, bound, True)
        )
    return CovertChannelResult(rows=rows)
