"""Shared experiment scaffolding: a ready-to-run Glimmer deployment.

Every end-to-end experiment needs the same cast — attestation service,
vendor, vetted Glimmer image, service and blinding-service provisioners,
cloud service, a corpus, and a fleet of clients.  :class:`Deployment`
builds it once so experiment modules stay about *their* question.

Experiments default to the fast :data:`~repro.crypto.dh.TEST_GROUP` (the
crypto is simulation-grade either way); pass ``group=OAKLEY_GROUP_1`` to
price realistic key sizes in the overhead experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.client import ClientDevice, LocalDataStore, MaliciousClient
from repro.core.glimmer import GlimmerConfig, build_glimmer_image, features_digest
from repro.core.provisioning import (
    BlinderProvisioner,
    ServiceProvisioner,
    VettingRegistry,
)
from repro.core.service import CloudService
from repro.crypto.dh import DHGroup, TEST_GROUP
from repro.crypto.drbg import HmacDrbg
from repro.crypto.fixedpoint import FixedPointCodec
from repro.crypto.masking import BlindingService
from repro.crypto.schnorr import SchnorrKeyPair
from repro.federated.model import FeatureSpace
from repro.federated.trainer import LocalTrainer
from repro.network.transport import Network
from repro.runtime.engine import RoundEngine
from repro.runtime.telemetry import RoundReport
from repro.sgx.attestation import AttestationService
from repro.sgx.measurement import EnclaveImage, VendorKey
from repro.workloads.text import KeyboardCorpus

GLIMMER_NAME = "keyboard-glimmer"


@dataclass
class Deployment:
    """A complete, provisioned Glimmer deployment over a keyboard corpus."""

    rng: HmacDrbg
    group: DHGroup
    corpus: KeyboardCorpus
    features: FeatureSpace
    trainer: LocalTrainer
    codec: FixedPointCodec
    attestation: AttestationService
    vendor: VendorKey
    service_identity: SchnorrKeyPair
    signing_keypair: SchnorrKeyPair
    blinder_identity: SchnorrKeyPair
    image: EnclaveImage
    registry: VettingRegistry
    service_provisioner: ServiceProvisioner
    blinder_provisioner: BlinderProvisioner
    service: CloudService
    network: Network
    engine: RoundEngine
    clients: dict[str, ClientDevice] = field(default_factory=dict)
    last_report: RoundReport | None = None
    _vector_cache: dict[str, np.ndarray] = field(default_factory=dict)
    _fault_injector: object | None = None

    @classmethod
    def build(
        cls,
        num_users: int = 16,
        seed: bytes = b"glimmer-deployment",
        predicate_spec: str = "range:0.0:1.0",
        sentences_per_user: int = 30,
        group: DHGroup = TEST_GROUP,
        max_features: int | None = None,
        provision_clients: bool = True,
        dp_sigma: float = 0.0,
        parallelism=None,
        session_resumption: bool = False,
    ) -> "Deployment":
        """Stand up the whole cast and (optionally) provision every client.

        ``session_resumption`` attaches a
        :class:`~repro.crypto.group_ops.DHSessionCache` to both
        provisioners so repeat clients resume handshakes across rounds.
        Off by default: resumption skips provisioner DRBG draws, which
        disqualifies the bit-exact parallel round path.
        """
        rng = HmacDrbg(seed, personalization="deployment")
        corpus = KeyboardCorpus.generate(
            num_users, rng.fork("corpus"), sentences_per_user=sentences_per_user
        )
        features = FeatureSpace.from_corpus(corpus.all_sentences(), max_features)
        codec = FixedPointCodec()
        attestation = AttestationService(seed + b":ias")
        vendor = VendorKey.generate(rng.fork("vendor"))
        service_identity = SchnorrKeyPair.generate(rng.fork("service-identity"), group)
        signing_keypair = SchnorrKeyPair.generate(rng.fork("signing-key"), group)
        blinder_identity = SchnorrKeyPair.generate(rng.fork("blinder-identity"), group)
        config = GlimmerConfig(
            predicate_spec=predicate_spec,
            service_identity=service_identity.public_key,
            blinder_identity=blinder_identity.public_key,
            features_digest=features_digest(features.bigrams),
            dp_sigma=dp_sigma,
        )
        image = build_glimmer_image(vendor, config, name=GLIMMER_NAME)
        registry = VettingRegistry()
        registry.publish(GLIMMER_NAME, image.mrenclave)
        service_provisioner = ServiceProvisioner(
            service_identity, signing_keypair, attestation, registry,
            GLIMMER_NAME, rng.fork("service-provisioner"),
        )
        blinder_provisioner = BlinderProvisioner(
            blinder_identity,
            BlindingService(rng.fork("blinding-service"), codec),
            attestation, registry, GLIMMER_NAME, rng.fork("blinder-provisioner"),
        )
        if session_resumption:
            from repro.crypto.group_ops import DHSessionCache

            service_provisioner.session_cache = DHSessionCache()
            blinder_provisioner.session_cache = DHSessionCache()
        service = CloudService(signing_keypair.public_key, codec)
        network = Network(seed=seed + b":network")
        engine = RoundEngine(
            network,
            service,
            blinder_provisioner,
            signing_public=signing_keypair.public_key,
            codec=codec,
            group=group,
            parallelism=parallelism,
        )
        deployment = cls(
            rng=rng,
            group=group,
            corpus=corpus,
            features=features,
            trainer=LocalTrainer(features),
            codec=codec,
            attestation=attestation,
            vendor=vendor,
            service_identity=service_identity,
            signing_keypair=signing_keypair,
            blinder_identity=blinder_identity,
            image=image,
            registry=registry,
            service_provisioner=service_provisioner,
            blinder_provisioner=blinder_provisioner,
            service=service,
            network=network,
            engine=engine,
        )
        if provision_clients:
            for user in corpus.users:
                deployment.make_client(user.user_id)
        return deployment

    # ----------------------------------------------------------- client mgmt

    def make_client(
        self, user_id: str, malicious: bool = False, data: LocalDataStore | None = None
    ) -> ClientDevice:
        """Build (and signing-key-provision) a client for a corpus user."""
        if data is None:
            sentences = self.corpus.streams.get(user_id, [])
            data = LocalDataStore(sentences=list(sentences))
        client_class = MaliciousClient if malicious else ClientDevice
        client = client_class(
            user_id,
            self.image,
            self.attestation,
            seed=b"client:" + user_id.encode("utf-8"),
            data=data,
        )
        client.provision_signing_key(self.service_provisioner)
        client.platform.fault_injector = self._fault_injector
        self.clients[user_id] = client
        self.engine.register_client(client)
        return client

    def enable_faults(self, injector) -> None:
        """Wire a :class:`repro.faults.FaultInjector` into every layer.

        The transport consults it per message leg, each client's SGX
        platform per ecall and restart, and the engine at phase
        boundaries and client lifecycle sites.  Pass ``None`` to turn
        fault injection back off.  Clients built after this call inherit
        the injector too.
        """
        self._fault_injector = injector
        self.network.fault_injector = injector
        self.engine.fault_injector = injector
        for client in self.clients.values():
            client.platform.fault_injector = injector

    # ------------------------------------------------------------ round glue

    def open_round(self, round_id: int, participants: list[str]) -> None:
        """Open a blinded round and provision masks over the message bus."""
        self.engine.open_round(round_id, len(participants), len(self.features))
        for index, user_id in enumerate(participants):
            self.engine.provision_mask(user_id, round_id, index)

    def local_vectors(
        self, participants: list[str] | None = None
    ) -> dict[str, np.ndarray]:
        """Honestly trained contribution vectors, cached across rounds.

        Training is deterministic per user, so each user is trained at
        most once per deployment; pass ``participants`` to train only the
        users a round actually needs.
        """
        if participants is None:
            participants = [user.user_id for user in self.corpus.users]
        for user_id in participants:
            if user_id not in self._vector_cache:
                self._vector_cache[user_id] = self.trainer.train(
                    self.corpus.streams[user_id]
                ).contribution()
        return {user_id: self._vector_cache[user_id] for user_id in participants}

    def honest_round(
        self,
        round_id: int,
        participants: list[str] | None = None,
        dropouts: list[str] | None = None,
    ) -> "np.ndarray":
        """Run one fully honest blinded round over the message bus.

        Returns the aggregate vector; the full :class:`RoundReport` (with
        transport and enclave telemetry) lands in :attr:`last_report`.
        """
        participants = participants or [u.user_id for u in self.corpus.users]
        vectors = self.local_vectors(participants)
        self.last_report = self.engine.run_round(
            round_id,
            participants,
            vectors,
            self.features.bigrams,
            dropouts=tuple(dropouts or ()),
        )
        return self.last_report.aggregate
