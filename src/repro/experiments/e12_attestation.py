"""E12 — §3's trust establishment, attacked from every angle.

"One last requirement is that the Glimmer convince both the user and
service that it is correct ... Once it has been vetted, the hash of the
Glimmer is published, and the user can use SGX to attest that their client
is running the approved Glimmer.  Similarly the service can ensure that
signing keys are sealed to the approved Glimmer."

Each row is one attack on that story, run against the real provisioning
path, with the mechanism that stopped it:

* a Glimmer with a *weakened predicate* in its config (538-friendly range)
  measures differently and is refused the signing key;
* a forged quote from a software emulator, a tampered quote, a replayed
  binding, a revoked platform, a debug enclave — all refused;
* the sealed signing key cannot be unsealed by any other enclave;
* the genuine Glimmer, as a control, is provisioned successfully.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import Table
from repro.core.client import ClientDevice, LocalDataStore
from repro.core.glimmer import GlimmerConfig, build_glimmer_image, features_digest
from repro.errors import AttestationError, EnclaveError, SealingError
from repro.experiments.common import Deployment, GLIMMER_NAME
from repro.sgx.attestation import report_data_for
from repro.sgx.enclave import EnclaveProgram, ecall
from repro.sgx.measurement import EnclaveImage
from repro.sgx.threats import (
    forge_quote,
    replay_quote_with_new_data,
    tamper_quote_measurement,
)


@dataclass
class AttestationResult:
    rows: list

    def table(self) -> Table:
        table = Table(
            "E12 (§3): trust establishment — attack matrix",
            ["attack", "blocked", "mechanism"],
        )
        for row in self.rows:
            table.add_row(*row)
        return table


def run(seed: bytes = b"e12") -> AttestationResult:
    deployment = Deployment.build(num_users=2, seed=seed, provision_clients=False)
    rows = []

    # Control: the genuine Glimmer provisions successfully.
    honest = ClientDevice(
        "honest", deployment.image, deployment.attestation,
        seed=seed + b":honest", data=LocalDataStore(),
    )
    honest.provision_signing_key(deployment.service_provisioner)
    rows.append(
        ("genuine glimmer (control)", False, "provisioned successfully")
    )

    # Attack 1: weakened predicate config → different measurement.
    weak_config = GlimmerConfig(
        predicate_spec="range:0.0:1000.0",  # would wave the 538 through
        service_identity=deployment.service_identity.public_key,
        blinder_identity=deployment.blinder_identity.public_key,
        features_digest=features_digest(deployment.features.bigrams),
    )
    weak_image = build_glimmer_image(
        deployment.vendor, weak_config, name=GLIMMER_NAME
    )
    weak_client = ClientDevice(
        "weakened", weak_image, deployment.attestation,
        seed=seed + b":weak", data=LocalDataStore(),
    )
    try:
        weak_client.provision_signing_key(deployment.service_provisioner)
        blocked = False
    except AttestationError:
        blocked = True
    rows.append(
        ("weakened-predicate glimmer", blocked, "measurement != published hash")
    )

    # Attack 2: forged quote (software emulator, unprovisioned key).
    session = b"forge-session"
    dh_public = 4
    quote = forge_quote(
        deployment.image.mrenclave,
        deployment.image.mrsigner,
        report_data_for(dh_public.to_bytes(256, "big")),
    )
    try:
        deployment.service_provisioner.provision_signing_key(session, dh_public, quote)
        blocked = False
    except AttestationError:
        blocked = True
    rows.append(("forged quote (no real SGX)", blocked, "unprovisioned platform key"))

    # Attack 3: the weakened enclave's *genuine* quote, with its measurement
    # field rewritten to the published hash (signature no longer covers it).
    weak_quote = weak_client.platform.quote_enclave(
        weak_client.glimmer, report_data_for(dh_public.to_bytes(256, "big"))
    )
    tampered = tamper_quote_measurement(weak_quote, deployment.image.mrenclave)
    try:
        deployment.service_provisioner.provision_signing_key(
            b"tamper-session", dh_public, tampered
        )
        blocked = False
    except AttestationError:
        blocked = True
    rows.append(("tampered quote measurement", blocked, "quote signature check"))

    # Attack 4: replay a genuine quote (from a real honest handshake) with
    # the attacker's own DH value substituted into the report data.
    __, honest_dh_public, genuine_quote = honest._attested_handshake()
    attacker_dh_public = 16
    replayed = replay_quote_with_new_data(
        genuine_quote, report_data_for(attacker_dh_public.to_bytes(256, "big"))
    )
    try:
        deployment.service_provisioner.provision_signing_key(
            b"replay-session", attacker_dh_public, replayed
        )
        blocked = False
    except AttestationError:
        blocked = True
    rows.append(("replayed quote, swapped binding", blocked, "quote signature check"))

    # Attack 5: stale binding — genuine quote but a different handshake value.
    try:
        deployment.service_provisioner.provision_signing_key(
            b"stale-session", attacker_dh_public, genuine_quote
        )
        blocked = False
    except AttestationError:
        blocked = True
    rows.append(("genuine quote, wrong DH value", blocked, "report-data binding check"))

    # Attack 6: revoked platform.
    revoked_client = ClientDevice(
        "revoked", deployment.image, deployment.attestation,
        seed=seed + b":revoked", data=LocalDataStore(),
    )
    deployment.attestation.revoke_platform(revoked_client.platform.platform_id)
    try:
        revoked_client.provision_signing_key(deployment.service_provisioner)
        blocked = False
    except AttestationError:
        blocked = True
    rows.append(("revoked platform", blocked, "revocation list"))

    # Attack 7: debug-mode glimmer (inspectable; must never hold keys).
    debug_image = EnclaveImage.build(
        deployment.image.program_class, deployment.vendor,
        name=GLIMMER_NAME, config=deployment.image.config, debug=True,
    )
    debug_client = ClientDevice(
        "debug", debug_image, deployment.attestation,
        seed=seed + b":debug", data=LocalDataStore(),
    )
    try:
        debug_client.provision_signing_key(deployment.service_provisioner)
        blocked = False
    except AttestationError:
        blocked = True
    rows.append(("debug-mode glimmer", blocked, "debug attribute policy"))

    # Attack 8: the host exfiltrates the sealed signing-key blob (which it
    # legitimately stores for the Glimmer) to a thief enclave of its own.
    sealed_blob = honest.provision_signing_key(deployment.service_provisioner)

    class ThiefProgram(EnclaveProgram):
        @ecall
        def try_unseal(self, blob):
            return self.api.unseal(blob)

    thief_image = EnclaveImage.build(ThiefProgram, deployment.vendor)
    thief = honest.platform.load_enclave(thief_image)
    try:
        thief.ecall("try_unseal", sealed_blob)
        blocked = False
    except (SealingError, EnclaveError):
        blocked = True
    rows.append(("sealed key stolen by other enclave", blocked, "mrenclave sealing policy"))

    return AttestationResult(rows=rows)
