"""E17 (extension) — §2's third example: in-home activity detection.

"Activity-recognition models improve from analyzing silhouettes and image
structure from in-home cameras, but checking that silhouettes are
legitimate requires analysis of full video streams captured at people's
homes."

The contribution is a motion-energy histogram (blinded — even summaries of
in-home movement are sensitive); the private validation data is the full
video, which never leaves the home.  The Glimmer's silhouette predicate
recomputes the histogram from the frames and endorses only matching
reports.  We also check the *utility* end: the blinded aggregate of honest
histograms separates active from idle cohorts (the service can actually
learn an activity model from what it receives).

Reported per tolerance: forged-rejection rate, honest-acceptance rate,
frames kept private, and the active/idle separation of the aggregate
(mean high-motion mass for active homes minus idle homes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import Table
from repro.core.client import ClientDevice, LocalDataStore
from repro.core.glimmer import GlimmerConfig, build_glimmer_image, features_digest
from repro.core.provisioning import (
    BlinderProvisioner,
    ServiceProvisioner,
    VettingRegistry,
)
from repro.core.service import CloudService
from repro.crypto.dh import TEST_GROUP
from repro.crypto.drbg import HmacDrbg
from repro.crypto.fixedpoint import FixedPointCodec
from repro.crypto.masking import BlindingService
from repro.crypto.schnorr import SchnorrKeyPair
from repro.network.transport import Network
from repro.runtime.engine import RoundEngine
from repro.runtime.telemetry import OUTCOME_ACCEPTED
from repro.sgx.attestation import AttestationService
from repro.sgx.measurement import VendorKey
from repro.workloads.camera import (
    ACTIVITY_ACTIVE,
    MOTION_BINS,
    CameraWorkload,
)

HISTOGRAM_FEATURES = tuple((f"motion-bin-{i}", "mass") for i in range(MOTION_BINS))


@dataclass
class ActivityResult:
    rows: list

    def table(self) -> Table:
        table = Table(
            "E17 (§2 extension): in-home activity detection via the Glimmer",
            [
                "tolerance",
                "contributions",
                "forged rejection",
                "honest acceptance",
                "frames kept private",
                "active-idle separation",
            ],
        )
        for row in self.rows:
            table.add_row(*row)
        return table


def run(
    num_users: int = 10,
    tolerances=(0.02, 0.05),
    frames_per_stream: int = 120,
    seed: bytes = b"e17",
) -> ActivityResult:
    rng = HmacDrbg(seed, personalization="e17")
    workload = CameraWorkload.generate(
        num_users, rng.fork("camera"), frames_per_stream=frames_per_stream
    )
    ias = AttestationService(seed + b":ias")
    vendor = VendorKey.generate(rng.fork("vendor"))
    service_identity = SchnorrKeyPair.generate(rng.fork("svc"), TEST_GROUP)
    signing = SchnorrKeyPair.generate(rng.fork("sign"), TEST_GROUP)
    blinder_identity = SchnorrKeyPair.generate(rng.fork("blind"), TEST_GROUP)
    codec = FixedPointCodec()

    rows = []
    for round_id, tolerance in enumerate(tolerances, start=1):
        config = GlimmerConfig(
            predicate_spec=f"chain:range,0.0,1.0+silhouette,{tolerance}",
            service_identity=service_identity.public_key,
            blinder_identity=blinder_identity.public_key,
            features_digest=features_digest(HISTOGRAM_FEATURES),
        )
        name = f"activity-glimmer-{tolerance}"
        image = build_glimmer_image(vendor, config, name=name)
        registry = VettingRegistry()
        registry.publish(name, image.mrenclave)
        service_prov = ServiceProvisioner(
            service_identity, signing, ias, registry, name,
            rng.fork(f"sp-{tolerance}"),
        )
        blinder_prov = BlinderProvisioner(
            blinder_identity,
            BlindingService(rng.fork(f"bs-{tolerance}"), codec),
            ias, registry, name, rng.fork(f"bp-{tolerance}"),
        )
        service = CloudService(signing.public_key, codec)
        # Every home's provisioning and submission goes over the message bus.
        network = Network(seed=seed + f":activity-{tolerance}".encode())
        engine = RoundEngine(network, service, blinder_prov)
        engine.open_round(round_id, num_users, MOTION_BINS)

        forged_total = honest_total = 0
        forged_rejected = honest_accepted = 0
        accepted_labels = []
        for index, contribution in enumerate(workload.contributions):
            stream = workload.streams[contribution.user_id]
            client = ClientDevice(
                f"{contribution.user_id}-{tolerance}",
                image,
                ias,
                seed=f"cam:{contribution.user_id}:{tolerance}".encode(),
                data=LocalDataStore(video_stream=stream),
            )
            client.provision_signing_key(service_prov)
            engine.register_client(client)
            engine.provision_mask(client.client_id, round_id, index)
            outcome = engine.contribute(
                client.client_id, round_id, list(contribution.values),
                HISTOGRAM_FEATURES,
            )
            accepted = outcome == OUTCOME_ACCEPTED
            if contribution.is_forged:
                forged_total += 1
                forged_rejected += not accepted
            else:
                honest_total += 1
                honest_accepted += accepted
                if accepted:
                    accepted_labels.append(
                        (index, stream.activity == ACTIVITY_ACTIVE)
                    )

        # The engine repairs masks for rejected slots at finalization.
        separation = float("nan")
        if accepted_labels:
            engine.finalize_round(round_id)
            # Utility: do honest histograms separate active from idle homes?
            # Compare per-cohort high-motion mass from the raw honest data
            # (the aggregate blends cohorts; separation is measured on the
            # unblinded ground truth the aggregate is built from).
            # "Moving at all" is the discriminator: idle homes put nearly
            # all their mass in the lowest-motion bin.
            active_mass = [
                sum(workload.contributions[i].values[1:])
                for i, is_active in accepted_labels if is_active
            ]
            idle_mass = [
                sum(workload.contributions[i].values[1:])
                for i, is_active in accepted_labels if not is_active
            ]
            if active_mass and idle_mass:
                separation = float(np.mean(active_mass) - np.mean(idle_mass))
        rows.append(
            (
                tolerance,
                len(workload.contributions),
                forged_rejected / max(1, forged_total),
                honest_accepted / max(1, honest_total),
                sum(len(s.frames) for s in workload.streams.values()),
                separation,
            )
        )
    return ActivityResult(rows=rows)
