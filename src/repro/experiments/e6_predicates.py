"""E6 — §2's trade-off: predicate complexity vs. adversary cost.

"While more invasive validation increases the complexity and resources
required by the Glimmer, it also increases the adversary's cost to cheat
undetected, since she now has to fabricate keyboard activity or program
executions that corroborate her deceptive inputs."

We run a ladder of three Glimmer configurations against a ladder of three
attacks and report, per cell: whether the attack was detected, the
Glimmer-side validation cycles, and the adversary's fabrication effort
(simulated work units to build the forged evidence).  The expected shape:
each predicate rung defeats the attacks below its sophistication and costs
more cycles; the adversary's cost to *still* cheat rises with each rung —
and never reaches zero detection risk for free.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import Table
from repro.core.predicates import trace_commitment
from repro.core.validation import PrivateContext, default_registry
from repro.crypto.drbg import HmacDrbg
from repro.federated.model import FeatureSpace
from repro.federated.poisoning import Poisoner
from repro.federated.trainer import LocalTrainer
from repro.workloads.keyboard import (
    empty_trace,
    robotic_trace_for_sentences,
    trace_for_sentences,
)
from repro.workloads.text import KeyboardCorpus

PREDICATE_LADDER = (
    ("range", "range:0.0:1.0"),
    ("range+keystrokes", "chain:range,0.0,1.0+keystrokes,0.15"),
    ("range+exec-trace", "chain:range,0.0,1.0+exec-trace,0.02"),
)


@dataclass
class AttackPlan:
    """One adversary strategy: values + the evidence they fabricate."""

    name: str
    values: list
    context: PrivateContext
    claims: dict
    fabrication_effort: int


@dataclass
class PredicateLadderResult:
    rows: list

    def table(self) -> Table:
        table = Table(
            "E6 (§2): predicate complexity vs. adversary cost",
            [
                "predicate",
                "attack",
                "detected",
                "glimmer cycles",
                "adversary effort",
            ],
        )
        for row in self.rows:
            table.add_row(*row)
        return table


def _attack_plans(features: FeatureSpace, rng: HmacDrbg) -> list[AttackPlan]:
    poisoner = Poisoner(features, [features.bigrams[0]])
    zero = [0.0] * len(features)

    # Rung-0 attack: the literal 538 — no evidence at all.
    magnitude = poisoner.magnitude_attack(zero, 538.0)

    # Rung-1 attack: in-range boost, zero-effort (empty) evidence.
    boost = poisoner.boost_in_range_attack(zero, 1.0)

    # Rung-1.5 attack: in-range boost with a cheap robotic trace typed to match.
    boost_sentences = [[left, right] for left, right in [features.bigrams[0]]] * 20
    robotic = robotic_trace_for_sentences(boost_sentences)

    # Rung-2 attack: fully fabricated consistent execution — human-statistics
    # trace, matching sentences, and a correct trace commitment.  Expensive.
    fabricated = poisoner.fabricated_consistent_attack(repetitions=30)
    human_trace = trace_for_sentences(fabricated.forged_sentences, rng.fork("forge"))
    fabricated_claims = {
        "trace_commitment": trace_commitment(
            fabricated.forged_sentences, list(fabricated.vector)
        )
    }

    return [
        AttackPlan(
            name="magnitude 538 (no evidence)",
            values=list(magnitude.vector),
            context=PrivateContext(keystroke_trace=empty_trace(), sentences=[]),
            claims={},
            fabrication_effort=0,
        ),
        AttackPlan(
            name="in-range boost (no evidence)",
            values=list(boost.vector),
            context=PrivateContext(keystroke_trace=empty_trace(), sentences=[]),
            claims={},
            fabrication_effort=0,
        ),
        AttackPlan(
            name="in-range boost (robotic trace)",
            values=list(boost.vector),
            context=PrivateContext(
                keystroke_trace=robotic, sentences=boost_sentences
            ),
            claims={},
            fabrication_effort=len(robotic.events),
        ),
        AttackPlan(
            name="fabricated consistent execution",
            values=list(fabricated.vector),
            context=PrivateContext(
                keystroke_trace=human_trace,
                sentences=fabricated.forged_sentences,
            ),
            claims=fabricated_claims,
            fabrication_effort=fabricated.fabrication_effort
            + len(human_trace.events) * 10,
        ),
    ]


def run(
    num_users: int = 4, sentences_per_user: int = 20, seed: bytes = b"e6"
) -> PredicateLadderResult:
    rng = HmacDrbg(seed, personalization="e6")
    corpus = KeyboardCorpus.generate(
        num_users, rng.fork("corpus"), sentences_per_user=sentences_per_user
    )
    features = FeatureSpace.from_corpus(corpus.all_sentences())
    registry = default_registry()
    plans = _attack_plans(features, rng)

    # Also include the honest client as a false-positive control.
    honest_user = corpus.users[0].user_id
    honest_sentences = corpus.streams[honest_user]
    trainer = LocalTrainer(features)
    honest_vector = list(trainer.train(honest_sentences).contribution())
    honest_trace = trace_for_sentences(honest_sentences, rng.fork("honest"))
    honest_plan = AttackPlan(
        name="honest client (control)",
        values=honest_vector,
        context=PrivateContext(
            keystroke_trace=honest_trace, sentences=honest_sentences
        ),
        claims={
            "trace_commitment": trace_commitment(honest_sentences, honest_vector)
        },
        fabrication_effort=0,
    )

    rows = []
    for predicate_name, spec in PREDICATE_LADDER:
        predicate = registry.build(spec)
        for plan in [honest_plan] + plans:
            context = PrivateContext(
                sentences=plan.context.sentences,
                keystroke_trace=plan.context.keystroke_trace,
                extra={"features": features.bigrams, **plan.claims},
            )
            outcome = predicate.evaluate(plan.values, context)
            detected = not outcome.passed
            rows.append(
                (
                    predicate_name,
                    plan.name,
                    detected,
                    outcome.cycles,
                    plan.fabrication_effort,
                )
            )
    return PredicateLadderResult(rows=rows)
