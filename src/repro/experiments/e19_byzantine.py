"""E19 (extension) — Byzantine availability: detect, blame, quarantine.

E18 showed the runtime is exact-or-abort when the environment *fails*;
this experiment shows the same holds when parties actively *lie*.  For
each attacker mix it installs the :mod:`repro.byzantine` actors on a
fresh deployment and drives several full rounds through the engine,
tallying how each ended:

* **exact finalizes** — the round produced an aggregate equal, bit for
  bit, to the fixed-point mean over exactly the honest contributions
  that stayed accepted (a misbehaving client may have been evicted and
  its slot repaired on the way);
* **detected aborts** — the round aborted with at least one
  :class:`~repro.runtime.protocol.ViolationRecord` naming the offender
  (the only possible ending once the blinding service or aggregator
  itself cheats);
* **undetected corruption** — a finalized-but-wrong aggregate.  The
  design target, asserted by the claims table, is **zero** such rounds
  for every mix.

Rounds within a mix share one deployment, so the quarantine column also
shows the misbehaving client being excluded from every later round.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import Table
from repro.byzantine import (
    ATTACK_BLINDER_FORGED_CLAIMS,
    ATTACK_BLINDER_TAMPER_DELIVERY,
    ATTACK_BLINDER_TAMPER_REVEAL,
    ATTACK_EQUIVOCATE,
    ATTACK_FLOOD,
    ATTACK_FORGE,
    ATTACK_REPLAY,
    ATTACK_SERVICE_CORRUPT,
    ATTACK_SERVICE_OMIT,
    OUTCOME_BENIGN_ABORT,
    OUTCOME_CLEAN,
    OUTCOME_DETECTED_ABORT,
    OUTCOME_EXACT,
    OUTCOME_UNDETECTED_CORRUPTION,
    AttackPlan,
    AttackSpec,
    install_attacks,
    run_byzantine_round,
)
from repro.crypto.drbg import HmacDrbg
from repro.experiments.common import Deployment


@dataclass
class ByzantineAvailabilityResult:
    rows: list
    undetected_total: int

    def table(self) -> Table:
        table = Table(
            "E19 (extension): exact-or-blamed-abort under Byzantine actors",
            [
                "attacker mix",
                "rounds",
                "exact finalized",
                "detected aborts",
                "benign aborts",
                "undetected corruption",
                "violations",
                "offenders blamed",
                "quarantined",
            ],
        )
        for row in self.rows:
            table.add_row(*row)
        return table


def _mixes(user_ids, rng) -> list[tuple[str, AttackPlan]]:
    """The attacker mixes swept, from honest baseline to sampled cocktails."""
    attacker = user_ids[0]
    named = [
        ("honest baseline", AttackPlan()),
        ("forging client", (ATTACK_FORGE, attacker)),
        ("replaying client", (ATTACK_REPLAY, attacker)),
        ("equivocating client", (ATTACK_EQUIVOCATE, attacker)),
        ("flooding client", (ATTACK_FLOOD, attacker)),
        ("lying blinder: tampered delivery", (ATTACK_BLINDER_TAMPER_DELIVERY, None)),
        ("lying blinder: tampered reveal", (ATTACK_BLINDER_TAMPER_REVEAL, None)),
        ("lying blinder: non-sum-zero", (ATTACK_BLINDER_FORGED_CLAIMS, None)),
        ("tampering aggregator: corrupt", (ATTACK_SERVICE_CORRUPT, None)),
        ("tampering aggregator: omit", (ATTACK_SERVICE_OMIT, None)),
    ]
    mixes: list[tuple[str, AttackPlan]] = []
    for label, plan in named:
        if not isinstance(plan, AttackPlan):
            kind, target = plan
            plan = AttackPlan(
                specs=(AttackSpec(kind=kind, target=target),), label=label
            )
        mixes.append((label, plan))
    mixes.append(
        (
            "sampled cocktail",
            AttackPlan.sample(
                rng.fork("cocktail"), clients=user_ids, label="sampled cocktail"
            ),
        )
    )
    return mixes


def run(
    num_users: int = 5,
    rounds_per_mix: int = 4,
    seed: bytes = b"e19",
) -> ByzantineAvailabilityResult:
    rng = HmacDrbg(seed, personalization="e19")
    rows = []
    undetected_total = 0
    base = Deployment.build(
        num_users=num_users, seed=seed + b":mixes", sentences_per_user=12
    )
    mix_list = _mixes([user.user_id for user in base.corpus.users], rng)
    for label, plan in mix_list:
        deployment = Deployment.build(
            num_users=num_users,
            seed=seed + b":" + label.encode(),
            sentences_per_user=12,
        )
        user_ids = [user.user_id for user in deployment.corpus.users]
        install_attacks(deployment, plan, rng.fork(f"install:{label}"))
        exact = detected = benign = undetected = violations = 0
        offenders: set[str] = set()
        quarantined: set[str] = set()
        for round_id in range(1, rounds_per_mix + 1):
            result = run_byzantine_round(deployment, round_id, user_ids, plan)
            violations += len(result.report.violations)
            offenders.update(result.offenders)
            quarantined.update(result.report.quarantined)
            if result.outcome in (OUTCOME_CLEAN, OUTCOME_EXACT):
                exact += 1
            elif result.outcome == OUTCOME_DETECTED_ABORT:
                detected += 1
            elif result.outcome == OUTCOME_BENIGN_ABORT:
                benign += 1
            elif result.outcome == OUTCOME_UNDETECTED_CORRUPTION:
                undetected += 1
        undetected_total += undetected
        rows.append(
            (
                label,
                rounds_per_mix,
                exact,
                detected,
                benign,
                undetected,
                violations,
                ", ".join(sorted(offenders)) or "—",
                ", ".join(sorted(quarantined)) or "—",
            )
        )
    return ByzantineAvailabilityResult(rows=rows, undetected_total=undetected_total)
