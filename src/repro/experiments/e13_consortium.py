"""E13 (extension) — §2's consortium alternative, priced against SGX.

The paper: a consortium of privacy advocates "could, in ensemble, perform
validation and blinding ... However, the deployment cost for such a
solution would be high."  We built the ensemble
(:mod:`repro.core.consortium`) and measure what "high" means, against the
SGX Glimmer on the same workload:

* **messages per contribution** — the consortium needs one round trip per
  member plus the service submission; the SGX Glimmer needs none (local
  enclave) beyond the submission;
* **validation work** — every member re-runs the predicate (n× the
  compute), vs. once in the enclave;
* **availability** — a single unavailable member stalls a contribution
  (all mask shares are needed), measured under a member-failure sweep;
* **trust shift** — members see raw contributions; the quorum hides the
  user from the *service* but not from the consortium.  Reported as the
  count of parties that see plaintext.

Both deployments agree on the aggregate (exactness cross-checked).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import Table
from repro.core.consortium import ConsortiumService, build_consortium
from repro.core.validation import PrivateContext
from repro.errors import ProtocolError
from repro.experiments.common import Deployment


@dataclass
class ConsortiumResult:
    rows: list
    aggregate_agreement: float

    def table(self) -> Table:
        table = Table(
            "E13 (§2 extension): SGX Glimmer vs. consortium ensemble",
            [
                "deployment",
                "member failure rate",
                "msgs/contribution",
                "validations/contribution",
                "plaintext visible to",
                "contributions completed",
            ],
        )
        for row in self.rows:
            table.add_row(*row)
        return table


def run(
    num_users: int = 8,
    num_members: int = 5,
    quorum: int = 3,
    failure_rates=(0.0, 0.2),
    seed: bytes = b"e13",
) -> ConsortiumResult:
    deployment = Deployment.build(num_users=num_users, seed=seed)
    features = deployment.features
    vectors = deployment.local_vectors()
    user_ids = [user.user_id for user in deployment.corpus.users]

    # ---- the SGX Glimmer reference -------------------------------------
    deployment.open_round(1, user_ids)
    for user_id in user_ids:
        signed = deployment.clients[user_id].contribute(
            1, list(vectors[user_id]), features.bigrams
        )
        deployment.service.submit(1, signed)
    sgx_aggregate = deployment.service.finalize_blinded_round(1).aggregate
    rows = [
        (
            "sgx glimmer (on-device)",
            0.0,
            1,  # just the signed submission
            1,  # one in-enclave validation
            "nobody (enclave only)",
            f"{num_users}/{num_users}",
        )
    ]

    # ---- the consortium, with failure injection ------------------------
    consortium_aggregate = None
    for failure_rate in failure_rates:
        rng = deployment.rng.fork(f"consortium-{failure_rate}")
        members = build_consortium(
            num_members, "range:0.0:1.0", rng, deployment.codec
        )
        service = ConsortiumService(
            {m.name: m.identity.public_key for m in members},
            quorum=quorum,
            codec=deployment.codec,
        )
        for member in members:
            member.open_round(1, num_users, len(features))
        service.open_round(1, num_users)
        completed = 0
        messages = 0
        validations = 0
        accepted_indices = []
        for index, user_id in enumerate(user_ids):
            endorsements = []
            stalled = False
            for member in members:
                member.available = rng.uniform() >= failure_rate
                messages += 1  # the attempt costs a round trip either way
                try:
                    endorsements.append(
                        member.endorse(
                            1, index, list(vectors[user_id]), PrivateContext()
                        )
                    )
                    validations += 1
                except ProtocolError:
                    stalled = True
            messages += 1  # submission to the service
            if stalled:
                continue  # missing shares: the bundle cannot be completed
            if service.submit(1, index, endorsements):
                completed += 1
                accepted_indices.append(index)
        rows.append(
            (
                f"consortium ({num_members} members, quorum {quorum})",
                failure_rate,
                num_members + 1,
                num_members,
                f"all {num_members} members",
                f"{completed}/{num_users}",
            )
        )
        if failure_rate == 0.0 and completed:
            consortium_aggregate = service.finalize_round(1)

    agreement = float("nan")
    if consortium_aggregate is not None:
        agreement = float(np.max(np.abs(consortium_aggregate - sgx_aggregate)))
    return ConsortiumResult(rows=rows, aggregate_agreement=agreement)
