"""E3 — Figure 1c: secure aggregation hides individuals, keeps the sum exact.

Two blinding schemes, both cited in §3, run over the same cohort:

* the paper's own construction — a trusted blinding service distributing
  sum-zero masks (``y_i = x_i + p_i``, Σp = 0), with dropout repair by
  disclosing the missing masks;
* Bonawitz et al.'s decentralized pairwise masking with Shamir recovery.

For each scheme and dropout rate we report: the maximum error between the
recovered aggregate and the true mean of the submitted contributions
(exactness), and the inversion attacker's accuracy against the *blinded*
per-user vectors (privacy — should sit at chance, unlike E2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import Table
from repro.crypto.drbg import HmacDrbg
from repro.crypto.dh import TEST_GROUP
from repro.crypto.fixedpoint import FixedPointCodec
from repro.crypto.masking import BlindingService, apply_mask
from repro.crypto.secagg import SecureAggregationClient, SecureAggregationServer
from repro.federated.inversion import InversionAttacker
from repro.federated.model import FeatureSpace
from repro.federated.trainer import LocalTrainer
from repro.workloads.text import KeyboardCorpus, stance_evidence


@dataclass
class SecureAggResult:
    rows: list

    def table(self) -> Table:
        table = Table(
            "E3 (Fig. 1c): secure aggregation — exact sums, chance-level inversion",
            [
                "scheme",
                "users",
                "dropout rate",
                "aggregate max error",
                "inversion acc (blinded)",
                "inversion acc (plain, for contrast)",
            ],
        )
        for row in self.rows:
            table.add_row(*row)
        return table


def _blinding_service_round(vectors, dropouts, codec, rng):
    """Run the §3 sum-zero scheme; returns (aggregate, blinded-per-user)."""
    user_ids = list(vectors)
    length = len(next(iter(vectors.values())))
    service = BlindingService(rng.fork("blinding"), codec)
    service.open_round(1, len(user_ids), length)
    blinded = {}
    submitted = []
    for index, user_id in enumerate(user_ids):
        mask = service.mask_for(1, index)
        blind_vector = apply_mask(codec.encode(list(vectors[user_id])), mask)
        blinded[user_id] = np.array(codec.decode(blind_vector))
        if user_id not in dropouts:
            submitted.append(blind_vector)
    total = codec.sum_vectors(submitted)
    for index, user_id in enumerate(user_ids):
        if user_id in dropouts:
            total = apply_mask(total, service.mask_for_dropout(1, index))
    aggregate = codec.decode(total) / (len(user_ids) - len(dropouts))
    return aggregate, blinded


def _bonawitz_round(vectors, dropouts, codec, rng):
    """Run pairwise-mask secure aggregation; returns (aggregate, masked-per-user)."""
    user_ids = list(vectors)
    threshold = max(2, (2 * len(user_ids)) // 3)
    server = SecureAggregationServer(codec, group=TEST_GROUP)
    clients = {
        user_id: SecureAggregationClient(
            index, rng.fork(f"sa-{index}"), codec, group=TEST_GROUP
        )
        for index, user_id in enumerate(user_ids)
    }
    roster = server.register([c.advertise() for c in clients.values()], threshold)
    messages = []
    for client in clients.values():
        messages.extend(client.share_keys(roster, threshold))
    routed = SecureAggregationServer.route_shares(messages)
    for client in clients.values():
        client.receive_shares(routed.get(client.client_id, []))
    masked = {}
    for user_id, client in clients.items():
        vector = client.masked_input(codec.encode(list(vectors[user_id])))
        masked[user_id] = np.array(codec.decode(vector))
        if user_id not in dropouts:
            server.collect_masked_input(client.client_id, vector)
    survivors, dropped = server.survivor_sets()
    responses = {
        client.client_id: client.unmask_response(survivors, dropped)
        for user_id, client in clients.items()
        if client.client_id in survivors
    }
    aggregate = np.array(server.aggregate(responses)) / len(survivors)
    return aggregate, masked


def run(
    num_users: int = 12,
    dropout_rates=(0.0, 0.25),
    sentences_per_user: int = 30,
    seed: bytes = b"e3",
) -> SecureAggResult:
    rng = HmacDrbg(seed, personalization="e3")
    corpus = KeyboardCorpus.generate(
        num_users, rng.fork("corpus"), sentences_per_user=sentences_per_user
    )
    features = FeatureSpace.from_corpus(corpus.all_sentences())
    trainer = LocalTrainer(features)
    vectors = {
        user.user_id: trainer.train(corpus.streams[user.user_id]).contribution()
        for user in corpus.users
    }
    labels = corpus.labels()
    attacker = InversionAttacker(features, stance_evidence())
    plain_accuracy = attacker.accuracy(vectors, labels)

    rows = []
    for scheme, runner in (
        ("sum-zero blinding service (§3)", _blinding_service_round),
        ("pairwise secagg (Bonawitz)", _bonawitz_round),
    ):
        for rate in dropout_rates:
            num_drop = int(round(rate * num_users))
            dropouts = set(list(vectors)[:num_drop])
            aggregate, blinded = runner(
                vectors, dropouts, FixedPointCodec(), rng.fork(f"{scheme}-{rate}")
            )
            survivors = [u for u in vectors if u not in dropouts]
            truth = np.mean(np.stack([vectors[u] for u in survivors]), axis=0)
            error = float(np.max(np.abs(aggregate - truth)))
            blinded_accuracy = attacker.accuracy(blinded, labels)
            rows.append(
                (scheme, num_users, rate, error, blinded_accuracy, plain_accuracy)
            )
    return SecureAggResult(rows=rows)
