"""E3 — Figure 1c: secure aggregation hides individuals, keeps the sum exact.

Two blinding schemes, both cited in §3, run over the same cohort:

* the paper's own construction — a trusted blinding service distributing
  sum-zero masks (``y_i = x_i + p_i``, Σp = 0), with dropout repair by
  disclosing the missing masks.  This arm runs end-to-end over the
  message bus: the :class:`~repro.runtime.engine.RoundEngine` provisions
  masks and collects signed submissions through the simulated transport
  while an eavesdropper records every wire payload — the "blinded
  per-user vectors" the inversion attacker gets are exactly the bytes an
  on-path observer saw;
* Bonawitz et al.'s decentralized pairwise masking with Shamir recovery
  (run directly; it is the contrast scheme, not Glimmer traffic).

For each scheme and dropout rate we report: the maximum error between the
recovered aggregate and the true mean of the submitted contributions
(exactness), and the inversion attacker's accuracy against the *blinded*
per-user vectors (privacy — should sit at chance, unlike E2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import Table
from repro.crypto.drbg import HmacDrbg
from repro.crypto.dh import TEST_GROUP
from repro.crypto.fixedpoint import FixedPointCodec
from repro.crypto.secagg import SecureAggregationClient, SecureAggregationServer
from repro.experiments.common import Deployment
from repro.federated.inversion import InversionAttacker
from repro.network.adversary import EavesdropAdversary
from repro.runtime.messages import KIND_SUBMIT, client_endpoint
from repro.workloads.text import stance_evidence


@dataclass
class SecureAggResult:
    rows: list

    def table(self) -> Table:
        table = Table(
            "E3 (Fig. 1c): secure aggregation — exact sums, chance-level inversion",
            [
                "scheme",
                "users",
                "dropout rate",
                "aggregate max error",
                "inversion acc (blinded)",
                "inversion acc (plain, for contrast)",
            ],
        )
        for row in self.rows:
            table.add_row(*row)
        return table


def _captured_blinded(eavesdropper, codec, round_id, user_ids):
    """Per-user blinded vectors as an on-path observer decoded them."""
    blinded: dict[str, np.ndarray] = {}
    for message in eavesdropper.captured:
        if message.kind != KIND_SUBMIT:
            continue
        contribution = message.payload.contribution
        if contribution.round_id != round_id or contribution.ring_payload is None:
            continue
        for user_id in user_ids:
            if message.sender == client_endpoint(user_id):
                blinded.setdefault(
                    user_id, np.array(codec.decode(list(contribution.ring_payload)))
                )
    return blinded


def _bonawitz_round(vectors, dropouts, codec, rng):
    """Run pairwise-mask secure aggregation; returns (aggregate, masked-per-user)."""
    user_ids = list(vectors)
    threshold = max(2, (2 * len(user_ids)) // 3)
    server = SecureAggregationServer(codec, group=TEST_GROUP)
    clients = {
        user_id: SecureAggregationClient(
            index, rng.fork(f"sa-{index}"), codec, group=TEST_GROUP
        )
        for index, user_id in enumerate(user_ids)
    }
    roster = server.register([c.advertise() for c in clients.values()], threshold)
    messages = []
    for client in clients.values():
        messages.extend(client.share_keys(roster, threshold))
    routed = SecureAggregationServer.route_shares(messages)
    for client in clients.values():
        client.receive_shares(routed.get(client.client_id, []))
    masked = {}
    for user_id, client in clients.items():
        vector = client.masked_input(codec.encode(list(vectors[user_id])))
        masked[user_id] = np.array(codec.decode(vector))
        if user_id not in dropouts:
            server.collect_masked_input(client.client_id, vector)
    survivors, dropped = server.survivor_sets()
    responses = {
        client.client_id: client.unmask_response(survivors, dropped)
        for user_id, client in clients.items()
        if client.client_id in survivors
    }
    aggregate = np.array(server.aggregate(responses)) / len(survivors)
    return aggregate, masked


def run(
    num_users: int = 12,
    dropout_rates=(0.0, 0.25),
    sentences_per_user: int = 30,
    seed: bytes = b"e3",
) -> SecureAggResult:
    rng = HmacDrbg(seed, personalization="e3")
    deployment = Deployment.build(
        num_users=num_users, seed=seed, sentences_per_user=sentences_per_user
    )
    eavesdropper = EavesdropAdversary()
    deployment.network.interpose(eavesdropper)
    vectors = deployment.local_vectors()
    user_ids = [user.user_id for user in deployment.corpus.users]
    labels = deployment.corpus.labels()
    attacker = InversionAttacker(deployment.features, stance_evidence())
    plain_accuracy = attacker.accuracy(vectors, labels)

    rows = []
    # ---- §3 sum-zero blinding service, end-to-end over the bus -------------
    for round_id, rate in enumerate(dropout_rates, start=1):
        num_drop = int(round(rate * num_users))
        dropouts = user_ids[:num_drop]
        report = deployment.engine.run_round(
            round_id,
            user_ids,
            vectors,
            deployment.features.bigrams,
            dropouts=dropouts,
        )
        survivors = [u for u in user_ids if u not in dropouts]
        truth = np.mean(np.stack([vectors[u] for u in survivors]), axis=0)
        error = float(np.max(np.abs(report.aggregate - truth)))
        blinded = _captured_blinded(
            eavesdropper, deployment.codec, round_id, user_ids
        )
        blinded_accuracy = attacker.accuracy(blinded, labels)
        rows.append(
            (
                "sum-zero blinding service (§3)",
                num_users,
                rate,
                error,
                blinded_accuracy,
                plain_accuracy,
            )
        )
    # ---- Bonawitz pairwise masking, for contrast ---------------------------
    for rate in dropout_rates:
        num_drop = int(round(rate * num_users))
        dropouts = set(user_ids[:num_drop])
        aggregate, masked = _bonawitz_round(
            vectors, dropouts, FixedPointCodec(), rng.fork(f"bonawitz-{rate}")
        )
        survivors = [u for u in user_ids if u not in dropouts]
        truth = np.mean(np.stack([vectors[u] for u in survivors]), axis=0)
        error = float(np.max(np.abs(aggregate - truth)))
        masked_accuracy = attacker.accuracy(masked, labels)
        rows.append(
            (
                "pairwise secagg (Bonawitz)",
                num_users,
                rate,
                error,
                masked_accuracy,
                plain_accuracy,
            )
        )
    return SecureAggResult(rows=rows)
