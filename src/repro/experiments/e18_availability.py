"""E18 (extension) — availability under injected faults, exact-or-abort.

The paper's §3 dropout story ("the blinding service can disclose the sums
of the blinding values from non-submitting parties") is a *repair* story:
rounds should survive real-world failure, not just polite dropout lists.
This experiment turns the crank on :mod:`repro.faults`: for each fault
rate it samples deterministic fault schedules — request and response
drops, client enclaves killed before or after signing, sealed-checkpoint
loss, blinding-service crashes at phase boundaries, EPC pressure — runs a
full round through the engine under each schedule, and tallies what came
out:

* **finalized exactly** — the round produced an aggregate, and it equals
  the fixed-point mean over exactly the accepted contributions (checked
  bit-for-bit against a direct codec computation);
* **aborted** — the round raised :class:`RoundAbortedError` with a
  partial report, publishing nothing;
* **inexact** — the failure mode the design forbids; the expected count
  is zero at every fault rate.

Repair and recovery machinery is also tallied: masks revealed for §3
repair, client enclaves restarted from sealed checkpoints, transport
retries, and total faults fired.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import Table
from repro.crypto.drbg import HmacDrbg
from repro.errors import RoundAbortedError
from repro.experiments.common import Deployment
from repro.faults import FaultInjector, FaultPlan
from repro.runtime.telemetry import OUTCOME_ACCEPTED


@dataclass
class AvailabilityResult:
    rows: list

    def table(self) -> Table:
        table = Table(
            "E18 (extension): round availability under injected faults",
            [
                "fault rate",
                "rounds",
                "finalized exactly",
                "aborted",
                "inexact",
                "success %",
                "masks repaired",
                "client restarts",
                "retries",
                "faults fired",
            ],
        )
        for row in self.rows:
            table.add_row(*row)
        return table


def _expected_aggregate(codec, vectors, accepted):
    """The ground truth: fixed-point mean over exactly ``accepted``."""
    encoded = [codec.encode(list(vectors[user_id])) for user_id in accepted]
    return codec.decode(codec.sum_vectors(encoded)) / len(encoded)


def run(
    num_users: int = 6,
    rounds_per_rate: int = 8,
    fault_rates=(0.0, 0.03, 0.08, 0.15),
    seed: bytes = b"e18",
) -> AvailabilityResult:
    rows = []
    for rate in fault_rates:
        deployment = Deployment.build(
            num_users=num_users,
            seed=seed + f":{rate}".encode(),
            sentences_per_user=15,
        )
        user_ids = [user.user_id for user in deployment.corpus.users]
        vectors = deployment.local_vectors()
        schedule_rng = HmacDrbg(seed, personalization=f"e18-plans:{rate}")
        finalized = aborted = inexact = 0
        repaired = restarts = retries = faults = 0
        for round_id in range(1, rounds_per_rate + 1):
            plan = FaultPlan.sample(
                schedule_rng.fork(f"round-{round_id}"),
                rate,
                clients=user_ids,
                rounds=(round_id,),
                label=f"rate={rate} round={round_id}",
            )
            injector = FaultInjector(
                plan, seed=seed + f":inject:{rate}:{round_id}".encode()
            )
            deployment.enable_faults(injector)
            try:
                report = deployment.engine.run_round(
                    round_id,
                    user_ids,
                    vectors,
                    deployment.features.bigrams,
                    recovery_threshold=0.25,
                )
            except RoundAbortedError:
                aborted += 1
                report = deployment.engine.reports[round_id]
                deployment.engine.abandon_round(round_id)
            else:
                accepted = [
                    u
                    for u in report.participants
                    if report.outcomes.get(u) == OUTCOME_ACCEPTED
                ]
                truth = _expected_aggregate(deployment.codec, vectors, accepted)
                if np.array_equal(np.asarray(report.aggregate), truth):
                    finalized += 1
                else:
                    inexact += 1
                repaired += report.masks_repaired
            restarts += report.client_restarts
            retries += report.retries
            faults += report.faults_injected
        total = rounds_per_rate
        rows.append(
            (
                rate,
                total,
                finalized,
                aborted,
                inexact,
                round(100.0 * finalized / total, 1),
                repaired,
                restarts,
                retries,
                faults,
            )
        )
    return AvailabilityResult(rows=rows)
