"""E11 — §1's photos-for-maps example: public contributions, private validation.

"Even if the actual user contributions are not themselves private, e.g.,
users photos associated with a location on a mapping service, validating
those contributions might require access by service code to otherwise
private data (e.g., location tracking through GPS and ambient WiFi, to
validate that the user did go to a claimed location)."

Here the contribution (the photo) is *not* blinded — it is meant to be
shared — but the validation data (the user's GPS track and camera
fingerprint) never leaves the device.  The Glimmer runs the geo predicate
and signs only corroborated photos; the photo digest rides inside the
signed values so the endorsement is bound to the photo.

Reported per corroboration radius: spoof-rejection rate, honest-acceptance
rate, and the privacy delta (track points that would otherwise ship to the
service).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import Table
from repro.core.client import ClientDevice, LocalDataStore
from repro.core.glimmer import GlimmerConfig, build_glimmer_image, features_digest
from repro.core.provisioning import ServiceProvisioner, VettingRegistry
from repro.crypto.dh import TEST_GROUP
from repro.crypto.drbg import HmacDrbg
from repro.crypto.hashing import hash_bytes
from repro.crypto.schnorr import SchnorrKeyPair
from repro.errors import ValidationError
from repro.sgx.attestation import AttestationService
from repro.sgx.measurement import VendorKey
from repro.workloads.geo import GeoWorkload, PhotoSubmission

# The "feature space" for photos: eight photo-digest bytes scaled to [0, 1],
# binding the endorsement to the photo content while passing a range check.
PHOTO_FEATURES = tuple((f"photo-digest-{i}", "byte") for i in range(8))


def photo_digest_values(photo: PhotoSubmission) -> list[float]:
    digest = hash_bytes(
        "photo-content",
        photo.photo_id.encode("utf-8") + photo.camera_fingerprint,
    )
    return [b / 255.0 for b in digest[:8]]


@dataclass
class PhotoMapsResult:
    rows: list

    def table(self) -> Table:
        table = Table(
            "E11 (§1): photos-for-maps — geo corroboration inside the Glimmer",
            [
                "radius (m)",
                "photos",
                "spoof rejection",
                "honest acceptance",
                "track points kept private",
            ],
        )
        for row in self.rows:
            table.add_row(*row)
        return table


def run(
    num_users: int = 8,
    radii=(10.0, 25.0, 80.0),
    seed: bytes = b"e11",
) -> PhotoMapsResult:
    rng = HmacDrbg(seed, personalization="e11")
    workload = GeoWorkload.generate(num_users, rng.fork("geo"))
    ias = AttestationService(seed + b":ias")
    vendor = VendorKey.generate(rng.fork("vendor"))
    service_identity = SchnorrKeyPair.generate(rng.fork("svc"), TEST_GROUP)
    signing = SchnorrKeyPair.generate(rng.fork("sign"), TEST_GROUP)
    blinder_identity = SchnorrKeyPair.generate(rng.fork("blind"), TEST_GROUP)

    rows = []
    for radius in radii:
        config = GlimmerConfig(
            predicate_spec=f"geo:{radius}",
            service_identity=service_identity.public_key,
            blinder_identity=blinder_identity.public_key,
            features_digest=features_digest(PHOTO_FEATURES),
        )
        image = build_glimmer_image(vendor, config, name=f"geo-glimmer-{radius}")
        registry = VettingRegistry()
        registry.publish(f"geo-glimmer-{radius}", image.mrenclave)
        provisioner = ServiceProvisioner(
            service_identity, signing, ias, registry,
            f"geo-glimmer-{radius}", rng.fork(f"sp-{radius}"),
        )
        clients = {}
        for user_id, context in workload.contexts.items():
            client = ClientDevice(
                f"{user_id}-{radius}",
                image,
                ias,
                seed=f"geo-client:{user_id}:{radius}".encode(),
                data=LocalDataStore(geo_context=context),
            )
            client.provision_signing_key(provisioner)
            clients[user_id] = client

        spoofed_total = honest_total = 0
        spoofed_rejected = honest_accepted = 0
        for photo in workload.submissions:
            client = clients[photo.user_id]
            try:
                signed = client.contribute(
                    round_id=1,
                    values=photo_digest_values(photo),
                    features=PHOTO_FEATURES,
                    blind=False,
                    claims={"submission": photo},
                )
                accepted = signing.public_key.is_valid(
                    signed.signed_bytes(), signed.signature
                )
            except ValidationError:
                accepted = False
            if photo.is_spoofed:
                spoofed_total += 1
                spoofed_rejected += not accepted
            else:
                honest_total += 1
                honest_accepted += accepted
        track_points = sum(len(c.track) for c in workload.contexts.values())
        rows.append(
            (
                radius,
                len(workload.submissions),
                spoofed_rejected / max(1, spoofed_total),
                honest_accepted / max(1, honest_total),
                track_points,
            )
        )
    return PhotoMapsResult(rows=rows)
