"""E14 (extension) — quantifying Input Confidentiality with differential privacy.

§2 demands that Glimmer "outputs leak a bounded amount of information about
private data, via encryption or aggregation."  Blinding makes individual
*messages* uninformative, but the *aggregate itself* still carries some
information about each user (E2 measured the aggregate-only attacker).  The
natural way to make the §2 bound quantitative is distributed differential
privacy: every Glimmer adds Gaussian noise **inside the enclave, before
blinding**, so the only value the service ever reconstructs — the noised
aggregate — satisfies (ε, δ)-DP for each contributor, enforced by measured
(attested!) code rather than by trusting the service.

We sweep the measured ``dp_sigma`` and report: the (ε, δ=1e-5) level of the
aggregate, utility (top-1 accuracy of the noised global model), aggregate
error vs. the noiseless mean, and the aggregate-only inversion advantage.
Expected shape: a privacy/utility dial — ε falls and so does utility, with
a sweet spot where the trending suggestion still works.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.privacy import gaussian_epsilon
from repro.analysis.reporting import Table
from repro.experiments.common import Deployment
from repro.federated.metrics import top1_accuracy
from repro.federated.model import BigramModel


@dataclass
class DpReleaseResult:
    rows: list

    def table(self) -> Table:
        table = Table(
            "E14 (extension): distributed DP inside the Glimmer — privacy dial",
            [
                "dp sigma (per client)",
                "epsilon (δ=1e-5)",
                "aggregate max error",
                "top1-accuracy",
                "predicts trump|donald",
            ],
        )
        for row in self.rows:
            table.add_row(*row)
        return table


def run(
    num_users: int = 10,
    sigmas=(0.0, 0.05, 0.2, 1.0, 5.0),
    seed: bytes = b"e14",
) -> DpReleaseResult:
    rows = []
    for sigma in sigmas:
        deployment = Deployment.build(
            num_users=num_users,
            seed=seed + str(sigma).encode(),
            dp_sigma=float(sigma),
        )
        features = deployment.features
        vectors = deployment.local_vectors()
        user_ids = [user.user_id for user in deployment.corpus.users]
        deployment.open_round(1, user_ids)
        for user_id in user_ids:
            signed = deployment.clients[user_id].contribute(
                1, list(vectors[user_id]), features.bigrams
            )
            deployment.service.submit(1, signed)
        aggregate = deployment.service.finalize_blinded_round(1).aggregate
        truth = np.mean(np.stack([vectors[u] for u in user_ids]), axis=0)
        error = float(np.max(np.abs(aggregate - truth)))

        # One user's weights lie in [0,1]^d, so replacing a user moves the
        # *mean* by at most sqrt(d)/N in L2; per-client noise sigma yields
        # aggregate noise sigma/sqrt(N).
        l2_sensitivity = math.sqrt(len(features)) / num_users
        aggregate_sigma = sigma / math.sqrt(num_users)
        epsilon = gaussian_epsilon(l2_sensitivity, aggregate_sigma)

        model = BigramModel.from_vector(features, np.clip(aggregate, 0.0, 1.0))
        holdout = deployment.corpus.holdout(deployment.rng.fork("holdout"))
        utility = top1_accuracy(model, holdout)
        trending = model.top_prediction("donald") == "trump"
        rows.append((sigma, epsilon, error, utility, trending))
    return DpReleaseResult(rows=rows)
