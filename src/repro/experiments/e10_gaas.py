"""E10 — §4.2: Glimmer-as-a-service across host placements.

A fleet of TEE-less IoT clients contributes through remote Glimmer hosts at
the three placements the paper names — "another device owned by the same
user (such as a set-top box ...), a local group of people ... (such as
their University ...), or even a well-known entity ... (such as the EFF)" —
priced as device-local, LAN, and WAN links respectively.

Per placement we report: mean end-to-end contribution latency (simulated),
acceptance by the service, and the security check that motivates the whole
design: a *malicious* host running non-Glimmer software fails the client's
attestation check, so no private data is ever sent to it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import Table
from repro.core.remote import IoTClient, RemoteGlimmerHost
from repro.core.validation import PrivateContext
from repro.errors import AttestationError
from repro.experiments.common import Deployment
from repro.network.clock import LAN_LATENCY, LOCAL_LATENCY, WAN_LATENCY
from repro.network.transport import Network
from repro.sgx.measurement import EnclaveImage
from repro.sgx.enclave import EnclaveProgram, ecall

PLACEMENTS = (
    ("set-top box (same home)", LOCAL_LATENCY),
    ("university server (LAN)", LAN_LATENCY),
    ("EFF (WAN)", WAN_LATENCY),
)


class NotAGlimmerProgram(EnclaveProgram):
    """What a malicious host substitutes: measures differently, so it fails vetting."""

    @ecall
    def begin_handshake(self, session_id: bytes) -> int:
        return 4  # a fixed, bogus "handshake value"


@dataclass
class GaasResult:
    rows: list
    malicious_host_blocked: bool

    def table(self) -> Table:
        table = Table(
            "E10 (§4.2): Glimmer-as-a-service — placement latency and safety",
            [
                "placement",
                "clients",
                "mean latency (ms)",
                "p95 latency (ms)",
                "all accepted",
            ],
        )
        for row in self.rows:
            table.add_row(*row)
        table.add_row(
            "malicious host (wrong software)", "-", "-", "-",
            self.malicious_host_blocked,
        )
        return table


def run(num_clients: int = 6, seed: bytes = b"e10") -> GaasResult:
    deployment = Deployment.build(num_users=4, seed=seed, provision_clients=False)
    features = deployment.features
    vectors = deployment.local_vectors()
    a_vector = list(next(iter(vectors.values())))

    rows = []
    round_counter = 0
    for placement, latency in PLACEMENTS:
        round_counter += 1
        network = Network(seed=seed + placement.encode(), latency=latency)
        host = RemoteGlimmerHost(
            "host", deployment.image, deployment.attestation, network,
            seed + b":host:" + placement.encode(),
        )
        host.provision_signing_key(deployment.service_provisioner)
        deployment.blinder_provisioner.open_round(
            round_counter, num_clients, len(features)
        )
        deployment.service.open_round(round_counter, num_clients)
        latencies = []
        accepted = 0
        for index in range(num_clients):
            host.provision_mask(deployment.blinder_provisioner, round_counter, index)
            client = IoTClient(
                f"iot-{placement}-{index}", network, deployment.attestation,
                deployment.registry, "keyboard-glimmer",
                seed + f":iot-{index}".encode(), group=deployment.group,
            )
            start = network.clock.now_ms()
            signed = client.contribute_via(
                "host", round_counter, a_vector, features.bigrams,
                PrivateContext(), party_index=index,
            )
            latencies.append(network.clock.now_ms() - start)
            accepted += deployment.service.submit(round_counter, signed)
        rows.append(
            (
                placement,
                num_clients,
                float(np.mean(latencies)),
                float(np.percentile(latencies, 95)),
                accepted == num_clients,
            )
        )

    # Malicious host: runs different software; client must refuse to send data.
    network = Network(seed=seed + b"mal", latency=LAN_LATENCY)
    fake_image = EnclaveImage.build(
        NotAGlimmerProgram, deployment.vendor, name="keyboard-glimmer"
    )
    from repro.sgx.platform import SgxPlatform
    from repro.sgx.attestation import report_data_for
    from repro.core.remote import AttestedOffer

    platform = SgxPlatform(seed + b":malhost", attestation_service=deployment.attestation)
    fake_enclave = platform.load_enclave(fake_image)

    def malicious_attest(message):
        public = fake_enclave.ecall("begin_handshake", b"x")
        quote = platform.quote_enclave(
            fake_enclave, report_data_for(int(public).to_bytes(256, "big"))
        )
        return AttestedOffer(session_id=b"x", dh_public=public, quote=quote)

    network.register("host", {"attest-glimmer": malicious_attest})
    client = IoTClient(
        "iot-victim", network, deployment.attestation, deployment.registry,
        "keyboard-glimmer", seed + b":victim", group=deployment.group,
    )
    try:
        client.contribute_via(
            "host", 99, a_vector, features.bigrams, PrivateContext()
        )
        blocked = False
    except AttestationError:
        blocked = True
    return GaasResult(rows=rows, malicious_host_blocked=blocked)
