"""Experiment registry: id → (title, runner).

Populated lazily so importing the registry does not import every
experiment's dependencies.  ``run_experiment("e4")`` returns the result
object; its ``table()`` renders the row set DESIGN.md promises.
"""

from __future__ import annotations

import importlib
import inspect

from repro.errors import ConfigurationError

EXPERIMENTS: dict[str, tuple[str, str]] = {
    "e1": ("Fig. 1a — raw sharing baseline", "repro.experiments.e1_raw_sharing"),
    "e2": ("Fig. 1b — federated learning inversion", "repro.experiments.e2_federated"),
    "e3": ("Fig. 1c — secure aggregation", "repro.experiments.e3_secure_agg"),
    "e4": ("Fig. 1d — the 538 poisoning attack", "repro.experiments.e4_poisoning"),
    "e5": ("Fig. 2+3 — end-to-end Glimmer pipeline", "repro.experiments.e5_pipeline"),
    "e6": ("§2 — predicate ladder vs adversary cost", "repro.experiments.e6_predicates"),
    "e7": ("§3 — single vs decomposed enclaves", "repro.experiments.e7_enclave_split"),
    "e8": ("§4.1 — bot detection channels", "repro.experiments.e8_bot_detection"),
    "e9": ("§4.1 — covert channel bound", "repro.experiments.e9_covert_channel"),
    "e10": ("§4.2 — Glimmer-as-a-service placements", "repro.experiments.e10_gaas"),
    "e11": ("§1 — photos-for-maps geo validation", "repro.experiments.e11_photo_maps"),
    "e12": ("§3 — attestation & vetting attack matrix", "repro.experiments.e12_attestation"),
    "e13": ("§2 extension — consortium vs SGX Glimmer", "repro.experiments.e13_consortium"),
    "e14": ("extension — distributed DP inside the Glimmer", "repro.experiments.e14_dp_release"),
    "e15": ("extension — flooding vs rate-limits + rollback protection", "repro.experiments.e15_flooding"),
    "e16": ("§1 extension — trending topics through the pipeline", "repro.experiments.e16_trending"),
    "e17": ("§2 extension — in-home activity detection", "repro.experiments.e17_activity"),
    "e18": ("§3 extension — availability under injected faults", "repro.experiments.e18_availability"),
    "e19": ("§3 extension — Byzantine actors: detect, blame, quarantine", "repro.experiments.e19_byzantine"),
    "e20": ("§4.2 extension — flaky-fleet resilience under link chaos", "repro.experiments.e20_fleet"),
}


def run_experiment(experiment_id: str, seed: bytes | None = None, **kwargs):
    """Run one experiment by id with optional parameter overrides.

    ``seed`` is threaded to the runner only when its signature accepts a
    ``seed`` parameter (and no explicit ``seed=`` override was given), so
    one ``--seed`` flag can apply across ``run all``.
    """
    entry = EXPERIMENTS.get(experiment_id)
    if entry is None:
        raise ConfigurationError(f"unknown experiment {experiment_id!r}")
    __, module_name = entry
    module = importlib.import_module(module_name)
    if seed is not None and "seed" not in kwargs:
        if "seed" in inspect.signature(module.run).parameters:
            kwargs["seed"] = seed
    return module.run(**kwargs)
