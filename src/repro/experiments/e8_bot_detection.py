"""E8 — §4.1: bot detection through a Glimmer vs. the alternatives.

Three channels classify the same sessions, across a bot-sophistication
sweep:

* **CAPTCHA** (the paper's strawman baseline): annoys every human and
  falls to computer vision and CAPTCHA farms as the adversary spends more;
* **raw-signal upload** (today's practice): the service runs its detector
  on signals shipped in the clear — same accuracy as the Glimmer, but the
  user's browsing history/cookies/interests travel with them;
* **Glimmer** (§4.1): the encrypted detector runs on-device in the
  enclave; the service receives one audited bit.

Reported per (channel × sophistication): detection accuracy, bits of
private context exposed per session, and human annoyance (interventions
per human session).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import Table
from repro.core.auditor import RuntimeAuditor
from repro.core.confidential import (
    BotDetectionService,
    build_confidential_image,
    raw_signal_leakage_bits,
)
from repro.core.provisioning import VettingRegistry
from repro.crypto.dh import TEST_GROUP
from repro.crypto.drbg import HmacDrbg
from repro.crypto.schnorr import SchnorrKeyPair
from repro.sgx.attestation import AttestationService, report_data_for
from repro.sgx.measurement import VendorKey
from repro.sgx.platform import SgxPlatform
from repro.workloads.botnet import BotnetWorkload, DetectorWeights


def _captcha_accuracy(sophistication: float) -> float:
    """CAPTCHA baseline: humans pass 98%; bots solve via farms/vision.

    Farm solve rate grows with adversary spend (sophistication): naive
    scripts fail, well-funded operations solve most challenges — the
    failure mode §4.1 cites.
    """
    human_pass = 0.98
    bot_solve = 0.1 + 0.85 * sophistication
    # Accuracy over a 50/50-weighted mix of the workload's classes is
    # computed by the caller per actual class balance; here per-class rates.
    return human_pass, bot_solve


@dataclass
class BotDetectionResult:
    rows: list

    def table(self) -> Table:
        table = Table(
            "E8 (§4.1): bot detection — accuracy vs. privacy across channels",
            [
                "channel",
                "bot sophistication",
                "accuracy",
                "bits exposed/session",
                "human annoyance",
            ],
        )
        for row in self.rows:
            table.add_row(*row)
        return table


def run(
    num_sessions: int = 60,
    sophistication_levels=(0.0, 0.6, 0.95),
    seed: bytes = b"e8",
) -> BotDetectionResult:
    rng = HmacDrbg(seed, personalization="e8")
    ias = AttestationService(seed + b":ias")
    vendor = VendorKey.generate(rng.fork("vendor"))
    identity = SchnorrKeyPair.generate(rng.fork("identity"), TEST_GROUP)
    detector = DetectorWeights()
    image = build_confidential_image(vendor, identity.public_key)
    registry = VettingRegistry()
    registry.publish("bot-glimmer", image.mrenclave)

    rows = []
    for sophistication in sophistication_levels:
        workload = BotnetWorkload.generate(
            num_sessions,
            rng.fork(f"wl-{sophistication}"),
            bot_sophistication=sophistication,
        )
        avg_raw_bits = sum(
            raw_signal_leakage_bits(s) for s in workload.sessions
        ) / len(workload.sessions)

        # --- CAPTCHA baseline ------------------------------------------
        human_pass, bot_solve = _captcha_accuracy(sophistication)
        captcha_rng = rng.fork(f"captcha-{sophistication}")
        correct = 0
        for session in workload.sessions:
            if session.is_bot:
                correct += captcha_rng.uniform() >= bot_solve
            else:
                correct += captcha_rng.uniform() < human_pass
        rows.append(
            (
                "captcha",
                sophistication,
                correct / num_sessions,
                0.0,
                1.0,  # every human solves a puzzle
            )
        )

        # --- raw signal upload ------------------------------------------
        correct = sum(
            1
            for s in workload.sessions
            if detector.is_human(s) != s.is_bot
        )
        rows.append(
            ("raw signal upload", sophistication, correct / num_sessions, avg_raw_bits, 0.0)
        )

        # --- Glimmer (encrypted detector, 1 audited bit) -----------------
        service = BotDetectionService(
            identity, detector, ias, registry, "bot-glimmer",
            rng.fork(f"svc-{sophistication}"),
        )
        platform = SgxPlatform(
            seed + f":plat-{sophistication}".encode(), attestation_service=ias
        )
        store = {}
        enclave = platform.load_enclave(
            image,
            ocall_handlers={"collect_session_signals": lambda sid: store[sid]},
        )
        session_id = f"prov-{sophistication}".encode()
        public = enclave.ecall("begin_handshake", session_id)
        quote = platform.quote_enclave(
            enclave, report_data_for(public.to_bytes(256, "big"))
        )
        enclave.ecall(
            "install_detector",
            service.provision_detector(session_id, public, quote),
        )
        auditor = RuntimeAuditor()
        correct = 0
        bits_total = 0
        for session in workload.sessions:
            store[session.session_id] = session
            challenge = service.new_challenge(session.session_id)
            message = enclave.ecall(
                "evaluate_session", session.session_id, challenge
            )
            auditor.audit(message, challenge)
            bits_total += auditor.capacity_bound_bits(session.session_id)
            if service.verify_verdict(message) != session.is_bot:
                correct += 1
        rows.append(
            (
                "glimmer (1 audited bit)",
                sophistication,
                correct / num_sessions,
                bits_total / num_sessions,
                0.0,
            )
        )
    return BotDetectionResult(rows=rows)
