"""E1 — Figure 1a: raw sharing maximizes utility and destroys privacy.

The baseline everything else is judged against: every client streams its
sentences to the service in the clear.  The service gets the best possible
model (it trains centrally on everything); an honest-but-curious service —
or anyone who subpoenas/steals its logs — reads each user's politics
straight out of the text.

Reported per cohort size: central-model utility (top-1 next-word accuracy),
whether the trending suggestion works ("trump" after "donald"), the
attacker's stance-recovery accuracy, and the structural bits exposed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.privacy import LeakageReport, leakage_for_channel
from repro.analysis.reporting import Table
from repro.crypto.drbg import HmacDrbg
from repro.federated.metrics import top1_accuracy
from repro.federated.model import BigramModel, FeatureSpace
from repro.workloads.text import (
    KeyboardCorpus,
    OPPOSE_MARKERS,
    STANCE_OPPOSE,
    STANCE_SUPPORT,
    SUPPORT_MARKERS,
)


def _stance_from_raw_text(sentences) -> str:
    """The trivial 'attack' on raw text: count stance-marker bigrams."""
    support = 0
    oppose = 0
    for sentence in sentences:
        for pair in zip(sentence, sentence[1:]):
            if pair in SUPPORT_MARKERS:
                support += 1
            if pair in OPPOSE_MARKERS:
                oppose += 1
    return STANCE_SUPPORT if support >= oppose else STANCE_OPPOSE


@dataclass
class RawSharingResult:
    rows: list
    leakage: list

    def table(self) -> Table:
        table = Table(
            "E1 (Fig. 1a): raw sharing — utility vs. privacy",
            [
                "users",
                "top1-accuracy",
                "predicts trump|donald",
                "attacker accuracy",
                "attacker advantage",
                "exposed bits/user",
            ],
        )
        for row in self.rows:
            table.add_row(*row)
        return table


def run(cohort_sizes=(16, 64), sentences_per_user: int = 30, seed: bytes = b"e1") -> RawSharingResult:
    rows = []
    leakage_reports: list[LeakageReport] = []
    for num_users in cohort_sizes:
        rng = HmacDrbg(seed + str(num_users).encode(), personalization="e1")
        corpus = KeyboardCorpus.generate(
            num_users, rng.fork("corpus"), sentences_per_user=sentences_per_user
        )
        features = FeatureSpace.from_corpus(corpus.all_sentences())
        # The service trains centrally on everyone's raw text.
        central = BigramModel.train(features, corpus.all_sentences())
        holdout = corpus.holdout(rng.fork("holdout"))
        utility = top1_accuracy(central, holdout)
        trending = central.top_prediction("donald") == "trump"
        # The attacker reads stances straight from the raw streams.
        labels = corpus.labels()
        guesses = {
            user_id: _stance_from_raw_text(stream)
            for user_id, stream in corpus.streams.items()
        }
        accuracy = sum(
            1 for user_id, guess in guesses.items() if labels[user_id] == guess
        ) / len(guesses)
        bits_per_user = (
            sum(
                8 * (len(" ".join(sentence)) + 1)
                for stream in corpus.streams.values()
                for sentence in stream
            )
            / num_users
        )
        report = leakage_for_channel("raw", accuracy, bits_per_user)
        leakage_reports.append(report)
        rows.append(
            (
                num_users,
                utility,
                trending,
                accuracy,
                report.attacker_advantage,
                bits_per_user,
            )
        )
    return RawSharingResult(rows=rows, leakage=leakage_reports)
