"""E16 (extension) — §1's opening premise: the model tracks trending topics.

"As current topics (such as 'the world series' or 'Donald Trump') trend up
— because many users type them on their keyboards in a short time-span —
an up-to-date model can suggest 'Trump' as the next word when Alice types
'Donald', even if she has never typed that name herself before."

This is the *utility* half of the quagmire, and it is temporal: the
service's value comes from re-aggregating quickly as topics move.  We run
a sequence of aggregation epochs through the **full Glimmer pipeline**
(validation, blinding, signing, per-epoch mask provisioning) while the
topic's intensity ramps from zero, and track:

* the global model's ``P(trump | donald)`` per epoch;
* whether the trending suggestion is active for a user (Alice) who never
  typed the topic herself;
* the per-epoch utility on epoch-matched holdout text.

Expected shape: the suggestion switches on within an epoch or two of the
topic appearing, demonstrating that the privacy machinery does not cost
the service its freshness (every aggregate is still exact).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import Table
from repro.experiments.common import Deployment
from repro.federated.metrics import top1_accuracy
from repro.federated.model import BigramModel, FeatureSpace
from repro.federated.trainer import LocalTrainer
from repro.workloads.text import KeyboardCorpus


@dataclass
class TrendingResult:
    rows: list
    epochs_to_trend: int | None

    def table(self) -> Table:
        table = Table(
            "E16 (§1 extension): trending topics through the Glimmer pipeline",
            [
                "epoch",
                "topic intensity",
                "P(trump|donald)",
                "suggests trump|donald",
                "aggregate max error",
                "top1-accuracy",
            ],
        )
        for row in self.rows:
            table.add_row(*row)
        return table


def run(
    num_users: int = 8,
    epoch_intensities=(0.0, 0.0, 0.1, 0.3, 0.5),
    sentences_per_user: int = 30,
    seed: bytes = b"e16",
) -> TrendingResult:
    deployment = Deployment.build(
        num_users=num_users, seed=seed, provision_clients=False
    )
    epochs = KeyboardCorpus.generate_trending(
        num_users,
        deployment.rng.fork("trend"),
        epoch_intensities,
        sentences_per_user=sentences_per_user,
    )
    # The service's feature space must cover the topic before it trends
    # (services track candidate features ahead of demand), so build it over
    # the union of all epochs.
    union_sentences = [s for corpus in epochs for s in corpus.all_sentences()]
    features = FeatureSpace.from_corpus(union_sentences)

    # Rebuild the Glimmer image over the union feature space.
    from repro.core.glimmer import GlimmerConfig, build_glimmer_image, features_digest
    from repro.core.provisioning import (
        BlinderProvisioner,
        ServiceProvisioner,
        VettingRegistry,
    )
    from repro.core.service import CloudService
    from repro.crypto.masking import BlindingService

    config = GlimmerConfig(
        predicate_spec="range:0.0:1.0",
        service_identity=deployment.service_identity.public_key,
        blinder_identity=deployment.blinder_identity.public_key,
        features_digest=features_digest(features.bigrams),
    )
    image = build_glimmer_image(deployment.vendor, config, name="trend-glimmer")
    registry = VettingRegistry()
    registry.publish("trend-glimmer", image.mrenclave)
    service_prov = ServiceProvisioner(
        deployment.service_identity, deployment.signing_keypair,
        deployment.attestation, registry, "trend-glimmer",
        deployment.rng.fork("e16-sp"),
    )
    blinder_prov = BlinderProvisioner(
        deployment.blinder_identity,
        BlindingService(deployment.rng.fork("e16-bs"), deployment.codec),
        deployment.attestation, registry, "trend-glimmer",
        deployment.rng.fork("e16-bp"),
    )
    service = CloudService(deployment.signing_keypair.public_key, deployment.codec)

    from repro.core.client import ClientDevice, LocalDataStore
    from repro.network.transport import Network
    from repro.runtime.engine import RoundEngine

    # Each epoch's round runs over its own message bus through the engine.
    network = Network(seed=seed + b":trend-network")
    engine = RoundEngine(network, service, blinder_prov)

    user_ids = [user.user_id for user in epochs[0].users]
    clients = {}
    for user_id in user_ids:
        client = ClientDevice(
            f"trend-{user_id}", image, deployment.attestation,
            seed=b"trend:" + user_id.encode(), data=LocalDataStore(),
        )
        client.provision_signing_key(service_prov)
        engine.register_client(client)
        clients[user_id] = client

    trainer = LocalTrainer(features)
    rows = []
    epochs_to_trend = None
    for epoch, (intensity, corpus) in enumerate(zip(epoch_intensities, epochs)):
        round_id = epoch + 1
        vectors = {
            user_id: trainer.train(corpus.streams[user_id]).contribution()
            for user_id in user_ids
        }
        report = engine.run_round(
            round_id,
            [clients[u].client_id for u in user_ids],
            {clients[u].client_id: vectors[u] for u in user_ids},
            features.bigrams,
        )
        truth = np.mean(np.stack([vectors[u] for u in user_ids]), axis=0)
        error = float(np.max(np.abs(report.aggregate - truth)))
        model = BigramModel.from_vector(features, report.aggregate)
        weight = model.weight(("donald", "trump"))
        suggests = model.top_prediction("donald") == "trump"
        if suggests and epochs_to_trend is None and intensity > 0:
            epochs_to_trend = epoch
        holdout = corpus.holdout(deployment.rng.fork(f"holdout-{epoch}"))
        rows.append(
            (epoch, intensity, weight, suggests, error, top1_accuracy(model, holdout))
        )
    return TrendingResult(rows=rows, epochs_to_trend=epochs_to_trend)
