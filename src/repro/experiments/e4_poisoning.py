"""E4 — Figure 1d: the "538" attack, and the Glimmer stopping it.

Without validation, blinding is a poisoner's paradise: "when the service
aggregates the blinded local models together, it cannot detect such induced
bias (because of the blinding), and ends up with a catastrophically skewed
global predictive model."  With a Glimmer running even the cheapest
predicate (range check), the poisoned contribution never gets signed, so
the service never admits it.

For each (attack magnitude × number of attackers) we run both conditions
and report: worst-parameter skew of the aggregate, whether the model's
suggestion for a contested context flipped to the attacker's phrasing, and
whether the attack was blocked.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import Table
from repro.experiments.common import Deployment
from repro.federated.model import BigramModel
from repro.federated.poisoning import Poisoner

CONTESTED_CONTEXT = "i"
"""Attacks target a continuation of this word that is *not* the honest top,
so 'prediction flipped' is a meaningful success criterion for the attacker
(they push their own phrasing past the cohort's genuine favourite)."""


def _pick_target(features, honest_model):
    honest_top = honest_model.top_prediction(CONTESTED_CONTEXT)
    for left, right in features.bigrams:
        if left == CONTESTED_CONTEXT and right != honest_top:
            return (left, right)
    raise AssertionError("corpus has no contested continuation to target")


@dataclass
class PoisoningResult:
    rows: list

    def table(self) -> Table:
        table = Table(
            'E4 (Fig. 1d): the "538" attack under blinding, with and without a Glimmer',
            [
                "condition",
                "attackers",
                "magnitude",
                "aggregate skew",
                "prediction flipped",
                "attack blocked",
            ],
        )
        for row in self.rows:
            table.add_row(*row)
        return table


def _no_glimmer_round(vectors, attacker_ids, magnitude, features, target, codec, rng):
    """Blinding without validation: the service sums whatever arrives."""
    from repro.crypto.masking import BlindingService, apply_mask

    poisoner = Poisoner(features, [target])
    user_ids = list(vectors)
    service = BlindingService(rng.fork("nb"), codec)
    service.open_round(1, len(user_ids), len(features))
    submitted = []
    for index, user_id in enumerate(user_ids):
        vector = vectors[user_id]
        if user_id in attacker_ids:
            vector = poisoner.magnitude_attack(vector, magnitude).vector
        submitted.append(
            apply_mask(codec.encode(list(vector)), service.mask_for(1, index))
        )
    total = codec.sum_vectors(submitted)
    return codec.decode(total) / len(user_ids)


def run(
    num_users: int = 10,
    magnitudes=(2.0, 10.0, 538.0),
    attacker_counts=(1,),
    seed: bytes = b"e4",
) -> PoisoningResult:
    deployment = Deployment.build(
        num_users=num_users, seed=seed, predicate_spec="range:0.0:1.0"
    )
    features = deployment.features
    vectors = deployment.local_vectors()
    honest = np.mean(np.stack(list(vectors.values())), axis=0)
    honest_model = BigramModel.from_vector(features, honest)
    target = _pick_target(features, honest_model)
    poisoner = Poisoner(features, [target])
    user_ids = [user.user_id for user in deployment.corpus.users]

    rows = []
    round_id = 10
    for attackers in attacker_counts:
        attacker_ids = set(user_ids[:attackers])
        for magnitude in magnitudes:
            # ---- condition 1: blinding, no Glimmer (Figure 1d) -------------
            aggregate = _no_glimmer_round(
                vectors, attacker_ids, magnitude, features, target,
                deployment.codec, deployment.rng.fork(f"ng-{attackers}-{magnitude}"),
            )
            attacked_model = BigramModel.from_vector(features, np.array(aggregate))
            skew = poisoner.skew(honest, np.array(aggregate))
            flipped = (
                attacked_model.top_prediction(target[0])
                != honest_model.top_prediction(target[0])
            )
            rows.append(
                ("blinding, no glimmer", attackers, magnitude, skew, flipped, False)
            )

            # ---- condition 2: Glimmer with a range predicate ---------------
            # The whole round runs over the message bus: the engine
            # provisions masks, each poisoned contribution dies inside the
            # Glimmer (validation-rejected), and the engine repairs the
            # blocked parties' mask slots at finalization.
            round_id += 1
            values_by_user = {
                user_id: (
                    poisoner.magnitude_attack(vectors[user_id], magnitude).vector
                    if user_id in attacker_ids
                    else vectors[user_id]
                )
                for user_id in user_ids
            }
            report = deployment.engine.run_round(
                round_id, user_ids, values_by_user, features.bigrams
            )
            result = report.service_result
            blocked = report.validation_rejections
            accepted = list(report.survivors)
            defended_model = BigramModel.from_vector(features, result.aggregate)
            honest_survivors = np.mean(
                np.stack([vectors[u] for u in accepted]), axis=0
            )
            skew_defended = float(
                np.max(np.abs(result.aggregate - honest_survivors))
            )
            # Counterfactual is the honest mean over the same survivor set:
            # a blocked attacker also withholds their honest data, which must
            # not be scored as an attack effect.
            survivor_model = BigramModel.from_vector(features, honest_survivors)
            flipped_defended = (
                defended_model.top_prediction(target[0])
                != survivor_model.top_prediction(target[0])
            )
            rows.append(
                (
                    "glimmer (range check)",
                    attackers,
                    magnitude,
                    skew_defended,
                    flipped_defended,
                    blocked == attackers,
                )
            )
    return PoisoningResult(rows=rows)
