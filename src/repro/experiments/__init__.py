"""Experiment harness: one module per figure/claim of the paper.

See DESIGN.md §4 for the experiment index.  Each module exposes a ``run``
function returning a result object with a ``table()`` method; the
:mod:`repro.experiments.registry` maps experiment ids to those functions,
and the benchmark suite regenerates every table from here.
"""

from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = ["EXPERIMENTS", "run_experiment"]
