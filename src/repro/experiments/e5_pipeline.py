"""E5 — Figures 2 & 3: the end-to-end Glimmer pipeline under attack.

This is the architecture experiment: N honest clients and one adversary run
a full blinded round through provisioned Glimmers while an eavesdropper
records everything on the wire.  We verify the two properties §2 demands:

* **Input Integrity** — every attack in the matrix (submit without a
  Glimmer, tamper after signing, replay a signed contribution, feed an
  out-of-range vector to the Glimmer) is blocked, and the aggregate equals
  the honest mean exactly;
* **Input Confidentiality** — the inversion attacker, given everything the
  eavesdropper captured (the blinded signed payloads, attributed to their
  senders), performs at chance; given the honest plaintext vectors, it
  performs perfectly — the delta is what the Glimmer bought.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import Table
from repro.errors import ValidationError
from repro.experiments.common import Deployment
from repro.federated.inversion import InversionAttacker
from repro.workloads.text import stance_evidence


@dataclass
class PipelineResult:
    attack_rows: list
    aggregate_error: float
    inversion_on_wire: float
    inversion_on_plain: float
    num_honest: int

    def table(self) -> Table:
        table = Table(
            "E5 (Fig. 2+3): end-to-end pipeline — attack matrix and properties",
            ["attack", "blocked", "how"],
        )
        for row in self.attack_rows:
            table.add_row(*row)
        table.add_row(
            "— aggregate max error", self.aggregate_error < 1e-3,
            f"{self.aggregate_error:.2e}",
        )
        table.add_row(
            "— inversion on wire captures", self.inversion_on_wire < 0.75,
            f"{self.inversion_on_wire:.3f} (plaintext would give {self.inversion_on_plain:.3f})",
        )
        return table


def run(num_users: int = 8, seed: bytes = b"e5") -> PipelineResult:
    deployment = Deployment.build(num_users=num_users, seed=seed)
    features = deployment.features
    service = deployment.service
    user_ids = [user.user_id for user in deployment.corpus.users]
    vectors = deployment.local_vectors()
    round_id = 1
    deployment.open_round(round_id, user_ids)

    wire_captures: dict[str, np.ndarray] = {}
    signed_by_user = {}
    for user_id in user_ids:
        signed = deployment.clients[user_id].contribute(
            round_id, list(vectors[user_id]), features.bigrams
        )
        signed_by_user[user_id] = signed
        # The eavesdropper sees the signed blinded payload, attributed.
        wire_captures[user_id] = deployment.codec.decode(list(signed.ring_payload))
        assert service.submit(round_id, signed)

    attack_rows = []

    # Attack 1: bypass the Glimmer entirely.
    evil = deployment.make_client("mallory", malicious=True)
    forged = evil.bypass_glimmer(round_id, [1.0] * len(features))
    accepted = service.submit(round_id, forged)
    attack_rows.append(
        ("bypass glimmer (self-signed)", not accepted, "invalid-signature")
    )

    # Attack 2: tamper with a genuinely signed contribution.
    tampered = evil.tamper_after_signing(signed_by_user[user_ids[0]])
    accepted = service.submit(round_id, tampered)
    attack_rows.append(("tamper after signing", not accepted, "invalid-signature"))

    # Attack 3: replay a signed contribution.
    accepted = service.submit(round_id, signed_by_user[user_ids[0]])
    attack_rows.append(("replay signed contribution", not accepted, "replayed-nonce"))

    # Attack 4: out-of-range poison through the Glimmer.
    round2 = 2
    deployment.blinder_provisioner.open_round(round2, 1, len(features))
    service.open_round(round2, 1)
    evil.provision_mask(deployment.blinder_provisioner, round2, 0)
    try:
        evil.poison_values(
            round2, [538.0] + [0.0] * (len(features) - 1), features.bigrams
        )
        blocked = False
    except ValidationError:
        blocked = True
    attack_rows.append(("538 poison via glimmer", blocked, "range predicate"))

    # Attack 5: submit a signed contribution to the wrong round.
    accepted = service.submit(round2, signed_by_user[user_ids[1]])
    attack_rows.append(("cross-round replay", not accepted, "wrong-round"))

    # Properties.
    result = service.finalize_blinded_round(round_id)
    honest_mean = np.mean(np.stack([vectors[u] for u in user_ids]), axis=0)
    aggregate_error = float(np.max(np.abs(result.aggregate - honest_mean)))
    attacker = InversionAttacker(features, stance_evidence())
    labels = deployment.corpus.labels()
    inversion_on_wire = attacker.accuracy(wire_captures, labels)
    inversion_on_plain = attacker.accuracy(vectors, labels)
    return PipelineResult(
        attack_rows=attack_rows,
        aggregate_error=aggregate_error,
        inversion_on_wire=inversion_on_wire,
        inversion_on_plain=inversion_on_plain,
        num_honest=num_users,
    )
