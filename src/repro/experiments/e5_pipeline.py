"""E5 — Figures 2 & 3: the end-to-end Glimmer pipeline under attack.

This is the architecture experiment: N honest clients and one adversary run
a full blinded round through provisioned Glimmers while an eavesdropper
records everything on the wire.  We verify the two properties §2 demands:

* **Input Integrity** — every attack in the matrix (submit without a
  Glimmer, tamper after signing, replay a signed contribution, feed an
  out-of-range vector to the Glimmer, replay into the wrong round) is
  blocked, and the aggregate equals the honest mean exactly;
* **Input Confidentiality** — the inversion attacker, given everything the
  eavesdropper captured (the blinded signed payloads, attributed to their
  senders), performs at chance; given the honest plaintext vectors, it
  performs perfectly — the delta is what the Glimmer bought.

``transport`` selects the plumbing: ``"bus"`` (default) routes every
provisioning and submission as a message through the simulated transport
via the :class:`~repro.runtime.engine.RoundEngine`; ``"direct"`` calls the
parties' methods directly.  The accept/reject matrix must be identical
either way — the runtime parity test asserts exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import Table
from repro.errors import ValidationError
from repro.experiments.common import Deployment
from repro.federated.inversion import InversionAttacker
from repro.network.adversary import EavesdropAdversary
from repro.runtime.messages import KIND_SUBMIT, client_endpoint
from repro.runtime.telemetry import OUTCOME_ACCEPTED, OUTCOME_VALIDATION_REJECTED
from repro.workloads.text import stance_evidence


@dataclass
class PipelineResult:
    attack_rows: list
    aggregate_error: float
    inversion_on_wire: float
    inversion_on_plain: float
    num_honest: int
    report: object = None  # RoundReport when run over the bus

    def table(self) -> Table:
        table = Table(
            "E5 (Fig. 2+3): end-to-end pipeline — attack matrix and properties",
            ["attack", "blocked", "how"],
        )
        for row in self.attack_rows:
            table.add_row(*row)
        table.add_row(
            "— aggregate max error", self.aggregate_error < 1e-3,
            f"{self.aggregate_error:.2e}",
        )
        table.add_row(
            "— inversion on wire captures", self.inversion_on_wire < 0.75,
            f"{self.inversion_on_wire:.3f} (plaintext would give {self.inversion_on_plain:.3f})",
        )
        return table


def run(
    num_users: int = 8, seed: bytes = b"e5", transport: str = "bus"
) -> PipelineResult:
    if transport not in ("bus", "direct"):
        raise ValueError(f"unknown transport {transport!r}")
    over_bus = transport == "bus"
    deployment = Deployment.build(num_users=num_users, seed=seed)
    engine = deployment.engine
    features = deployment.features
    service = deployment.service
    user_ids = [user.user_id for user in deployment.corpus.users]
    vectors = deployment.local_vectors()
    eavesdropper = EavesdropAdversary()
    if over_bus:
        deployment.network.interpose(eavesdropper)
    round_id = 1
    deployment.open_round(round_id, user_ids)

    signed_by_user = {}
    if over_bus:
        for user_id in user_ids:
            outcome = engine.contribute(
                user_id, round_id, list(vectors[user_id]), features.bigrams
            )
            assert outcome == OUTCOME_ACCEPTED
        # The signed payloads, as the on-path eavesdropper captured them.
        for message in eavesdropper.captured:
            if message.kind != KIND_SUBMIT:
                continue
            contribution = message.payload.contribution
            for user_id in user_ids:
                if (
                    message.sender == client_endpoint(user_id)
                    and contribution.round_id == round_id
                ):
                    signed_by_user.setdefault(user_id, contribution)
    else:
        for user_id in user_ids:
            signed = deployment.clients[user_id].contribute(
                round_id, list(vectors[user_id]), features.bigrams
            )
            signed_by_user[user_id] = signed
            assert service.submit(round_id, signed)
    wire_captures = {
        user_id: deployment.codec.decode(list(signed.ring_payload))
        for user_id, signed in signed_by_user.items()
    }

    def submit(as_user, target_round, contribution):
        if over_bus:
            return engine.submit_signed(as_user, target_round, contribution)
        return service.submit(target_round, contribution)

    attack_rows = []

    # Attack 1: bypass the Glimmer entirely.
    evil = deployment.make_client("mallory", malicious=True)
    forged = evil.bypass_glimmer(round_id, [1.0] * len(features))
    accepted = submit("mallory", round_id, forged)
    attack_rows.append(
        ("bypass glimmer (self-signed)", not accepted, "invalid-signature")
    )

    # Attack 2: tamper with a genuinely signed contribution.
    tampered = evil.tamper_after_signing(signed_by_user[user_ids[0]])
    accepted = submit("mallory", round_id, tampered)
    attack_rows.append(("tamper after signing", not accepted, "invalid-signature"))

    # Attack 3: replay a signed contribution.
    accepted = submit(user_ids[0], round_id, signed_by_user[user_ids[0]])
    attack_rows.append(("replay signed contribution", not accepted, "replayed-nonce"))

    # Attack 4: out-of-range poison through the Glimmer.
    round2 = 2
    poison = [538.0] + [0.0] * (len(features) - 1)
    if over_bus:
        engine.open_round(round2, 1, len(features))
        engine.provision_mask("mallory", round2, 0)
        outcome = engine.contribute("mallory", round2, poison, features.bigrams)
        blocked = outcome == OUTCOME_VALIDATION_REJECTED
    else:
        deployment.blinder_provisioner.open_round(round2, 1, len(features))
        service.open_round(round2, 1)
        evil.provision_mask(deployment.blinder_provisioner, round2, 0)
        try:
            evil.poison_values(round2, poison, features.bigrams)
            blocked = False
        except ValidationError:
            blocked = True
    attack_rows.append(("538 poison via glimmer", blocked, "range predicate"))

    # Attack 5: submit a signed contribution to the wrong round.
    accepted = submit(user_ids[1], round2, signed_by_user[user_ids[1]])
    attack_rows.append(("cross-round replay", not accepted, "wrong-round"))

    # Properties.
    report = None
    if over_bus:
        report = engine.finalize_round(round_id)
        result = report.service_result
    else:
        result = service.finalize_blinded_round(round_id)
    honest_mean = np.mean(np.stack([vectors[u] for u in user_ids]), axis=0)
    aggregate_error = float(np.max(np.abs(result.aggregate - honest_mean)))
    attacker = InversionAttacker(features, stance_evidence())
    labels = deployment.corpus.labels()
    inversion_on_wire = attacker.accuracy(wire_captures, labels)
    inversion_on_plain = attacker.accuracy(vectors, labels)
    return PipelineResult(
        attack_rows=attack_rows,
        aggregate_error=aggregate_error,
        inversion_on_wire=inversion_on_wire,
        inversion_on_plain=inversion_on_plain,
        num_honest=num_users,
        report=report,
    )
