"""E15 (extension) — contribution flooding, rate limits, rollback protection.

§2, property (b): "service quality is highly dependent on the
trustworthiness of data contributed by users."  Blinded rounds are
*anonymous* by design, so the service cannot count contributions per user —
a single device can flood a round with many individually *legal* (in-range)
contributions and drag the aggregate toward its preference.  The defense
must live where the attribution lives: in the Glimmer, as a rate-limit
predicate backed by the platform's **monotonic counters**, which survive
enclave restarts (the obvious evasion: kill the enclave, reload it, restore
the sealed signing key, contribute "for the first time" again).

Three conditions per flood size k:

* ``range only`` — the flood lands; skew grows with k;
* ``range+rate(1)`` — the Glimmer signs one contribution per round; the
  remaining k-1 are rejected in-enclave;
* ``range+rate(1) + restart evasion`` — the attacker reloads the enclave
  between attempts; the monotonic counter (scoped to the measurement,
  stored on the platform) still counts across restarts, so the evasion
  fails.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import Table
from repro.experiments.common import Deployment
from repro.runtime.telemetry import OUTCOME_VALIDATION_REJECTED


@dataclass
class FloodingResult:
    rows: list

    def table(self) -> Table:
        table = Table(
            "E15 (extension): contribution flooding vs rate-limited Glimmers",
            [
                "defense",
                "flood size k",
                "flood contributions signed",
                "aggregate skew",
            ],
        )
        for row in self.rows:
            table.add_row(*row)
        return table


def _flood_round(deployment, round_id, flood_values, flood_count, restart_between):
    """One round: honest cohort + one device submitting ``flood_count`` times.

    Returns (flood contributions signed, aggregate skew vs. the honest
    cohort's mean).  The round runs over the message bus via the
    deployment's :class:`~repro.runtime.engine.RoundEngine`; slots whose
    validation failed never consumed their mask, so the engine reveals
    them for §3-style repair at finalization.
    """
    engine = deployment.engine
    features = deployment.features
    user_ids = [user.user_id for user in deployment.corpus.users]
    vectors = deployment.local_vectors()
    attacker_id = user_ids[0]

    # The blinding service provisions one mask per expected *contribution*
    # slot; a flooding attacker requests extra slots for its duplicates
    # (nothing stops it — slots are not identities).
    total_slots = len(user_ids) + flood_count - 1
    engine.open_round(round_id, total_slots, len(features))

    signed_flood = 0

    def attempt(client_id, slot, values, is_flood):
        nonlocal signed_flood
        engine.provision_mask(client_id, round_id, slot)
        outcome = engine.contribute(client_id, round_id, list(values), features.bigrams)
        if outcome == OUTCOME_VALIDATION_REJECTED:
            return
        if is_flood:
            signed_flood += 1

    # Honest cohort; the attacker's device pushes flood values in slot 0.
    for index, user_id in enumerate(user_ids):
        is_attacker = user_id == attacker_id
        attempt(
            user_id,
            index,
            flood_values if is_attacker else vectors[user_id],
            is_flood=is_attacker,
        )

    # The flood: k-1 more attempts from the attacker's device.
    attacker = deployment.clients[attacker_id]
    for extra in range(flood_count - 1):
        if restart_between:
            # Evasion attempt: reload the enclave, restore the sealed key.
            sealed = attacker.provision_signing_key(deployment.service_provisioner)
            attacker.glimmer.destroy()
            attacker.glimmer = attacker.platform.load_enclave(
                deployment.image,
                ocall_handlers={"collect_private_data": attacker._serve_private_data},
            )
            attacker.glimmer.ecall("restore_signing_key", sealed)
            attacker._party_index_for_round.pop(round_id, None)
        attempt(attacker_id, len(user_ids) + extra, flood_values, is_flood=True)

    report = engine.finalize_round(round_id)
    honest_mean = np.mean(np.stack([vectors[u] for u in user_ids[1:]]), axis=0)
    skew = float(np.max(np.abs(report.aggregate - honest_mean)))
    return signed_flood, skew


def run(
    num_users: int = 6,
    flood_sizes=(1, 4, 8),
    seed: bytes = b"e15",
) -> FloodingResult:
    rows = []
    round_id = 0
    conditions = (
        ("range only", "range:0.0:1.0", False),
        ("range + rate(1)", "chain:range,0.0,1.0+rate,1", False),
        ("range + rate(1), restart evasion", "chain:range,0.0,1.0+rate,1", True),
    )
    for defense_name, spec, restart in conditions:
        deployment = Deployment.build(
            num_users=num_users, seed=seed + spec.encode(), predicate_spec=spec
        )
        features = deployment.features
        # The flood pushes a legal (in-range) extreme vector.
        flood_values = [1.0] * len(features)
        for k in flood_sizes:
            round_id += 1
            signed, skew = _flood_round(
                deployment, round_id, flood_values, k, restart
            )
            rows.append((defense_name, k, signed, skew))
    return FloodingResult(rows=rows)
