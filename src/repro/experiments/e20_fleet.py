"""E20 (extension) — flaky-fleet resilience across condition profiles.

E18 failed the environment, E19 made parties lie; this experiment
degrades the *network* the way a real device fleet does — loss bursts,
latency spikes, partitions, disconnect-and-rejoin churn, duplicate
deliveries, clock skew, firmware-version skew — and shows the defense
stack (adaptive deadlines, hedged re-delivery, partition-aware trimming,
finalize-time reconciliation, incremental attestation sessions) keeping
every finalized round codec-exact.

For each condition profile it plays several deterministic fleet
schedules through :func:`repro.service.fleet.run_fleet_schedule`, which
asserts the invariants per schedule (exact-or-recovered aggregates, zero
undetected corruption, replayability); the table reports what the
weather threw and what each defense absorbed.  The headline economics:
full quote-verifies stay bounded by first joins plus policy-epoch bumps
— rejoining devices ride session resumption instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import Table
from repro.network.conditions import PROFILES
from repro.service.fleet import run_fleet_schedule


@dataclass
class FleetResilienceResult:
    rows: list
    reports: list
    undetected_total: int

    def table(self) -> Table:
        table = Table(
            "E20 (extension): exact-or-recovered under degraded fleet links",
            [
                "profile",
                "schedules",
                "rounds (recovered)",
                "weather (drop/spike/dup)",
                "hedged",
                "trimmed",
                "late discards",
                "reconciled",
                "perturbed → quarantined",
                "rejoins",
                "resumed / full attests",
                "mean settle (ms)",
            ],
        )
        for row in self.rows:
            table.add_row(*row)
        return table


def run(
    num_schedules: int = 4,
    num_users: int = 6,
    rounds: int = 4,
    seed: bytes = b"e20",
) -> FleetResilienceResult:
    rows = []
    reports = []
    undetected_total = 0
    for profile in sorted(PROFILES):
        totals: dict[str, float] = {}
        quarantined = 0
        for index in range(num_schedules):
            report = run_fleet_schedule(
                seed=seed,
                index=index,
                profile=profile,
                num_users=num_users,
                rounds=rounds,
            )
            reports.append(report)
            quarantined += len(report["quarantined"])
            for key in (
                "rounds",
                "rounds_recovered",
                "rejoins",
                "resumed",
                "full_attestations",
                "perturbed_submissions",
                "submissions_reconciled",
                "mean_settle_ms",
            ):
                totals[key] = totals.get(key, 0) + report[key]
            for key in ("offline_drops", "burst_drops", "duplicates", "spikes"):
                totals[key] = totals.get(key, 0) + report["conditions"][key]
            hedged = sum(entry[5] for entry in report["signature"][1])
            late = sum(entry[4] for entry in report["signature"][1])
            trimmed = sum(entry[6] for entry in report["signature"][1])
            totals["hedged"] = totals.get("hedged", 0) + hedged
            totals["late"] = totals.get("late", 0) + late
            totals["trimmed"] = totals.get("trimmed", 0) + trimmed
        # Every perturbed submission was rejected and attributed (the
        # harness asserts both); a finalized-but-wrong aggregate would
        # have raised inside run_fleet_schedule.
        rows.append(
            (
                profile,
                num_schedules,
                f"{int(totals['rounds'])} ({int(totals['rounds_recovered'])})",
                f"{int(totals['offline_drops'] + totals['burst_drops'])}"
                f"/{int(totals['spikes'])}/{int(totals['duplicates'])}",
                int(totals["hedged"]),
                int(totals["trimmed"]),
                int(totals["late"]),
                int(totals["submissions_reconciled"]),
                f"{int(totals['perturbed_submissions'])} → {quarantined}",
                int(totals["rejoins"]),
                f"{int(totals['resumed'])} / {int(totals['full_attestations'])}",
                round(totals["mean_settle_ms"] / num_schedules, 2),
            )
        )
    return FleetResilienceResult(
        rows=rows, reports=reports, undetected_total=undetected_total
    )
