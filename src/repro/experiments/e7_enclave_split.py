"""E7 — §3's closing ablation: one enclave vs. one enclave per component.

"We have shown all components ... within a single SGX enclave, which is
more efficient as there is only one transition in and out of the enclave.
However, to increase ease of verification, the Glimmer can be decomposed so
that each component runs in its own enclave.  Naturally, communication
between components must now also be secured."

We process identical contributions through both layouts across a sweep of
vector sizes and report simulated cycles: transitions, inter-component
crypto, and total — plus the overhead ratio.  Expected shape: the split
layout pays ~3× the transition cost plus two AE legs per contribution, and
the relative overhead shrinks as validation work grows (bigger vectors).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import Table
from repro.core.client import ClientDevice, LocalDataStore
from repro.core.glimmer import ProcessRequest
from repro.core.split import SplitGlimmer, build_split_images
from repro.core.validation import PrivateContext
from repro.experiments.common import Deployment
from repro.sgx.attestation import report_data_for
from repro.sgx.platform import SgxPlatform


@dataclass
class SplitResult:
    rows: list

    def table(self) -> Table:
        table = Table(
            "E7 (§3): single-enclave vs. per-component enclaves",
            [
                "params",
                "layout",
                "transition cycles",
                "crypto cycles",
                "total cycles",
                "overhead vs single",
            ],
        )
        for row in self.rows:
            table.add_row(*row)
        return table


def _provision_split(deployment: Deployment, split: SplitGlimmer, platform, round_id, length):
    """Provision the signing key and a round mask into the split enclaves."""
    registry = deployment.registry
    registry.publish("glimmer-signing", split.signing.image.mrenclave)
    registry.publish("glimmer-blinding", split.blinding.image.mrenclave)
    from repro.core.provisioning import BlinderProvisioner, ServiceProvisioner
    from repro.crypto.masking import BlindingService

    service_prov = ServiceProvisioner(
        deployment.service_identity,
        deployment.signing_keypair,
        deployment.attestation,
        registry,
        "glimmer-signing",
        deployment.rng.fork("e7-sp"),
    )
    blinder_prov = BlinderProvisioner(
        deployment.blinder_identity,
        BlindingService(deployment.rng.fork("e7-bs"), deployment.codec),
        deployment.attestation,
        registry,
        "glimmer-blinding",
        deployment.rng.fork("e7-bp"),
    )
    blinder_prov.open_round(round_id, 1, length)
    session = b"e7-sign"
    public = split.signing.ecall("begin_handshake", session)
    quote = platform.quote_enclave(
        split.signing, report_data_for(public.to_bytes(256, "big"))
    )
    split.signing.ecall(
        "install_signing_key",
        service_prov.provision_signing_key(session, public, quote),
    )
    session = b"e7-mask"
    public = split.blinding.ecall("begin_handshake", session)
    quote = platform.quote_enclave(
        split.blinding, report_data_for(public.to_bytes(256, "big"))
    )
    split.blinding.ecall(
        "install_blinding_mask",
        round_id,
        0,
        blinder_prov.provision_mask(session, public, quote, round_id, 0),
    )
    return blinder_prov


def run(vector_sizes=(16, 128, 1024), seed: bytes = b"e7") -> SplitResult:
    rows = []
    for size in vector_sizes:
        # Synthetic feature space of the requested size.
        bigrams = tuple((f"w{i}", f"v{i}") for i in range(size))
        deployment = Deployment.build(
            num_users=1, seed=seed + str(size).encode(), provision_clients=False
        )
        # Rebuild the image over the synthetic feature space.
        from repro.core.glimmer import GlimmerConfig, build_glimmer_image, features_digest

        config = GlimmerConfig(
            predicate_spec="range:0.0:1.0",
            service_identity=deployment.service_identity.public_key,
            blinder_identity=deployment.blinder_identity.public_key,
            features_digest=features_digest(bigrams),
        )
        image = build_glimmer_image(deployment.vendor, config, name="e7-glimmer")
        deployment.registry.publish("e7-glimmer", image.mrenclave)
        values = [0.5] * size
        request = ProcessRequest(round_id=1, values=tuple(values), features=bigrams)

        # ---- single enclave --------------------------------------------
        from repro.core.provisioning import BlinderProvisioner, ServiceProvisioner
        from repro.crypto.masking import BlindingService

        client = ClientDevice(
            "bench-client",
            image,
            deployment.attestation,
            seed=b"e7-client" + str(size).encode(),
            data=LocalDataStore(),
        )
        sp = ServiceProvisioner(
            deployment.service_identity, deployment.signing_keypair,
            deployment.attestation, deployment.registry, "e7-glimmer",
            deployment.rng.fork("e7-single-sp"),
        )
        bp = BlinderProvisioner(
            deployment.blinder_identity,
            BlindingService(deployment.rng.fork("e7-single-bs"), deployment.codec),
            deployment.attestation, deployment.registry, "e7-glimmer",
            deployment.rng.fork("e7-single-bp"),
        )
        client.provision_signing_key(sp)
        bp.open_round(1, 1, size)
        client.provision_mask(bp, 1, 0)
        client.glimmer.meter.reset()
        client.contribute(1, values, bigrams)
        single = client.glimmer.meter
        single_transitions = single.buckets.get("transitions", 0)
        single_crypto = single.buckets.get("enclave-crypto", 0)
        rows.append(
            (size, "single enclave", single_transitions, single_crypto, single.total, 1.0)
        )

        # ---- split enclaves ---------------------------------------------
        split_images = build_split_images(deployment.vendor, config)
        platform = SgxPlatform(
            b"e7-split" + str(size).encode(),
            attestation_service=deployment.attestation,
        )
        split = SplitGlimmer(
            platform,
            split_images,
            ocall_handlers={"collect_private_data": lambda fields: PrivateContext()},
        )
        _provision_split(deployment, split, platform, 1, size)
        for enclave in (split.validation, split.blinding, split.signing):
            enclave.meter.reset()
        split.process_contribution(request)
        split_transitions = split.transition_cycles()
        split_crypto = sum(
            e.meter.buckets.get("enclave-crypto", 0)
            for e in (split.validation, split.blinding, split.signing)
        )
        split_total = split.total_cycles()
        rows.append(
            (
                size,
                "three enclaves",
                split_transitions,
                split_crypto,
                split_total,
                split_total / max(1, single.total),
            )
        )
    return SplitResult(rows=rows)
