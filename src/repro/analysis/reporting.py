"""Plain-text tables for experiment output.

Every experiment renders its results through :class:`Table` so the
benchmark harness and EXPERIMENTS.md show identical rows.  No external
dependencies; values are formatted compactly and columns aligned.
Tables also serialize to JSON (:meth:`Table.as_dict` /
:meth:`Table.to_json`) so benchmark trajectories can be tracked by
machines, not just read by people.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from repro.errors import ConfigurationError


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def _json_safe(value: Any) -> Any:
    """Coerce a cell to something ``json.dumps`` accepts.

    Handles numpy scalars/arrays by duck-typing so this module keeps its
    no-dependency promise.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if hasattr(value, "tolist"):  # numpy arrays
        return value.tolist()
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return str(value)


class Table:
    """An aligned, titled, plain-text results table."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ConfigurationError("table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []
        self.raw_rows: list[list[Any]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ConfigurationError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.raw_rows.append(list(values))
        self.rows.append([_format_value(v) for v in values])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        """The table's unformatted content as a JSON-safe dict."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [[_json_safe(v) for v in row] for row in self.raw_rows],
        }

    def to_json(self, indent: int | None = None) -> str:
        """Machine-readable twin of :meth:`render`."""
        return json.dumps(self.as_dict(), indent=indent)

    def __str__(self) -> str:
        return self.render()
