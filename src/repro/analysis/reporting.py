"""Plain-text tables for experiment output.

Every experiment renders its results through :class:`Table` so the
benchmark harness and EXPERIMENTS.md show identical rows.  No external
dependencies; values are formatted compactly and columns aligned.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import ConfigurationError


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


class Table:
    """An aligned, titled, plain-text results table."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ConfigurationError("table needs at least one column")
        self.title = title
        self.columns = list(columns)
        self.rows: list[list[str]] = []

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ConfigurationError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.rows.append([_format_value(v) for v in values])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
