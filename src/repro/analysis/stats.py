"""Small, dependency-light summary statistics used in experiment tables."""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ConfigurationError


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ConfigurationError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1); zero for singletons."""
    if not values:
        raise ConfigurationError("stddev of empty sequence")
    if len(values) == 1:
        return 0.0
    center = mean(values)
    return math.sqrt(sum((v - center) ** 2 for v in values) / (len(values) - 1))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]."""
    if not values:
        raise ConfigurationError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    lo, hi = ordered[low], ordered[high]
    # lo + frac * (hi - lo) is exact when lo == hi (the weighted-sum form
    # underflows for subnormals); the clamp bounds rounding in between.
    return min(max(lo + frac * (hi - lo), lo), hi)
