"""Privacy leakage accounting across the channels the paper compares.

Each deployment option exposes a different *channel* to the service, and
the experiments need the leakage of each on one scale:

* ``raw`` — the service reads the user's data outright (Figure 1a);
* ``per-user-model`` — the service reads an attributed partial model
  (Figure 1b), invertible per [4];
* ``blinded`` — the service reads one ring-masked vector per user
  (Figure 1c), marginally uniform, so attribute inference collapses;
* ``aggregate-only`` — the service reads only the cohort aggregate;
* ``verdict-bit`` — §4.1's audited single bit.

:func:`leakage_for_channel` pairs an empirical attacker accuracy with a
structural bits-exposed bound, which is what the E1/E2/E3/E8 tables report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.federated.metrics import attribute_inference_advantage


@dataclass(frozen=True)
class LeakageReport:
    """One channel's privacy accounting."""

    channel: str
    attacker_accuracy: float
    attacker_advantage: float
    structural_bits: float
    """Upper bound on user-attributable bits the channel carries."""

    def summary(self) -> str:
        return (
            f"{self.channel}: attacker accuracy {self.attacker_accuracy:.3f} "
            f"(advantage {self.attacker_advantage:+.3f}), "
            f"≤ {self.structural_bits:g} attributable bits"
        )


def leakage_for_channel(
    channel: str,
    attacker_accuracy: float,
    structural_bits: float,
    num_classes: int = 2,
) -> LeakageReport:
    """Build a report; validates ranges so tables never carry nonsense."""
    if not 0.0 <= attacker_accuracy <= 1.0:
        raise ConfigurationError("attacker accuracy must be in [0, 1]")
    if structural_bits < 0:
        raise ConfigurationError("structural bits must be non-negative")
    return LeakageReport(
        channel=channel,
        attacker_accuracy=attacker_accuracy,
        attacker_advantage=attribute_inference_advantage(
            attacker_accuracy, num_classes
        ),
        structural_bits=structural_bits,
    )


def bits_of_vector(length: int, bits_per_value: int = 64) -> float:
    """Structural size of an attributed vector channel."""
    if length < 0:
        raise ConfigurationError("length must be non-negative")
    return float(length * bits_per_value)


def gaussian_epsilon(
    l2_sensitivity: float, sigma: float, delta: float = 1e-5
) -> float:
    """(ε, δ)-DP level of the Gaussian mechanism.

    Standard calibration: ``ε = Δ₂ · sqrt(2 ln(1.25/δ)) / σ``.  Used by the
    E14 extension to label the aggregate's leakage bound when Glimmers add
    distributed noise; ``float('inf')`` when ``sigma`` is 0 (no DP).
    """
    import math

    if l2_sensitivity < 0:
        raise ConfigurationError("sensitivity must be non-negative")
    if not 0.0 < delta < 1.0:
        raise ConfigurationError("delta must be in (0, 1)")
    if sigma < 0:
        raise ConfigurationError("sigma must be non-negative")
    if sigma == 0:
        return float("inf")
    return l2_sensitivity * math.sqrt(2.0 * math.log(1.25 / delta)) / sigma
