"""Measurement helpers shared by experiments: privacy, stats, reporting."""

from repro.analysis.privacy import LeakageReport, leakage_for_channel
from repro.analysis.reporting import Table
from repro.analysis.stats import mean, percentile, stddev

__all__ = [
    "LeakageReport",
    "leakage_for_channel",
    "Table",
    "mean",
    "percentile",
    "stddev",
]
