"""Round orchestration over the simulated transport.

The :class:`~repro.runtime.engine.RoundEngine` replaces the direct-call
plumbing experiments used to do by hand: every mask provisioning,
contribution submission, and round finalization travels as a typed message
over :class:`repro.network.transport.Network`, so latency models, drop
models, and on-path adversaries apply to the *main* pipeline, and every
round yields a :class:`~repro.runtime.telemetry.RoundReport`.
"""

from repro.runtime.engine import BLINDER, ENGINE, SERVICE, RoundEngine, client_endpoint
from repro.runtime.telemetry import (
    OUTCOME_ACCEPTED,
    OUTCOME_DEADLINE_MISSED,
    OUTCOME_DROPOUT,
    OUTCOME_PROVISION_FAILED,
    OUTCOME_SERVICE_REJECTED,
    OUTCOME_SUBMIT_FAILED,
    OUTCOME_UNREACHABLE,
    OUTCOME_VALIDATION_REJECTED,
    PhaseStats,
    RoundReport,
)

__all__ = [
    "BLINDER",
    "ENGINE",
    "SERVICE",
    "RoundEngine",
    "client_endpoint",
    "PhaseStats",
    "RoundReport",
    "OUTCOME_ACCEPTED",
    "OUTCOME_DEADLINE_MISSED",
    "OUTCOME_DROPOUT",
    "OUTCOME_PROVISION_FAILED",
    "OUTCOME_SERVICE_REJECTED",
    "OUTCOME_SUBMIT_FAILED",
    "OUTCOME_UNREACHABLE",
    "OUTCOME_VALIDATION_REJECTED",
]
