"""Per-round telemetry: what the bus, clock, and enclaves did.

A :class:`RoundReport` is the engine's receipt for one round: participant
outcomes, dropout repairs, transport counters (messages, drops, retries,
bytes, simulated latency), and enclave-side cycle accounting pulled from
each joined client's :class:`~repro.sgx.costs.CycleMeter`.  Reports render
through :mod:`repro.analysis.reporting` tables and serialize to plain
JSON-safe dicts so benchmark trajectories can be tracked by machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.analysis.reporting import Table

OUTCOME_ACCEPTED = "accepted"
OUTCOME_VALIDATION_REJECTED = "validation-rejected"
OUTCOME_SERVICE_REJECTED = "service-rejected"
OUTCOME_SUBMIT_FAILED = "submit-failed"
OUTCOME_PROVISION_FAILED = "provision-failed"
OUTCOME_UNREACHABLE = "unreachable"
OUTCOME_DEADLINE_MISSED = "deadline-missed"
OUTCOME_DROPOUT = "dropout"
OUTCOME_PARTITIONED = "partitioned"
OUTCOME_CRASHED = "crashed"
OUTCOME_EVICTED = "evicted"
OUTCOME_QUARANTINED = "quarantined"


@dataclass(frozen=True)
class PhaseStats:
    """Transport activity attributed to one lifecycle phase."""

    name: str
    messages: int
    dropped: int
    bytes_on_wire: int
    latency_ms: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "messages": self.messages,
            "dropped": self.dropped,
            "bytes_on_wire": self.bytes_on_wire,
            "latency_ms": self.latency_ms,
        }


@dataclass
class RoundReport:
    """Everything the engine observed while running one round."""

    round_id: int
    blinded: bool
    participants: tuple[str, ...]
    outcomes: dict[str, str]
    num_slots: int
    masks_repaired: int
    num_contributions: int
    rejected: dict[str, int]
    messages_sent: int
    messages_dropped: int
    retries: int
    bytes_on_wire: int
    latency_ms: float
    ecalls: int
    enclave_cycles: dict[str, int]
    phases: tuple[PhaseStats, ...]
    aggregate: np.ndarray | None = None
    service_result: Any = None
    aborted: bool = False
    abort_reason: str | None = None
    client_restarts: int = 0
    faults_injected: int = 0
    violations: tuple = ()
    """:class:`~repro.runtime.protocol.ViolationRecord` entries observed."""
    quarantined: tuple[str, ...] = ()
    """Senders newly quarantined while this round ran."""
    late_replies_discarded: int = 0
    """Accepted replies that landed after their phase deadline and were
    evicted again (the slot reverts to §3 repair) — counted so the
    deadline-vs-in-flight race is visible, never silently double-booked."""
    hedged_deliveries: int = 0
    """Extra hedged re-deliveries granted to stragglers before degrading
    them into dropouts (adaptive-deadline rounds only)."""
    stragglers: int = 0
    """Operations slower than the adaptive straggler threshold."""
    partition_trimmed: int = 0
    """Participants trimmed at a phase boundary because the link
    conditions oracle reported them partitioned/offline."""
    submissions_reconciled: int = 0
    """Slots the service consumed without the engine witnessing the
    acceptance (a duplicate delivered a submission after its sender gave
    up), adopted at finalize so the slot is not wrongly mask-repaired."""
    batch_verifications: int = 0
    """Randomized batch verifications (Schnorr cohorts, Pedersen opening
    sweeps) that replaced a per-item verify loop during this round."""
    batch_fallbacks: int = 0
    """Batch verifications that failed and fell back to the per-item loop
    to blame the culprit — nonzero only when something was forged."""
    handshakes_resumed: int = 0
    """Provisioning legs that resumed a cached DH session instead of
    running keygen + membership check + shared-secret exponentiation."""
    membership_checks_skipped: int = 0
    """Subgroup-membership exponentiations answered from the True-only
    memo (:mod:`repro.crypto.group_ops`) instead of recomputed."""
    subgroup_size: int = 0
    """Bounded subgroup size ``g`` of a hierarchical round (0 = flat
    cohort): masks were sampled per DRBG-keyed subgroup and submissions
    streamed into per-subgroup accumulators."""
    subgroups_aggregated: int = 0
    """How many subgroup partial sums fed the parent merge tree."""
    subgroup_dropout_repairs: int = 0
    """Distinct subgroups whose mask family was re-expanded for §3
    dropout repair — the O(g)-not-O(n) repair locality counter."""
    submissions_streamed: int = 0
    """Ring payloads folded into a subgroup accumulator and released at
    admission instead of being retained until finalize."""
    _survivors: tuple[str, ...] = field(default=(), repr=False)

    # ---------------------------------------------------------- derived views

    @property
    def survivors(self) -> tuple[str, ...]:
        if self._survivors:
            return self._survivors
        return tuple(
            uid
            for uid in self.participants
            if self.outcomes.get(uid) == OUTCOME_ACCEPTED
        )

    @property
    def dropouts(self) -> tuple[str, ...]:
        return tuple(
            uid
            for uid in self.participants
            if self.outcomes.get(uid)
            in (
                OUTCOME_DROPOUT,
                OUTCOME_DEADLINE_MISSED,
                OUTCOME_UNREACHABLE,
                OUTCOME_CRASHED,
                OUTCOME_PARTITIONED,
            )
        )

    @property
    def validation_rejections(self) -> int:
        return sum(
            1
            for outcome in self.outcomes.values()
            if outcome == OUTCOME_VALIDATION_REJECTED
        )

    @property
    def enclave_transition_cycles(self) -> int:
        return self.enclave_cycles.get("transitions", 0)

    @property
    def enclave_total_cycles(self) -> int:
        return sum(self.enclave_cycles.values())

    # ------------------------------------------------------------- rendering

    def table(self) -> Table:
        status = "aborted" if self.aborted else (
            "blinded" if self.blinded else "plain"
        )
        table = Table(
            f"round {self.round_id} telemetry ({status})",
            ["metric", "value"],
        )
        if self.aborted:
            table.add_row("abort reason", self.abort_reason or "")
        table.add_row("participants", len(self.participants))
        table.add_row("accepted", len(self.survivors))
        table.add_row("validation rejections", self.validation_rejections)
        table.add_row("dropouts", len(self.dropouts))
        table.add_row("masks repaired", self.masks_repaired)
        table.add_row("service rejections", sum(self.rejected.values()))
        table.add_row("messages sent", self.messages_sent)
        table.add_row("messages dropped", self.messages_dropped)
        table.add_row("retries", self.retries)
        table.add_row("bytes on wire", self.bytes_on_wire)
        table.add_row("latency (ms)", self.latency_ms)
        table.add_row("ecalls", self.ecalls)
        table.add_row("enclave transition cycles", self.enclave_transition_cycles)
        table.add_row("enclave total cycles", self.enclave_total_cycles)
        if self.client_restarts or self.faults_injected:
            table.add_row("client restarts", self.client_restarts)
            table.add_row("faults injected", self.faults_injected)
        if (
            self.late_replies_discarded
            or self.hedged_deliveries
            or self.stragglers
            or self.partition_trimmed
            or self.submissions_reconciled
        ):
            table.add_row("late replies discarded", self.late_replies_discarded)
            table.add_row("hedged deliveries", self.hedged_deliveries)
            table.add_row("stragglers", self.stragglers)
            table.add_row("partition trimmed", self.partition_trimmed)
            table.add_row("submissions reconciled", self.submissions_reconciled)
        if (
            self.batch_verifications
            or self.batch_fallbacks
            or self.handshakes_resumed
            or self.membership_checks_skipped
        ):
            table.add_row("batch verifications", self.batch_verifications)
            table.add_row("batch fallbacks", self.batch_fallbacks)
            table.add_row("handshakes resumed", self.handshakes_resumed)
            table.add_row(
                "membership checks skipped", self.membership_checks_skipped
            )
        if self.violations:
            table.add_row("protocol violations", len(self.violations))
        if self.quarantined:
            table.add_row("quarantined", ", ".join(self.quarantined))
        for phase in self.phases:
            table.add_row(
                f"phase {phase.name}",
                f"{phase.messages} msgs / {phase.bytes_on_wire} B / "
                f"{phase.latency_ms:.2f} ms",
            )
        return table

    def as_dict(self) -> dict[str, Any]:
        """A JSON-serializable view (numpy arrays become lists)."""
        aggregate = None
        if self.aggregate is not None:
            aggregate = [float(v) for v in np.asarray(self.aggregate).ravel()]
        return {
            "round_id": self.round_id,
            "blinded": self.blinded,
            "participants": list(self.participants),
            "outcomes": dict(self.outcomes),
            "survivors": list(self.survivors),
            "dropouts": list(self.dropouts),
            "num_slots": self.num_slots,
            "masks_repaired": self.masks_repaired,
            "num_contributions": self.num_contributions,
            "validation_rejections": self.validation_rejections,
            "rejected": dict(self.rejected),
            "messages_sent": self.messages_sent,
            "messages_dropped": self.messages_dropped,
            "retries": self.retries,
            "bytes_on_wire": self.bytes_on_wire,
            "latency_ms": self.latency_ms,
            "ecalls": self.ecalls,
            "enclave_cycles": dict(self.enclave_cycles),
            "enclave_transition_cycles": self.enclave_transition_cycles,
            "phases": [phase.as_dict() for phase in self.phases],
            "aggregate": aggregate,
            "aborted": self.aborted,
            "abort_reason": self.abort_reason,
            "client_restarts": self.client_restarts,
            "faults_injected": self.faults_injected,
            "violations": [
                violation.as_dict() for violation in self.violations
            ],
            "quarantined": list(self.quarantined),
            "late_replies_discarded": self.late_replies_discarded,
            "hedged_deliveries": self.hedged_deliveries,
            "stragglers": self.stragglers,
            "partition_trimmed": self.partition_trimmed,
            "submissions_reconciled": self.submissions_reconciled,
            "batch_verifications": self.batch_verifications,
            "batch_fallbacks": self.batch_fallbacks,
            "handshakes_resumed": self.handshakes_resumed,
            "membership_checks_skipped": self.membership_checks_skipped,
            "subgroup_size": self.subgroup_size,
            "subgroups_aggregated": self.subgroups_aggregated,
            "subgroup_dropout_repairs": self.subgroup_dropout_repairs,
            "submissions_streamed": self.submissions_streamed,
        }

    def to_dict(self) -> dict[str, Any]:
        """Alias for :meth:`as_dict` (the JSON-facing name)."""
        return self.as_dict()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RoundReport":
        """Rebuild a report from its :meth:`to_dict` form.

        Derived fields (``survivors``, ``dropouts``, the cycle totals)
        are recomputed, not restored; the ``aggregate`` comes back as a
        numpy array; ``service_result`` does not round-trip (it holds a
        live object).
        """
        from repro.runtime.protocol import ViolationRecord

        aggregate = data.get("aggregate")
        return cls(
            round_id=int(data["round_id"]),
            blinded=bool(data["blinded"]),
            participants=tuple(data["participants"]),
            outcomes=dict(data["outcomes"]),
            num_slots=int(data["num_slots"]),
            masks_repaired=int(data["masks_repaired"]),
            num_contributions=int(data["num_contributions"]),
            rejected={k: int(v) for k, v in data["rejected"].items()},
            messages_sent=int(data["messages_sent"]),
            messages_dropped=int(data["messages_dropped"]),
            retries=int(data["retries"]),
            bytes_on_wire=int(data["bytes_on_wire"]),
            latency_ms=float(data["latency_ms"]),
            ecalls=int(data["ecalls"]),
            enclave_cycles={
                k: int(v) for k, v in data["enclave_cycles"].items()
            },
            phases=tuple(
                PhaseStats(**phase) for phase in data.get("phases", ())
            ),
            aggregate=None if aggregate is None else np.asarray(aggregate),
            aborted=bool(data.get("aborted", False)),
            abort_reason=data.get("abort_reason"),
            client_restarts=int(data.get("client_restarts", 0)),
            faults_injected=int(data.get("faults_injected", 0)),
            violations=tuple(
                ViolationRecord.from_dict(violation)
                for violation in data.get("violations", ())
            ),
            quarantined=tuple(data.get("quarantined", ())),
            late_replies_discarded=int(data.get("late_replies_discarded", 0)),
            hedged_deliveries=int(data.get("hedged_deliveries", 0)),
            stragglers=int(data.get("stragglers", 0)),
            partition_trimmed=int(data.get("partition_trimmed", 0)),
            submissions_reconciled=int(data.get("submissions_reconciled", 0)),
            batch_verifications=int(data.get("batch_verifications", 0)),
            batch_fallbacks=int(data.get("batch_fallbacks", 0)),
            handshakes_resumed=int(data.get("handshakes_resumed", 0)),
            membership_checks_skipped=int(
                data.get("membership_checks_skipped", 0)
            ),
            subgroup_size=int(data.get("subgroup_size", 0)),
            subgroups_aggregated=int(data.get("subgroups_aggregated", 0)),
            subgroup_dropout_repairs=int(
                data.get("subgroup_dropout_repairs", 0)
            ),
            submissions_streamed=int(data.get("submissions_streamed", 0)),
        )


def meter_snapshot(meter) -> dict[str, int]:
    """Copy a CycleMeter's buckets for later delta computation."""
    snapshot = meter.snapshot()
    return {bucket: int(value) for bucket, value in snapshot.items()}


def meter_delta(
    before: Mapping[str, int], after: Mapping[str, int]
) -> dict[str, int]:
    """Per-bucket growth since ``before``; clamped at zero per bucket.

    Clamping matters for E15's restart-evasion arm: reloading an enclave
    resets its meter, which would otherwise produce negative deltas.
    """
    delta: dict[str, int] = {}
    for bucket, value in after.items():
        if bucket == "total":
            continue
        grown = int(value) - int(before.get(bucket, 0))
        if grown > 0:
            delta[bucket] = grown
    return delta
