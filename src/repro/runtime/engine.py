"""The RoundEngine: message-bus orchestration of Glimmer rounds.

The engine owns the round lifecycle — open → provision → collect →
finalize — and drives it entirely with typed messages over
:class:`repro.network.transport.Network`:

* **open**: the blinding service samples this round's sum-zero masks and
  the cloud service starts accepting contributions;
* **provision**: each participant is commanded to run its attested
  handshake against the blinding service and install its mask;
* **collect**: each participant is commanded to train-endorse-submit; the
  signed contribution travels client → service over the bus, where drop
  models and adversaries apply;
* **finalize**: every mask slot that never produced an *accepted*
  contribution (dropout, validation rejection, lost submission) is
  revealed by the blinding service and handed to the cloud service for §3
  repair, so the aggregate over survivors is exact.

Transient transport drops are retried with bounded exponential backoff
(only the request leg can drop, so a retry can never double-submit).  A
round that loses more participants than ``recovery_threshold`` allows
raises :class:`~repro.errors.RoundAbortedError` instead of publishing a
degenerate aggregate.  Every finalized round yields a
:class:`~repro.runtime.telemetry.RoundReport`.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.errors import NetworkError, ProtocolError, RoundAbortedError
from repro.network.transport import Network
from repro.runtime import messages as m
from repro.runtime.endpoints import BlinderEndpoint, ClientEndpoint, ServiceEndpoint
from repro.runtime.messages import BLINDER, ENGINE, SERVICE, client_endpoint
from repro.runtime.telemetry import (
    OUTCOME_ACCEPTED,
    OUTCOME_DEADLINE_MISSED,
    OUTCOME_DROPOUT,
    OUTCOME_PROVISION_FAILED,
    OUTCOME_UNREACHABLE,
    PhaseStats,
    RoundReport,
    meter_delta,
    meter_snapshot,
)

__all__ = ["RoundEngine", "ENGINE", "SERVICE", "BLINDER", "client_endpoint"]


class _RoundRecord:
    """Engine-side accounting for one in-flight round."""

    def __init__(self, network: Network, round_id: int, num_slots: int, blinded: bool):
        self.round_id = round_id
        self.num_slots = num_slots
        self.blinded = blinded
        self.opened_at_ms = network.clock.now_ms()
        self.participants: list[str] = []
        self.provisioned: dict[int, str] = {}
        self.consumed: set[int] = set()
        self.outcomes: dict[str, str] = {}
        self.retries = 0
        self.ecalls = 0
        self.joined: dict[str, Any] = {}
        self.meter_start: dict[str, dict[str, int]] = {}
        self.messages0 = network.messages_delivered + network.messages_dropped
        self.dropped0 = network.messages_dropped
        self.bytes0 = network.bytes_delivered
        self.phases: list[PhaseStats] = []
        self.window: tuple[str, int, int, int, float] | None = None

    def note_participant(self, client_id: str) -> None:
        if client_id not in self.participants:
            self.participants.append(client_id)


class RoundEngine:
    """Orchestrates contribution rounds over a simulated transport."""

    def __init__(
        self,
        network: Network,
        service,
        blinder_provisioner,
        *,
        max_attempts: int = 5,
        backoff_ms: float = 8.0,
        recovery_threshold: float = 0.0,
    ) -> None:
        self.network = network
        self.service = service
        self.blinder_provisioner = blinder_provisioner
        self.max_attempts = max(1, int(max_attempts))
        self.backoff_ms = float(backoff_ms)
        self.recovery_threshold = float(recovery_threshold)
        self.clients: dict[str, Any] = {}
        self.reports: dict[int, RoundReport] = {}
        self._rounds: dict[int, _RoundRecord] = {}
        network.register(ENGINE, {})
        network.register(SERVICE, ServiceEndpoint(service).handlers())
        network.register(BLINDER, BlinderEndpoint(blinder_provisioner).handlers())

    # -------------------------------------------------------------- topology

    def register_client(self, client) -> str:
        """Attach a client device to the bus; returns its endpoint name.

        Re-registering the same client id replaces its handlers (E15's
        restart-evasion arm rebuilds enclaves mid-round).
        """
        name = client_endpoint(client.client_id)
        endpoint = ClientEndpoint(self, client, name)
        if client.client_id in self.clients:
            for kind, handler in endpoint.handlers().items():
                self.network.add_handler(name, kind, handler)
        else:
            self.network.register(name, endpoint.handlers())
        self.clients[client.client_id] = client
        return name

    def _client_name(self, client_id: str) -> str:
        if client_id not in self.clients:
            raise ProtocolError(f"client {client_id!r} is not registered on the bus")
        return client_endpoint(client_id)

    # ------------------------------------------------------------ bookkeeping

    def round_record(self, round_id: int) -> _RoundRecord:
        record = self._rounds.get(round_id)
        if record is None:
            raise ProtocolError(f"round {round_id} is not tracked by the engine")
        return record

    def note_client_join(self, record: _RoundRecord, client) -> None:
        """Snapshot a client's enclave meter the first time it acts in a round."""
        if client.client_id not in record.meter_start:
            record.meter_start[client.client_id] = meter_snapshot(client.glimmer.meter)
        record.joined[client.client_id] = client

    def _start_phase(self, record: _RoundRecord, name: str) -> None:
        self._close_phase(record)
        record.window = (
            name,
            self.network.messages_delivered + self.network.messages_dropped,
            self.network.messages_dropped,
            self.network.bytes_delivered,
            self.network.clock.now_ms(),
        )

    def _close_phase(self, record: _RoundRecord) -> None:
        if record.window is None:
            return
        name, messages0, dropped0, bytes0, t0 = record.window
        record.phases.append(
            PhaseStats(
                name=name,
                messages=self.network.messages_delivered
                + self.network.messages_dropped
                - messages0,
                dropped=self.network.messages_dropped - dropped0,
                bytes_on_wire=self.network.bytes_delivered - bytes0,
                latency_ms=self.network.clock.now_ms() - t0,
            )
        )
        record.window = None

    # --------------------------------------------------------------- retries

    def call_with_retry(
        self, record: _RoundRecord, sender: str, receiver: str, kind: str, payload
    ):
        """``Network.call`` with bounded exponential backoff on drops.

        Only the request leg of a call can be dropped (the handler never
        ran), so retrying a command is safe: nothing can be double-signed
        or double-submitted.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                return self.network.call(sender, receiver, kind, payload)
            except NetworkError:
                if attempt >= self.max_attempts:
                    raise
                record.retries += 1
                self.network.clock.advance(self.backoff_ms * (2 ** (attempt - 1)))

    # --------------------------------------------------------- round lifecycle

    def open_round(
        self,
        round_id: int,
        num_slots: int,
        vector_length: int,
        blinded: bool = True,
    ) -> None:
        """Open the round at the blinding service and the cloud service."""
        if round_id in self._rounds:
            raise ProtocolError(f"round {round_id} is already tracked by the engine")
        record = _RoundRecord(self.network, round_id, num_slots, blinded)
        self._rounds[round_id] = record
        self._start_phase(record, "open")
        if blinded:
            self.call_with_retry(
                record,
                ENGINE,
                BLINDER,
                m.KIND_OPEN_BLINDER,
                m.OpenBlinderRound(round_id, num_slots, vector_length),
            )
        self.call_with_retry(
            record,
            ENGINE,
            SERVICE,
            m.KIND_OPEN_SERVICE,
            m.OpenServiceRound(round_id, num_slots, blinded),
        )

    def provision_mask(self, client_id: str, round_id: int, party_index: int) -> None:
        """Command a client to fetch and install its mask for one slot."""
        record = self.round_record(round_id)
        record.note_participant(client_id)
        self.call_with_retry(
            record,
            ENGINE,
            self._client_name(client_id),
            m.KIND_PROVISION_MASK,
            m.ProvisionMask(round_id, party_index),
        )
        record.provisioned[party_index] = client_id

    def contribute(
        self,
        client_id: str,
        round_id: int,
        values: Sequence[float],
        features: Sequence,
        *,
        blind: bool = True,
        claims: Mapping | None = None,
        context_fields: Sequence[str] = (),
    ) -> str:
        """Command a client to contribute; returns its outcome label."""
        record = self.round_record(round_id)
        record.note_participant(client_id)
        outcome, _detail = self.call_with_retry(
            record,
            ENGINE,
            self._client_name(client_id),
            m.KIND_CONTRIBUTE,
            m.ContributeCommand(
                round_id=round_id,
                values=tuple(float(v) for v in values),
                features=tuple(features),
                blind=blind,
                claims=tuple(sorted((claims or {}).items())),
                context_fields=tuple(context_fields),
            ),
        )
        record.outcomes[client_id] = outcome
        return outcome

    def submit_signed(
        self, sender_id: str, round_id: int, contribution, *, slot: int | None = None
    ) -> bool:
        """Send an already-signed contribution to the service over the bus.

        Used by client endpoints for the honest path and by experiments to
        model attackers replaying or injecting contributions on the wire.
        An accepted submission consumes the sender's mask slot, exempting
        it from dropout repair.
        """
        record = self.round_record(round_id)
        sender = (
            client_endpoint(sender_id) if sender_id in self.clients else sender_id
        )
        if slot is None and sender_id in self.clients:
            slot = self.clients[sender_id].party_index_for(round_id)
        accepted = bool(
            self.call_with_retry(
                record,
                sender,
                SERVICE,
                m.KIND_SUBMIT,
                m.SubmitContribution(round_id, contribution),
            )
        )
        if accepted and slot is not None:
            record.consumed.add(slot)
        return accepted

    def finalize_round(self, round_id: int) -> RoundReport:
        """Repair unconsumed slots, finalize at the service, emit the report."""
        record = self.round_record(round_id)
        self._start_phase(record, "finalize")
        repairs: list[tuple[int, ...]] = []
        if record.blinded:
            for slot in range(record.num_slots):
                if slot in record.consumed:
                    continue
                mask = self.call_with_retry(
                    record, ENGINE, BLINDER, m.KIND_REVEAL_MASK,
                    m.RevealMask(round_id, slot),
                )
                repairs.append(tuple(int(v) for v in mask))
        result = self.call_with_retry(
            record,
            ENGINE,
            SERVICE,
            m.KIND_FINALIZE,
            m.FinalizeRound(round_id, tuple(repairs)),
        )
        report = self._build_report(record, result, len(repairs))
        self.reports[round_id] = report
        del self._rounds[round_id]
        return report

    def abandon_round(self, round_id: int) -> None:
        """Forget an aborted round's engine-side state."""
        self._rounds.pop(round_id, None)

    # ------------------------------------------------------------ whole round

    def run_round(
        self,
        round_id: int,
        participants: Iterable[str],
        values_by_user: Mapping[str, Sequence[float]],
        features: Sequence,
        *,
        dropouts: Iterable[str] = (),
        deadline_ms: float | None = None,
        claims_by_user: Mapping[str, Mapping] | None = None,
        context_fields: Sequence[str] = (),
        recovery_threshold: float | None = None,
        blind: bool = True,
    ) -> RoundReport:
        """Run one full round: open → provision → collect → finalize.

        ``dropouts`` are participants that go silent after being assigned a
        slot — the §3 recovery path reveals their masks.  A participant
        whose provisioning or submission is lost to the network is treated
        the same way.  Raises :class:`RoundAbortedError` when no
        contribution is accepted, or when survivors fall below
        ``recovery_threshold`` (a fraction of participants).
        """
        participants = list(participants)
        silent = set(dropouts)
        threshold = (
            self.recovery_threshold
            if recovery_threshold is None
            else float(recovery_threshold)
        )
        features = tuple(features)
        self.open_round(round_id, len(participants), len(features), blinded=blind)
        record = self.round_record(round_id)
        for user_id in participants:
            record.note_participant(user_id)
        if blind:
            self._start_phase(record, "provision")
            for index, user_id in enumerate(participants):
                if user_id in silent:
                    record.outcomes[user_id] = OUTCOME_DROPOUT
                    continue
                try:
                    self.provision_mask(user_id, round_id, index)
                except NetworkError:
                    record.outcomes[user_id] = OUTCOME_PROVISION_FAILED
        self._start_phase(record, "collect")
        deadline = None if deadline_ms is None else record.opened_at_ms + deadline_ms
        for user_id in participants:
            if user_id in silent:
                record.outcomes.setdefault(user_id, OUTCOME_DROPOUT)
                continue
            if record.outcomes.get(user_id) == OUTCOME_PROVISION_FAILED:
                continue
            if deadline is not None and self.network.clock.now_ms() > deadline:
                record.outcomes[user_id] = OUTCOME_DEADLINE_MISSED
                continue
            claims = (claims_by_user or {}).get(user_id)
            try:
                self.contribute(
                    user_id,
                    round_id,
                    values_by_user[user_id],
                    features,
                    blind=blind,
                    claims=claims,
                    context_fields=context_fields,
                )
            except NetworkError:
                record.outcomes[user_id] = OUTCOME_UNREACHABLE
        survivors = [
            u for u in participants if record.outcomes.get(u) == OUTCOME_ACCEPTED
        ]
        if not survivors:
            raise RoundAbortedError(
                f"round {round_id}: no contribution was accepted "
                f"({len(participants)} participants)"
            )
        if threshold and len(survivors) < threshold * len(participants):
            raise RoundAbortedError(
                f"round {round_id}: {len(survivors)}/{len(participants)} survivors "
                f"is below the recovery threshold of {threshold:.0%}"
            )
        return self.finalize_round(round_id)

    # --------------------------------------------------------------- reports

    def _build_report(
        self, record: _RoundRecord, result, masks_repaired: int
    ) -> RoundReport:
        self._close_phase(record)
        cycles: dict[str, int] = {}
        for client_id, before in record.meter_start.items():
            client = record.joined.get(client_id)
            if client is None:
                continue
            after = meter_snapshot(client.glimmer.meter)
            for bucket, grown in meter_delta(before, after).items():
                cycles[bucket] = cycles.get(bucket, 0) + grown
        return RoundReport(
            round_id=record.round_id,
            blinded=record.blinded,
            participants=tuple(record.participants),
            outcomes=dict(record.outcomes),
            num_slots=record.num_slots,
            masks_repaired=masks_repaired,
            num_contributions=result.num_contributions,
            rejected=dict(result.rejected),
            messages_sent=self.network.messages_delivered
            + self.network.messages_dropped
            - record.messages0,
            messages_dropped=self.network.messages_dropped - record.dropped0,
            retries=record.retries,
            bytes_on_wire=self.network.bytes_delivered - record.bytes0,
            latency_ms=self.network.clock.now_ms() - record.opened_at_ms,
            ecalls=record.ecalls,
            enclave_cycles=cycles,
            phases=tuple(record.phases),
            aggregate=result.aggregate,
            service_result=result,
        )
